"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that offline environments without the ``wheel`` package (where PEP 660
editable installs fail) can still do ``python setup.py develop``.
"""

from setuptools import setup

setup()
