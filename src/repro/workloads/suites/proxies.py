"""Exascale proxy applications: CoMD, XSBench, miniFE.

Calibration anchors from the paper:

* **CoMD.EAM_Force_1** — a large force kernel with modest bandwidth
  sensitivity: Harmonia reduces the memory bus frequency "just enough
  without increasing memory-related stalling" (Section 7.1).
* **CoMD.AdvanceVelocity** — 100% kernel occupancy (VGPRs are not a
  limiting resource, Figure 7), memory intensive with moderate compute
  demands: Harmonia cuts compute power without performance loss.
* **XSBench** — the memory-intensive Monte Carlo neutronics lookup of
  Figure 1. Random cross-section table lookups thrash the L2, so it gains
  3% performance from CU gating; it runs only **2 iterations** per kernel,
  which makes it the showcase for single-shot CG tuning (Section 7.2:
  4% power saving, +2% performance, 9% energy-efficiency gain).
* **miniFE** — implicit finite-element proxy; MatVec is a classic
  bandwidth-bound sparse kernel with high occupancy.
"""

from __future__ import annotations

from repro.perf.kernelspec import KernelSpec
from repro.workloads.application import Application
from repro.workloads.kernel import ConstantSchedule, WorkloadKernel


def comd() -> Application:
    """CoMD: classical molecular dynamics (EAM potential)."""
    eam_force = KernelSpec(
        name="CoMD.EAM_Force_1",
        total_workitems=1 << 20,
        workgroup_size=128,
        valu_insts_per_item=2400.0,
        vfetch_insts_per_item=20.0,
        vwrite_insts_per_item=4.0,
        bytes_per_fetch=12.0,
        bytes_per_write=12.0,
        vgprs_per_workitem=48,
        sgprs_per_wave=36,
        branch_divergence=0.15,
        l2_hit_rate=0.60,
        outstanding_per_wave=2.0,
        access_efficiency=0.70,
    )
    advance_velocity = KernelSpec(
        name="CoMD.AdvanceVelocity",
        total_workitems=1 << 22,
        workgroup_size=256,
        valu_insts_per_item=90.0,
        vfetch_insts_per_item=6.0,
        vwrite_insts_per_item=3.0,
        bytes_per_fetch=24.0,
        bytes_per_write=24.0,
        # VGPRs are not limiting: 100% occupancy (Figure 7)
        vgprs_per_workitem=16,
        sgprs_per_wave=16,
        branch_divergence=0.02,
        l2_hit_rate=0.15,
        outstanding_per_wave=4.0,
        access_efficiency=0.85,
    )
    advance_position = KernelSpec(
        name="CoMD.AdvancePosition",
        total_workitems=1 << 22,
        workgroup_size=256,
        valu_insts_per_item=40.0,
        vfetch_insts_per_item=4.0,
        vwrite_insts_per_item=3.0,
        bytes_per_fetch=24.0,
        bytes_per_write=24.0,
        vgprs_per_workitem=14,
        sgprs_per_wave=16,
        branch_divergence=0.02,
        l2_hit_rate=0.15,
        outstanding_per_wave=4.0,
        access_efficiency=0.85,
    )
    return Application(
        name="CoMD",
        suite="proxy",
        kernels=(
            WorkloadKernel(base=eam_force),
            WorkloadKernel(base=advance_velocity),
            WorkloadKernel(base=advance_position),
        ),
        iterations=40,
    )


def xsbench() -> Application:
    """XSBench: Monte Carlo macroscopic cross-section lookup."""
    calculate_xs = KernelSpec(
        name="XSBench.CalculateXS",
        total_workitems=1 << 21,
        workgroup_size=256,
        valu_insts_per_item=260.0,
        vfetch_insts_per_item=18.0,
        vwrite_insts_per_item=1.0,
        bytes_per_fetch=16.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=34,
        sgprs_per_wave=30,
        branch_divergence=0.30,
        l2_hit_rate=0.20,
        l2_thrash_sensitivity=0.06,
        outstanding_per_wave=3.0,
        # random table lookups: poor row-buffer locality
        access_efficiency=0.55,
    )
    lookup_macro = KernelSpec(
        name="XSBench.LookupMacro",
        total_workitems=1 << 21,
        workgroup_size=256,
        valu_insts_per_item=140.0,
        vfetch_insts_per_item=10.0,
        vwrite_insts_per_item=1.0,
        bytes_per_fetch=16.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=26,
        sgprs_per_wave=24,
        branch_divergence=0.25,
        l2_hit_rate=0.25,
        l2_thrash_sensitivity=0.05,
        outstanding_per_wave=3.0,
        access_efficiency=0.60,
    )
    return Application(
        name="XSBench",
        suite="proxy",
        kernels=(WorkloadKernel(base=calculate_xs), WorkloadKernel(base=lookup_macro)),
        # "XSBench ... executes only 2 iterations for each of its kernels"
        iterations=2,
    )


def minife() -> Application:
    """miniFE: implicit finite-element solve (CG iteration)."""
    matvec = KernelSpec(
        name="miniFE.MatVec",
        total_workitems=1 << 22,
        workgroup_size=256,
        valu_insts_per_item=110.0,
        vfetch_insts_per_item=14.0,
        vwrite_insts_per_item=1.0,
        bytes_per_fetch=12.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=22,
        sgprs_per_wave=20,
        branch_divergence=0.08,
        l2_hit_rate=0.30,
        outstanding_per_wave=3.5,
        access_efficiency=0.70,
    )
    dot = KernelSpec(
        name="miniFE.Dot",
        total_workitems=1 << 22,
        workgroup_size=256,
        valu_insts_per_item=30.0,
        vfetch_insts_per_item=2.0,
        vwrite_insts_per_item=1.0,
        bytes_per_fetch=8.0,
        bytes_per_write=4.0,
        vgprs_per_workitem=16,
        sgprs_per_wave=16,
        lds_bytes_per_workgroup=2048,
        branch_divergence=0.03,
        l2_hit_rate=0.25,
        outstanding_per_wave=4.0,
        access_efficiency=0.90,
    )
    return Application(
        name="miniFE",
        suite="proxy",
        kernels=(WorkloadKernel(base=matvec), WorkloadKernel(base=dot)),
        iterations=40,
    )
