"""Rodinia suite workloads: LUD, CFD, SRAD, Streamcluster, B+Tree (BPT).

Calibration anchors from the paper:

* **LUD** — matrix decomposition; compute-bound or memory-bound depending
  on configuration; its best balance point sits at ~15x the minimum
  configuration's ops/byte (Figure 3c). A coarse-grain outlier where FG
  tuning recovers lost opportunity (Section 7.2).
* **CFD** — unstructured-grid solver with heavy L2 pressure; Harmonia
  *improves* its performance 3% by power-gating CUs, reducing L2
  interference (Section 7.1).
* **SRAD.Prepare** — ~75% branch divergence but only 8 ALU instructions:
  overhead-dominated, hence nearly insensitive to compute frequency
  (Figure 8).
* **Streamcluster** — bandwidth sensitivity sits just under the HIGH bin
  edge (the 70% boundary): the CG step underestimates it and costs up to
  27% performance; the FG loop claws it back to -3.6% (Section 7.1).
* **BPT (B+Tree)** — search over pointer-chasing trees with severe cache
  thrashing and memory divergence. Reducing active CUs *increases*
  performance 11%, giving the paper's best ED² gain, 36% (Section 7.1).
"""

from __future__ import annotations

from repro.perf.kernelspec import KernelSpec
from repro.workloads.application import Application
from repro.workloads.kernel import ConstantSchedule, WorkloadKernel


def lud() -> Application:
    """Rodinia LUD: blocked LU decomposition."""
    perimeter = KernelSpec(
        name="LUD.Perimeter",
        total_workitems=1 << 18,
        workgroup_size=256,
        valu_insts_per_item=1500.0,
        vfetch_insts_per_item=10.0,
        vwrite_insts_per_item=4.0,
        bytes_per_fetch=8.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=36,
        sgprs_per_wave=32,
        lds_bytes_per_workgroup=8192,
        branch_divergence=0.30,
        l2_hit_rate=0.55,
        outstanding_per_wave=2.0,
        access_efficiency=0.75,
    )
    internal = KernelSpec(
        name="LUD.Internal",
        total_workitems=1 << 20,
        workgroup_size=256,
        valu_insts_per_item=2600.0,
        vfetch_insts_per_item=12.0,
        vwrite_insts_per_item=4.0,
        bytes_per_fetch=8.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=40,
        sgprs_per_wave=32,
        lds_bytes_per_workgroup=16384,
        branch_divergence=0.08,
        l2_hit_rate=0.60,
        outstanding_per_wave=2.5,
        access_efficiency=0.80,
    )
    return Application(
        name="LUD",
        suite="Rodinia",
        kernels=(WorkloadKernel(base=perimeter), WorkloadKernel(base=internal)),
        iterations=40,
    )


def cfd() -> Application:
    """Rodinia CFD: unstructured Euler solver."""
    compute_flux = KernelSpec(
        name="CFD.ComputeFlux",
        total_workitems=1 << 21,
        workgroup_size=192,
        valu_insts_per_item=420.0,
        vfetch_insts_per_item=16.0,
        vwrite_insts_per_item=4.0,
        bytes_per_fetch=16.0,
        bytes_per_write=16.0,
        vgprs_per_workitem=44,
        sgprs_per_wave=40,
        branch_divergence=0.20,
        l2_hit_rate=0.35,
        # L2 interference: fewer CUs -> markedly better hit rate (+3% perf)
        l2_thrash_sensitivity=0.06,
        outstanding_per_wave=3.0,
        access_efficiency=0.60,
    )
    time_step = KernelSpec(
        name="CFD.TimeStep",
        total_workitems=1 << 21,
        workgroup_size=192,
        valu_insts_per_item=60.0,
        vfetch_insts_per_item=5.0,
        vwrite_insts_per_item=5.0,
        bytes_per_fetch=16.0,
        bytes_per_write=16.0,
        vgprs_per_workitem=20,
        sgprs_per_wave=16,
        branch_divergence=0.02,
        l2_hit_rate=0.20,
        outstanding_per_wave=4.0,
        access_efficiency=0.85,
    )
    return Application(
        name="CFD",
        suite="Rodinia",
        kernels=(WorkloadKernel(base=compute_flux), WorkloadKernel(base=time_step)),
        iterations=40,
    )


def srad() -> Application:
    """Rodinia SRAD: speckle-reducing anisotropic diffusion."""
    prepare = KernelSpec(
        name="SRAD.Prepare",
        total_workitems=1 << 16,
        workgroup_size=256,
        # 8 ALU instructions (Figure 8) -> launch-overhead dominated
        valu_insts_per_item=8.0,
        vfetch_insts_per_item=2.0,
        vwrite_insts_per_item=2.0,
        bytes_per_fetch=4.0,
        bytes_per_write=4.0,
        vgprs_per_workitem=12,
        sgprs_per_wave=16,
        branch_divergence=0.75,
        l2_hit_rate=0.50,
        outstanding_per_wave=2.0,
        access_efficiency=0.85,
        launch_overhead=60.0e-6,
    )
    srad1 = KernelSpec(
        name="SRAD.SRAD1",
        total_workitems=1 << 21,
        workgroup_size=256,
        valu_insts_per_item=260.0,
        vfetch_insts_per_item=10.0,
        vwrite_insts_per_item=3.0,
        bytes_per_fetch=8.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=26,
        sgprs_per_wave=24,
        branch_divergence=0.12,
        l2_hit_rate=0.45,
        outstanding_per_wave=3.0,
        access_efficiency=0.75,
    )
    return Application(
        name="SRAD",
        suite="Rodinia",
        kernels=(WorkloadKernel(base=prepare), WorkloadKernel(base=srad1)),
        iterations=40,
    )


def streamcluster() -> Application:
    """Rodinia Streamcluster: online clustering, bandwidth hungry.

    Balanced compute/memory at the boost configuration: its *measured*
    bandwidth sensitivity is high, but the online predictor lands near the
    HIGH bin edge — the paper's "edge effect of sensitivity binning" that
    costs CG-only up to 27% performance until the FG loop walks the
    configuration back up (Section 7.1).
    """
    compute_cost = KernelSpec(
        name="Streamcluster.ComputeCost",
        total_workitems=1 << 22,
        workgroup_size=256,
        valu_insts_per_item=400.0,
        vfetch_insts_per_item=12.0,
        vwrite_insts_per_item=2.0,
        bytes_per_fetch=16.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=24,
        sgprs_per_wave=10,
        # heavy branch divergence in the distance computations makes the
        # kernel genuinely compute-sensitive (0.99 measured), but the low
        # active-lane count keeps C-to-M intensity moderate, so the online
        # predictor lands at ~0.68 -- just under the 0.70 HIGH edge
        branch_divergence=0.75,
        l2_hit_rate=0.30,
        outstanding_per_wave=3.5,
        access_efficiency=0.70,
    )
    return Application(
        name="Streamcluster",
        suite="Rodinia",
        kernels=(WorkloadKernel(base=compute_cost),),
        iterations=40,
    )


def bpt() -> Application:
    """Rodinia B+Tree (BPT): batched key search over a B+ tree."""
    find_k = KernelSpec(
        name="BPT.FindK",
        total_workitems=1 << 20,
        workgroup_size=256,
        valu_insts_per_item=300.0,
        vfetch_insts_per_item=14.0,
        vwrite_insts_per_item=1.0,
        bytes_per_fetch=16.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=30,
        sgprs_per_wave=28,
        branch_divergence=0.35,
        l2_hit_rate=0.30,
        # severe thrashing: gating CUs recovers a lot of hit rate
        l2_thrash_sensitivity=0.12,
        outstanding_per_wave=2.5,
        # memory divergence: poor coalescing at the controller
        access_efficiency=0.50,
    )
    find_range = KernelSpec(
        name="BPT.FindRange",
        total_workitems=1 << 20,
        workgroup_size=256,
        valu_insts_per_item=340.0,
        vfetch_insts_per_item=16.0,
        vwrite_insts_per_item=2.0,
        bytes_per_fetch=16.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=32,
        sgprs_per_wave=28,
        branch_divergence=0.40,
        l2_hit_rate=0.28,
        l2_thrash_sensitivity=0.10,
        outstanding_per_wave=2.5,
        access_efficiency=0.50,
    )
    return Application(
        name="BPT",
        suite="Rodinia",
        kernels=(WorkloadKernel(base=find_k), WorkloadKernel(base=find_range)),
        iterations=40,
    )
