"""Benchmark-suite kernel definitions (SHOC, Rodinia, proxies, Graph500)."""
