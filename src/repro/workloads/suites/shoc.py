"""SHOC suite workloads: MaxFlops, DeviceMemory, Sort, SPMV, Stencil.

Calibration anchors from the paper:

* **MaxFlops** — the compute stress benchmark. Performance scales linearly
  with compute throughput (27x from the minimum to the maximum
  configuration, Figure 3a) and is completely insensitive to memory
  bandwidth; the most energy-efficient point is maximum compute at the
  *lowest* memory bus frequency.
* **DeviceMemory** — the memory stress benchmark. Performance saturates
  once hardware ops/byte reaches ~4x the minimum configuration
  (Figure 3b); poor L2 hit rate makes it sensitive to compute frequency
  at low clocks through the L2->MC crossing (Figure 9); board power
  varies ~70% across compute configurations (Figure 4).
* **Sort.BottomScan** — 66 VGPRs/workitem -> 3 waves/SIMD -> 30% kernel
  occupancy (Figure 7); 6% branch divergence over millions of dynamic
  instructions -> strongly compute-frequency sensitive (Figure 8); low
  memory-level parallelism lets the bus drop to 475 MHz for a 12% card
  power saving without hurting performance (Section 7.1).
* **SPMV** — irregular gather bandwidth-bound kernel; a coarse-grain
  prediction outlier that needs FG correction (Section 7.2, Figure 18).
* **Stencil** — high L2 locality; most of its footprint hits in cache, so
  the memory bus can be slowed deeply. The paper's biggest power saving
  (19%, Section 7.1).
"""

from __future__ import annotations

from repro.perf.kernelspec import KernelSpec
from repro.workloads.application import Application
from repro.workloads.kernel import ConstantSchedule, WorkloadKernel


def maxflops() -> Application:
    """SHOC MaxFlops: peak-FLOPS stress test."""
    kernel = KernelSpec(
        name="MaxFlops.MaxFlops",
        total_workitems=1 << 20,
        workgroup_size=256,
        valu_insts_per_item=16000.0,
        vfetch_insts_per_item=2.0,
        vwrite_insts_per_item=1.0,
        bytes_per_fetch=4.0,
        bytes_per_write=4.0,
        vgprs_per_workitem=24,
        sgprs_per_wave=16,
        branch_divergence=0.0,
        l2_hit_rate=0.90,
        outstanding_per_wave=1.0,
        access_efficiency=0.80,
    )
    return Application(
        name="MaxFlops",
        suite="SHOC",
        kernels=(WorkloadKernel(base=kernel),),
        iterations=20,
    )


def devicememory() -> Application:
    """SHOC DeviceMemory: streaming global-memory stress test."""
    kernel = KernelSpec(
        name="DeviceMemory.DeviceMemory",
        total_workitems=1 << 22,
        workgroup_size=256,
        valu_insts_per_item=600.0,
        vfetch_insts_per_item=8.0,
        vwrite_insts_per_item=4.0,
        bytes_per_fetch=16.0,
        bytes_per_write=16.0,
        vgprs_per_workitem=20,
        sgprs_per_wave=16,
        branch_divergence=0.0,
        l2_hit_rate=0.05,
        outstanding_per_wave=4.0,
        access_efficiency=0.85,
    )
    return Application(
        name="DeviceMemory",
        suite="SHOC",
        kernels=(WorkloadKernel(base=kernel),),
        iterations=20,
    )


def sort() -> Application:
    """SHOC Sort: radix sort; BottomScan is the occupancy-limited kernel."""
    bottom_scan = KernelSpec(
        name="Sort.BottomScan",
        total_workitems=1 << 19,
        workgroup_size=256,
        valu_insts_per_item=2200.0,
        vfetch_insts_per_item=6.0,
        vwrite_insts_per_item=3.0,
        bytes_per_fetch=12.0,
        bytes_per_write=12.0,
        # 66 of 256 VGPRs -> floor(256/66) = 3 waves/SIMD = 30% occupancy
        vgprs_per_workitem=66,
        sgprs_per_wave=32,
        branch_divergence=0.06,
        l2_hit_rate=0.40,
        outstanding_per_wave=1.6,
        access_efficiency=0.75,
    )
    top_scan = KernelSpec(
        name="Sort.TopScan",
        total_workitems=1 << 16,
        workgroup_size=256,
        valu_insts_per_item=900.0,
        vfetch_insts_per_item=4.0,
        vwrite_insts_per_item=2.0,
        bytes_per_fetch=8.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=32,
        sgprs_per_wave=24,
        branch_divergence=0.10,
        l2_hit_rate=0.55,
        outstanding_per_wave=2.0,
        access_efficiency=0.80,
    )
    return Application(
        name="Sort",
        suite="SHOC",
        kernels=(WorkloadKernel(base=bottom_scan), WorkloadKernel(base=top_scan)),
        iterations=40,
    )


def spmv() -> Application:
    """SHOC SPMV: irregular sparse matrix-vector product."""
    kernel = KernelSpec(
        name="SPMV.CSRScalar",
        total_workitems=1 << 21,
        workgroup_size=128,
        valu_insts_per_item=220.0,
        vfetch_insts_per_item=12.0,
        vwrite_insts_per_item=1.0,
        bytes_per_fetch=12.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=28,
        sgprs_per_wave=24,
        branch_divergence=0.25,
        l2_hit_rate=0.25,
        l2_thrash_sensitivity=0.05,
        outstanding_per_wave=3.0,
        # irregular gathers: poor row locality at the controller
        access_efficiency=0.55,
    )
    return Application(
        name="SPMV",
        suite="SHOC",
        kernels=(WorkloadKernel(base=kernel),),
        iterations=40,
    )


def stencil() -> Application:
    """SHOC Stencil2D: 9-point stencil with strong L2 reuse."""
    kernel = KernelSpec(
        name="Stencil.Stencil2D",
        total_workitems=1 << 21,
        workgroup_size=256,
        valu_insts_per_item=1400.0,
        vfetch_insts_per_item=9.0,
        vwrite_insts_per_item=1.0,
        bytes_per_fetch=4.0,
        bytes_per_write=4.0,
        vgprs_per_workitem=30,
        sgprs_per_wave=24,
        lds_bytes_per_workgroup=4352,
        branch_divergence=0.05,
        l2_hit_rate=0.80,
        outstanding_per_wave=2.0,
        access_efficiency=0.85,
    )
    return Application(
        name="Stencil",
        suite="SHOC",
        kernels=(WorkloadKernel(base=kernel),),
        iterations=40,
    )
