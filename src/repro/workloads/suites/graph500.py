"""Graph500: breadth-first search with strong phase behaviour.

Calibration anchors from the paper (Section 7.2, Figures 14-16):

* the application's ops/byte demand swings from **0.64 to bursts of 264**
  as the BFS frontier expands and contracts;
* the main kernel **BottomStepUp** runs 8 successive iterations of 0.9 to
  5.6 seconds with widely varying instruction counts (Figure 14); the
  memory fetch unit is active 40-80% of the time; compute sensitivity is
  high 95% of the time (heavy branch divergence serializes threads), so
  Harmonia pins 32 CUs / 1 GHz and dithers the memory bus between 925 and
  775 MHz (Figure 15), with residency spread over
  1375/925/775/475 MHz ~ 25/23/42/8% across the whole run (Figure 16).

The phase behaviour is expressed as an eight-row
:class:`~repro.workloads.kernel.TableSchedule` on the BottomStepUp kernel:
frontier size scales the launched work, and the compute/memory instruction
balance shifts between sparse (memory-heavy) and dense (compute-heavy)
levels of the search.
"""

from __future__ import annotations

from repro.perf.kernelspec import KernelSpec
from repro.workloads.application import Application
from repro.workloads.kernel import TableSchedule, WorkloadKernel

#: Eight BFS levels in three behavioural groups (Figure 14): the frontier
#: expands and contracts (work totals swing ~19x) while the instruction
#: *mix* shifts between sparse memory-heavy levels (groups A/C, bandwidth
#: bin HIGH) and dense compute-heavy levels (group B, bandwidth bin MED),
#: so Harmonia dithers the memory bus across several frequencies
#: (Figures 15-16). Branch divergence stays high throughout, pinning the
#: compute frequency at boost.
_GROUP_A = {"valu_insts_per_item": 1000.0, "vfetch_insts_per_item": 10.0,
            "bytes_per_fetch": 12.0, "branch_divergence": 0.60,
            "l2_hit_rate": 0.40}
_GROUP_B = {"valu_insts_per_item": 1800.0, "vfetch_insts_per_item": 12.0,
            "bytes_per_fetch": 14.0, "branch_divergence": 0.60,
            "l2_hit_rate": 0.45}
_GROUP_C = {"valu_insts_per_item": 700.0, "vfetch_insts_per_item": 12.0,
            "bytes_per_fetch": 12.0, "branch_divergence": 0.60,
            "l2_hit_rate": 0.35}
_BOTTOM_STEPUP_PHASES = (
    dict(_GROUP_A, total_workitems=1 << 20),
    dict(_GROUP_A, total_workitems=1 << 21),
    dict(_GROUP_B, total_workitems=1 << 22),
    dict(_GROUP_B, total_workitems=3 << 21),
    dict(_GROUP_B, total_workitems=1 << 22),
    dict(_GROUP_B, total_workitems=3 << 21),
    dict(_GROUP_C, total_workitems=1 << 21),
    dict(_GROUP_C, total_workitems=1 << 19),
)


def graph500() -> Application:
    """Graph500 BFS: TopDownStep, BottomStepUp (phased), BitmapConstruct."""
    top_down = KernelSpec(
        name="Graph500.TopDownStep",
        total_workitems=1 << 20,
        workgroup_size=256,
        valu_insts_per_item=500.0,
        vfetch_insts_per_item=12.0,
        vwrite_insts_per_item=3.0,
        bytes_per_fetch=12.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=32,
        sgprs_per_wave=28,
        branch_divergence=0.50,
        l2_hit_rate=0.35,
        outstanding_per_wave=2.5,
        access_efficiency=0.60,
    )
    bottom_stepup = KernelSpec(
        name="Graph500.BottomStepUp",
        total_workitems=1 << 21,
        workgroup_size=256,
        valu_insts_per_item=1000.0,
        vfetch_insts_per_item=12.0,
        vwrite_insts_per_item=3.0,
        bytes_per_fetch=12.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=36,
        sgprs_per_wave=30,
        branch_divergence=0.60,
        l2_hit_rate=0.40,
        outstanding_per_wave=2.5,
        access_efficiency=0.60,
    )
    bitmap = KernelSpec(
        name="Graph500.BitmapConstruct",
        total_workitems=1 << 21,
        workgroup_size=256,
        valu_insts_per_item=45.0,
        vfetch_insts_per_item=3.0,
        vwrite_insts_per_item=2.0,
        bytes_per_fetch=8.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=14,
        sgprs_per_wave=16,
        branch_divergence=0.05,
        l2_hit_rate=0.25,
        outstanding_per_wave=4.0,
        access_efficiency=0.85,
    )
    return Application(
        name="Graph500",
        suite="Graph500",
        kernels=(
            WorkloadKernel(base=top_down),
            WorkloadKernel(
                base=bottom_stepup,
                schedule=TableSchedule(rows=_BOTTOM_STEPUP_PHASES, wrap=True),
            ),
            WorkloadKernel(base=bitmap),
        ),
        iterations=8,
    )
