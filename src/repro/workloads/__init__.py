"""The paper's workload set.

Fourteen applications / twenty-five kernels covering the HPC and
scientific-computing behaviours of Section 6:

* SHOC: MaxFlops, DeviceMemory, Sort, SPMV, Stencil,
* Rodinia: LUD, CFD, SRAD, Streamcluster, B+Tree (BPT),
* Exascale proxies: CoMD, XSBench, miniFE,
* Graph500.

Each kernel is a calibrated :class:`~repro.perf.kernelspec.KernelSpec`
(instruction mix, registers, divergence, locality) wrapped with a phase
schedule describing how it changes across application iterations.
"""

from repro.workloads.kernel import (
    ConstantSchedule,
    CyclicSchedule,
    PhaseSchedule,
    TableSchedule,
    WorkloadKernel,
)
from repro.workloads.application import Application
from repro.workloads import serialization
from repro.workloads.registry import (
    all_applications,
    all_kernels,
    application_names,
    get_application,
    get_kernel,
)

__all__ = [
    "ConstantSchedule",
    "CyclicSchedule",
    "PhaseSchedule",
    "TableSchedule",
    "WorkloadKernel",
    "Application",
    "serialization",
    "all_applications",
    "all_kernels",
    "application_names",
    "get_application",
    "get_kernel",
]
