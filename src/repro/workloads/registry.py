"""Registry of the paper's 14 applications / 25 kernels (Section 6)."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.application import Application
from repro.workloads.kernel import WorkloadKernel
from repro.workloads.suites import graph500 as _graph500
from repro.workloads.suites import proxies as _proxies
from repro.workloads.suites import rodinia as _rodinia
from repro.workloads.suites import shoc as _shoc

_FACTORIES: Dict[str, Callable[[], Application]] = {
    # SHOC
    "MaxFlops": _shoc.maxflops,
    "DeviceMemory": _shoc.devicememory,
    "Sort": _shoc.sort,
    "SPMV": _shoc.spmv,
    "Stencil": _shoc.stencil,
    # Rodinia
    "LUD": _rodinia.lud,
    "CFD": _rodinia.cfd,
    "SRAD": _rodinia.srad,
    "Streamcluster": _rodinia.streamcluster,
    "BPT": _rodinia.bpt,
    # Exascale proxies
    "CoMD": _proxies.comd,
    "XSBench": _proxies.xsbench,
    "miniFE": _proxies.minife,
    # Graph500
    "Graph500": _graph500.graph500,
}

#: The two stress benchmarks excluded from the paper's "Geomean 2".
STRESS_BENCHMARKS: Tuple[str, ...] = ("MaxFlops", "DeviceMemory")


def application_names() -> Tuple[str, ...]:
    """Names of all 14 registered applications, in the paper's grouping."""
    return tuple(_FACTORIES)


def get_application(name: str) -> Application:
    """Build a fresh :class:`Application` by name.

    Raises:
        WorkloadError: for an unknown application name.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(_FACTORIES)
        raise WorkloadError(f"unknown application {name!r}; known: {known}") from None
    return factory()


def all_applications() -> List[Application]:
    """Build all 14 applications."""
    return [factory() for factory in _FACTORIES.values()]


def all_kernels() -> List[WorkloadKernel]:
    """All 25 workload kernels across every application."""
    kernels: List[WorkloadKernel] = []
    for app in all_applications():
        kernels.extend(app.kernels)
    return kernels


def get_kernel(qualified_name: str) -> WorkloadKernel:
    """Look up a kernel by its qualified name, e.g. ``"Sort.BottomScan"``.

    Raises:
        WorkloadError: for an unknown kernel name.
    """
    for kernel in all_kernels():
        if kernel.name == qualified_name:
            return kernel
    raise WorkloadError(f"unknown kernel {qualified_name!r}")
