"""JSON serialization of workload definitions.

Lets users define applications declaratively (and lets the library's own
workload set be exported for inspection):

.. code-block:: json

    {
      "name": "MySolver",
      "suite": "custom",
      "iterations": 30,
      "kernels": [
        {
          "spec": {"name": "MySolver.Sweep", "total_workitems": 2097152,
                   "workgroup_size": 256, "valu_insts_per_item": 900.0,
                   "vfetch_insts_per_item": 27.0,
                   "vwrite_insts_per_item": 1.0},
          "schedule": {"type": "constant"}
        },
        {
          "spec": {"...": "..."},
          "schedule": {"type": "cyclic", "work_factors": [1.0, 0.5]}
        }
      ]
    }

Schedules serialize by type: ``constant``, ``cyclic`` (work factors) and
``table`` (per-iteration field overrides, with ``wrap``).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Mapping

from repro.errors import WorkloadError
from repro.perf.kernelspec import KernelSpec
from repro.workloads.application import Application
from repro.workloads.kernel import (
    ConstantSchedule,
    CyclicSchedule,
    TableSchedule,
    WorkloadKernel,
)

#: KernelSpec fields, in declaration order (used for round-trip checks).
_SPEC_FIELDS = tuple(f.name for f in dataclasses.fields(KernelSpec))


def spec_to_dict(spec: KernelSpec) -> Dict[str, Any]:
    """Serialize a kernel spec to a plain dict."""
    return dataclasses.asdict(spec)


def spec_from_dict(data: Mapping[str, Any]) -> KernelSpec:
    """Build a kernel spec from a mapping.

    Raises:
        WorkloadError: on unknown fields or invalid values (the spec's
            own validation errors are re-raised as-is).
    """
    unknown = set(data) - set(_SPEC_FIELDS)
    if unknown:
        raise WorkloadError(f"unknown kernel-spec fields: {sorted(unknown)}")
    return KernelSpec(**data)


def _schedule_to_dict(schedule) -> Dict[str, Any]:
    if isinstance(schedule, ConstantSchedule):
        return {"type": "constant"}
    if isinstance(schedule, CyclicSchedule):
        return {"type": "cyclic", "work_factors": list(schedule.work_factors)}
    if isinstance(schedule, TableSchedule):
        return {
            "type": "table",
            "rows": [dict(row) for row in schedule.rows],
            "wrap": schedule.wrap,
        }
    raise WorkloadError(
        f"schedule type {type(schedule).__name__!r} is not serializable"
    )


def _schedule_from_dict(data: Mapping[str, Any]):
    kind = data.get("type")
    if kind == "constant":
        return ConstantSchedule()
    if kind == "cyclic":
        return CyclicSchedule(work_factors=tuple(data["work_factors"]))
    if kind == "table":
        return TableSchedule(
            rows=tuple(dict(row) for row in data["rows"]),
            wrap=bool(data.get("wrap", True)),
        )
    raise WorkloadError(f"unknown schedule type {kind!r}")


def application_to_dict(application: Application) -> Dict[str, Any]:
    """Serialize an application (kernels + schedules) to a plain dict."""
    return {
        "name": application.name,
        "suite": application.suite,
        "iterations": application.iterations,
        "kernels": [
            {
                "spec": spec_to_dict(kernel.base),
                "schedule": _schedule_to_dict(kernel.schedule),
            }
            for kernel in application.kernels
        ],
    }


def application_from_dict(data: Mapping[str, Any]) -> Application:
    """Build an application from a mapping.

    Raises:
        WorkloadError: on missing keys or invalid content.
    """
    try:
        kernels = tuple(
            WorkloadKernel(
                base=spec_from_dict(entry["spec"]),
                schedule=_schedule_from_dict(entry.get(
                    "schedule", {"type": "constant"}
                )),
            )
            for entry in data["kernels"]
        )
        return Application(
            name=data["name"],
            suite=data.get("suite", "custom"),
            kernels=kernels,
            iterations=int(data["iterations"]),
        )
    except KeyError as missing:
        raise WorkloadError(f"missing workload key: {missing}") from None


def dumps(application: Application, indent: int = 2) -> str:
    """Serialize an application to a JSON string."""
    return json.dumps(application_to_dict(application), indent=indent)


def loads(text: str) -> Application:
    """Parse an application from a JSON string.

    Raises:
        WorkloadError: on malformed JSON or invalid content.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise WorkloadError(f"malformed workload JSON: {error}") from None
    return application_from_dict(data)


def save(application: Application, path) -> None:
    """Write an application definition to a JSON file."""
    with open(path, "w") as handle:
        handle.write(dumps(application))
        handle.write("\n")


def load(path) -> Application:
    """Read an application definition from a JSON file."""
    with open(path) as handle:
        return loads(handle.read())
