"""Application: an ordered set of kernels executed for many iterations.

"For applications that use iterative convergence algorithms and invoke the
entire application with multiple kernels multiple times, Harmonia records
the last best hardware configuration for all kernels within that
application" (Section 5.1). The :class:`Application` container captures
exactly that structure: per iteration, each kernel is launched once in
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import WorkloadError
from repro.perf.kernelspec import KernelSpec
from repro.workloads.kernel import WorkloadKernel


@dataclass(frozen=True)
class Application:
    """One benchmark application.

    Attributes:
        name: application name as the paper spells it (e.g. ``"BPT"``).
        suite: originating suite (``"SHOC"``, ``"Rodinia"``, ``"proxy"``,
            ``"Graph500"``).
        kernels: the kernels launched each iteration, in order.
        iterations: how many solver iterations a run executes (XSBench
            runs only 2, Section 7.2; Graph500's figure shows 8).
    """

    name: str
    suite: str
    kernels: Tuple[WorkloadKernel, ...]
    iterations: int

    def __post_init__(self) -> None:
        if not self.kernels:
            raise WorkloadError(f"application {self.name!r} has no kernels")
        if self.iterations < 1:
            raise WorkloadError(f"application {self.name!r} needs >= 1 iteration")
        names = [k.name for k in self.kernels]
        if len(set(names)) != len(names):
            raise WorkloadError(f"application {self.name!r} has duplicate kernel names")

    def kernel_names(self) -> Tuple[str, ...]:
        """Qualified names of all kernels, in launch order."""
        return tuple(k.name for k in self.kernels)

    def launches(self) -> Iterator[Tuple[int, WorkloadKernel, KernelSpec]]:
        """Iterate every launch of a full run.

        Yields:
            ``(iteration, kernel, spec)`` triples in execution order.
        """
        for iteration in range(self.iterations):
            for kernel in self.kernels:
                yield iteration, kernel, kernel.spec_for_iteration(iteration)

    def total_launches(self) -> int:
        """Number of kernel launches in a full run."""
        return self.iterations * len(self.kernels)
