"""Workload-side kernel descriptions and phase schedules.

HPC applications are iterative: the same kernels are invoked many times as
a solver converges (Section 5.1). A kernel's behaviour may change from
iteration to iteration — Graph500's breadth-first search sweeps the
frontier up and back down (Figure 14), XSBench's lookup tables warm up —
and Harmonia exploits the *recurrence* by using each kernel's history to
pick the next iteration's configuration.

A :class:`WorkloadKernel` pairs a base
:class:`~repro.perf.kernelspec.KernelSpec` with a :class:`PhaseSchedule`
that derives the spec actually launched at a given iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Protocol, Sequence, Tuple

from repro.errors import WorkloadError
from repro.perf.kernelspec import KernelSpec


class PhaseSchedule(Protocol):
    """Maps (base spec, iteration index) -> the spec launched there."""

    def spec_for_iteration(self, base: KernelSpec, iteration: int) -> KernelSpec:
        """Return the kernel spec for ``iteration`` (0-based)."""
        ...


@dataclass(frozen=True)
class ConstantSchedule:
    """No phase behaviour: every iteration launches the base spec."""

    def spec_for_iteration(self, base: KernelSpec, iteration: int) -> KernelSpec:
        if iteration < 0:
            raise WorkloadError("iteration must be non-negative")
        return base


@dataclass(frozen=True)
class TableSchedule:
    """Per-iteration field overrides from an explicit table.

    Attributes:
        rows: one mapping of ``KernelSpec`` field overrides per iteration.
        wrap: if True, iterations beyond the table cycle through it; if
            False they clamp to the last row.
    """

    rows: Tuple[Mapping, ...]
    wrap: bool = True

    def __post_init__(self) -> None:
        if not self.rows:
            raise WorkloadError("TableSchedule needs at least one row")

    def spec_for_iteration(self, base: KernelSpec, iteration: int) -> KernelSpec:
        if iteration < 0:
            raise WorkloadError("iteration must be non-negative")
        if self.wrap:
            row = self.rows[iteration % len(self.rows)]
        else:
            row = self.rows[min(iteration, len(self.rows) - 1)]
        return base.evolve(**dict(row))


@dataclass(frozen=True)
class CyclicSchedule:
    """Multiplicative scaling of work per iteration, cycling a pattern.

    Useful for frontier-style workloads: ``work_factors = (0.2, 1.0, 3.0,
    1.5, 0.4)`` expands and contracts the launched work. The factor scales
    ``total_workitems`` (rounded to at least one workgroup).
    """

    work_factors: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.work_factors:
            raise WorkloadError("CyclicSchedule needs at least one factor")
        if any(f <= 0 for f in self.work_factors):
            raise WorkloadError("work factors must be positive")

    def spec_for_iteration(self, base: KernelSpec, iteration: int) -> KernelSpec:
        if iteration < 0:
            raise WorkloadError("iteration must be non-negative")
        factor = self.work_factors[iteration % len(self.work_factors)]
        items = max(base.workgroup_size, int(base.total_workitems * factor))
        return base.evolve(total_workitems=items)


@dataclass(frozen=True)
class WorkloadKernel:
    """A named kernel inside an application, with phase behaviour."""

    base: KernelSpec
    schedule: PhaseSchedule = field(default_factory=ConstantSchedule)

    @property
    def name(self) -> str:
        """The kernel's qualified name (e.g. ``"Sort.BottomScan"``)."""
        return self.base.name

    def spec_for_iteration(self, iteration: int) -> KernelSpec:
        """The spec launched at application iteration ``iteration``."""
        return self.schedule.spec_for_iteration(self.base, iteration)
