"""Extension: memory bus voltage scaling (the Section 7.2 what-if).

The paper twice flags the fixed memory bus voltage as the limiting factor
on memory-side savings: "the differences would actually be greater if we
are able to scale memory bus voltage according to bus frequency"
(Section 3.3) and "we believe that it is feasible to achieve far more
power savings from memory configuration changes if voltage scaling is
applied while lowering bus speeds" (Section 7.2).

This experiment runs the full Harmonia evaluation on two otherwise
identical platforms — bus voltage fixed (the paper's hardware) vs. bus
voltage tracking frequency — and quantifies how much of the left-on-the-
table saving the what-if recovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.evaluation import EvaluationHarness
from repro.analysis.report import format_table
from repro.core.baseline import BaselinePolicy
from repro.core.harmonia import HarmoniaPolicy
from repro.experiments.context import ExperimentContext, default_context
from repro.platform.hd7970 import make_hd7970_platform
from repro.sensitivity.predictor import train_predictors
from repro.workloads.registry import all_applications


@dataclass(frozen=True)
class VoltageScalingRow:
    """One application under fixed vs. scaled memory bus voltage."""

    application: str
    ed2_fixed: float
    ed2_scaled: float
    power_fixed: float
    power_scaled: float


@dataclass(frozen=True)
class VoltageScalingResult:
    """The fixed-vs-scaled comparison across all applications."""

    rows: Tuple[VoltageScalingRow, ...]
    geomean_ed2_fixed: float
    geomean_ed2_scaled: float
    geomean_power_fixed: float
    geomean_power_scaled: float

    @property
    def ed2_gain_from_scaling(self) -> float:
        """Extra average ED² improvement the what-if unlocks (points)."""
        return self.geomean_ed2_scaled - self.geomean_ed2_fixed

    @property
    def power_gain_from_scaling(self) -> float:
        """Extra average power saving the what-if unlocks (points)."""
        return self.geomean_power_scaled - self.geomean_power_fixed


def _evaluate(memory_voltage_scaling: bool):
    platform = make_hd7970_platform(
        memory_voltage_scaling=memory_voltage_scaling
    )
    applications = all_applications()
    training = train_predictors(platform, applications)
    harness = EvaluationHarness(
        platform, BaselinePolicy(platform.config_space)
    )
    harmonia = HarmoniaPolicy(
        platform.config_space, training.compute, training.bandwidth
    )
    return harness.evaluate(applications, [harmonia])


def run(context: ExperimentContext = None) -> VoltageScalingResult:
    """Run the Harmonia evaluation with and without bus voltage scaling.

    The ``context`` argument is accepted for interface uniformity; the
    experiment builds its own platforms because the comparison is between
    two calibrations.
    """
    fixed = _evaluate(memory_voltage_scaling=False)
    scaled = _evaluate(memory_voltage_scaling=True)

    rows = []
    for comparison in fixed.for_policy("harmonia"):
        app = comparison.application
        scaled_cmp = scaled.comparison(app, "harmonia")
        rows.append(VoltageScalingRow(
            application=app,
            ed2_fixed=comparison.ed2_improvement,
            ed2_scaled=scaled_cmp.ed2_improvement,
            power_fixed=comparison.power_saving,
            power_scaled=scaled_cmp.power_saving,
        ))
    return VoltageScalingResult(
        rows=tuple(rows),
        geomean_ed2_fixed=fixed.geomean_ed2("harmonia"),
        geomean_ed2_scaled=scaled.geomean_ed2("harmonia"),
        geomean_power_fixed=fixed.geomean_power("harmonia"),
        geomean_power_scaled=scaled.geomean_power("harmonia"),
    )


def format_report(result: VoltageScalingResult) -> str:
    """Render the fixed-vs-scaled comparison."""
    table_rows = [
        (r.application, f"{r.ed2_fixed:+.1%}", f"{r.ed2_scaled:+.1%}",
         f"{r.power_fixed:+.1%}", f"{r.power_scaled:+.1%}")
        for r in result.rows
    ]
    table_rows.append((
        "geomean",
        f"{result.geomean_ed2_fixed:+.1%}",
        f"{result.geomean_ed2_scaled:+.1%}",
        f"{result.geomean_power_fixed:+.1%}",
        f"{result.geomean_power_scaled:+.1%}",
    ))
    return format_table(
        headers=("application", "ED2 (fixed V)", "ED2 (scaled V)",
                 "power (fixed V)", "power (scaled V)"),
        rows=table_rows,
        title=("Extension [Section 7.2 what-if]: memory bus voltage "
               "scaling unlocks additional savings "
               f"(+{result.ed2_gain_from_scaling:.1%} ED2, "
               f"+{result.power_gain_from_scaling:.1%} power on average)"),
    )
