"""Figures 4 and 5: board-power variation across the two knob families.

* **Figure 4** — DeviceMemory's card power across all compute
  configurations at the constant maximum memory bandwidth (264 GB/s):
  the paper measures ~70% variation.
* **Figure 5** — MaxFlops's card power across all memory configurations
  at the maximum compute configuration (32 CUs, 1 GHz): ~10% variation
  (memory bus voltage fixed, so only frequency-linear components move).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.analysis.sweep import ConfigSweep
from repro.experiments.context import ExperimentContext, default_context
from repro.units import hz_to_mhz
from repro.workloads.registry import get_kernel


@dataclass(frozen=True)
class PowerRangeResult:
    """Card power across one knob family at a fixed other knob."""

    figure: str
    workload: str
    #: (label, card power W, normalized to minimum in the set)
    points: Tuple[Tuple[str, float, float], ...]

    @property
    def variation(self) -> float:
        """(max - min) / max across the set.

        The paper's figures plot *normalized* board power (normalized to
        the maximum-power configuration in the set), so its "varies by
        about 70%" reads off that normalized axis.
        """
        powers = [p for _, p, _ in self.points]
        return (max(powers) - min(powers)) / max(powers)


def run_fig04(context: ExperimentContext = None) -> PowerRangeResult:
    """DeviceMemory power across compute configs at max memory (Fig 4)."""
    context = context or default_context()
    platform = context.platform
    spec = get_kernel("DeviceMemory.DeviceMemory").base
    sweep = ConfigSweep(platform, spec)
    f_mem_max = platform.config_space.memory_frequencies[-1]
    curve = sweep.power_vs_compute(f_mem_max)
    min_power = min(p.card_power for p in curve)
    points = tuple(
        (p.config.compute.describe(), p.card_power, p.card_power / min_power)
        for p in curve
    )
    return PowerRangeResult(figure="Figure 4", workload=spec.name, points=points)


def run_fig05(context: ExperimentContext = None) -> PowerRangeResult:
    """MaxFlops power across memory configs at max compute (Fig 5)."""
    context = context or default_context()
    platform = context.platform
    spec = get_kernel("MaxFlops.MaxFlops").base
    sweep = ConfigSweep(platform, spec)
    space = platform.config_space
    curve = sweep.power_vs_memory(space.cu_counts[-1],
                                  space.compute_frequencies[-1])
    min_power = min(p.card_power for p in curve)
    points = tuple(
        (f"mem@{hz_to_mhz(p.config.f_mem):.0f}MHz", p.card_power,
         p.card_power / min_power)
        for p in curve
    )
    return PowerRangeResult(figure="Figure 5", workload=spec.name, points=points)


def format_report(result: PowerRangeResult, paper_variation: str) -> str:
    """Render one figure's power range with the paper's variation."""
    rows = [(label, f"{watts:.1f}", f"{norm:.2f}")
            for label, watts, norm in result.points]
    rows.append(("variation", f"{result.variation:.0%}",
                 f"paper: ~{paper_variation}"))
    return format_table(
        headers=("configuration", "card W", "normalized"),
        rows=rows,
        title=f"{result.figure}: {result.workload} card power",
    )
