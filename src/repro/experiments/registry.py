"""Static registry of every paper experiment as a DAG node.

``reproduce`` used to drive its ~26 experiments through a dynamic
``importlib.import_module`` string list, which hid the one piece of
structure the pipeline scheduler needs: *which experiments share which
expensive stages*. This module replaces the string list with a static
registry of :class:`ExperimentSpec` nodes, each declaring

* its **runner** and **formatter** (the existing per-module ``run`` /
  ``format_report`` functions, adapted to a uniform signature),
* its **dependencies** — Figures 10-13 are four views of one shared
  ``evaluation`` node; the evaluation and the ablations both hang off
  the shared ``training`` node,
* its **declared inputs and version**, folded into the node's
  content-addressed manifest key (bump ``version`` after changing a
  formatter or runner so stale manifest entries stop being served).

The registry is data, not behavior: scheduling lives in
:mod:`repro.runtime.pipeline`, and ``tools/check_experiment_registry.py``
lints that every experiment module is registered here exactly once.

Registering a spec does **not** import its experiment module. Runners
and formatters resolve their module on first call (:func:`_mod`), so
importing the registry costs the specs alone — a run that serves every
report from the result manifest never loads the experiment code at
all. The old dynamic-import problem was *stringly structure* (deps and
ordering hidden in a module list), not the deferred imports; the specs
keep the structure static while the code loads lazily. Only
``fig10_13_evaluation`` and ``ablations`` are imported eagerly: their
policy matrix and study list are registry data.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import AnalysisError
from repro.experiments import ablations
from repro.experiments import fig10_13_evaluation as f1013
from repro.experiments.context import ExperimentContext
from repro.platform.store import content_digest

#: Node groups: ``core`` report nodes always run under ``reproduce``,
#: ``ablations`` only with ``--ablations``, ``internal`` nodes carry a
#: shared in-memory result and write no report file.
GROUPS = ("core", "ablations", "internal")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment pipeline node.

    Attributes:
        name: unique node name; for report nodes this is also the report
            file stem (``<name>.txt``).
        module: the defining module under ``repro.experiments`` (the
            registry lint checks coverage against the package contents).
        runner: ``runner(context, dep_results) -> payload``; dependency
            payloads arrive keyed by node name.
        formatter: renders the payload to the report text; ``None`` marks
            an internal node (shared stage, no report file).
        deps: names of nodes whose payloads this node consumes (or whose
            side effects — e.g. the trained predictors cached on the
            context — it relies on).
        inputs: declared calibration/kernel/flag inputs, folded verbatim
            into the node's manifest key; values must be canonically
            encodable (str/int/float/bool/tuples/frozen dataclasses).
        version: per-node schema version; bump to invalidate persisted
            manifest entries after changing the node's code.
        group: ``core`` | ``ablations`` | ``internal``.
    """

    name: str
    module: str
    runner: Callable[[ExperimentContext, Mapping[str, Any]], Any]
    formatter: Optional[Callable[[Any], str]] = None
    deps: Tuple[str, ...] = ()
    inputs: Tuple[Any, ...] = ()
    version: int = 1
    group: str = "core"

    def __post_init__(self) -> None:
        if self.group not in GROUPS:
            raise AnalysisError(
                f"experiment {self.name!r}: unknown group {self.group!r}"
            )
        if (self.formatter is None) != (self.group == "internal"):
            raise AnalysisError(
                f"experiment {self.name!r}: internal nodes and only internal "
                f"nodes run without a formatter"
            )

    @property
    def is_report(self) -> bool:
        """Whether this node emits a report file."""
        return self.formatter is not None


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add one spec; report/node names must be unique.

    Raises:
        AnalysisError: on a duplicate node name.
    """
    if spec.name in _REGISTRY:
        raise AnalysisError(
            f"experiment {spec.name!r} registered twice "
            f"({_REGISTRY[spec.name].module} and {spec.module})"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    """Look up one registered spec by node name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AnalysisError(f"no experiment named {name!r}") from None


def all_specs() -> Tuple[ExperimentSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


def reproduce_specs(include_ablations: bool = False) -> Tuple[ExperimentSpec, ...]:
    """The node set one ``reproduce`` invocation schedules.

    Internal nodes are always included (the scheduler prunes the ones no
    runnable report needs); ablation nodes only with
    ``include_ablations``.
    """
    groups = {"core", "internal"}
    if include_ablations:
        groups.add("ablations")
    return tuple(s for s in _REGISTRY.values() if s.group in groups)


def reproduce_fingerprint(context: ExperimentContext) -> str:
    """Digest of everything outside the specs that shapes report bytes.

    Covers the platform calibration, every kernel spec and the sweep
    grid axes (all via
    :meth:`~repro.platform.hd7970.HardwarePlatform.sweep_cache_key`, the
    same by-value key the persistent store addresses surfaces with) plus
    the application roster. Any calibration constant, kernel
    characteristic, grid axis or roster change lands a different
    fingerprint, so every manifest entry keyed under the old one is
    simply never addressed again — invalidation by value, exactly like
    the sweep store itself.
    """
    from repro.workloads.registry import all_kernels

    platform = context.platform
    surfaces = tuple(
        platform.sweep_cache_key(kernel.base) for kernel in all_kernels()
    )
    roster = tuple(
        (app.name, app.suite, app.iterations, app.kernel_names())
        for app in context.applications
    )
    return content_digest((surfaces, roster))


# --- adapters ---------------------------------------------------------------------


_MODULE_CACHE: Dict[str, Any] = {}


def _mod(name: str):
    """The experiment module behind a spec, imported on first use.

    Specs bind their defining modules by name instead of importing all
    of them at registry-import time: only two modules contribute static
    registry data (``fig10_13_evaluation``'s policy matrix and
    ``ablations``' study list) and stay eager imports. Everything else
    loads when its runner or formatter first fires — so a run that
    serves every report from the result manifest never imports the
    experiment code at all.
    """
    module = _MODULE_CACHE.get(name)
    if module is None:
        module = importlib.import_module(f"repro.experiments.{name}")
        _MODULE_CACHE[name] = module
    return module


def _simple(name: str, module: str, deps: Tuple[str, ...] = (),
            inputs: Tuple[Any, ...] = (), version: int = 1) -> ExperimentSpec:
    """A spec around a module's plain ``run`` / ``format_report`` pair."""
    return ExperimentSpec(
        name=name,
        module=module,
        runner=lambda context, _deps: _mod(module).run(context),
        formatter=lambda result: _mod(module).format_report(result),
        deps=deps,
        inputs=inputs,
        version=version,
    )


# --- the static registry ----------------------------------------------------------

# Shared internal stages. Their payloads are also cached on the
# ExperimentContext, so dependents may either read the dep payload or
# the context property — both see the same object, built exactly once.
register(ExperimentSpec(
    name="training",
    module="context",
    runner=lambda context, _deps: context.training,
    deps=(),
    inputs=("section4-predictor-training",),
    group="internal",
))
register(ExperimentSpec(
    name="evaluation",
    module="fig10_13_evaluation",
    runner=lambda context, _deps: f1013.run(context),
    deps=("training",),
    inputs=("figs10-13-policy-matrix",) + f1013.POLICIES,
    group="internal",
))

# The report nodes, in the emission order of the historical serial loop.
register(ExperimentSpec(
    name="fig04_compute_power",
    module="fig04_fig05_power_ranges",
    runner=lambda context, _deps: _mod(
        "fig04_fig05_power_ranges").run_fig04(context),
    formatter=lambda result: _mod(
        "fig04_fig05_power_ranges").format_report(result, "70%"),
    inputs=("compute-power-range", "70%"),
))
register(ExperimentSpec(
    name="fig05_memory_power",
    module="fig04_fig05_power_ranges",
    runner=lambda context, _deps: _mod(
        "fig04_fig05_power_ranges").run_fig05(context),
    formatter=lambda result: _mod(
        "fig04_fig05_power_ranges").format_report(result, "10%"),
    inputs=("memory-power-range", "10%"),
))
for _fig, _formatter in (
    ("fig10_ed2", f1013.format_fig10),
    ("fig11_energy", f1013.format_fig11),
    ("fig12_power", f1013.format_fig12),
    ("fig13_performance", f1013.format_fig13),
):
    register(ExperimentSpec(
        name=_fig,
        module="fig10_13_evaluation",
        runner=lambda context, deps: deps["evaluation"],
        formatter=_formatter,
        deps=("evaluation",),
        inputs=(_fig.split("_", 1)[0],),
    ))
register(_simple("fig01_power_breakdown", "fig01_power_breakdown",
                 inputs=("XSBench.CalculateXS", "baseline-config")))
register(_simple("table1_dvfs", "table1_dvfs"))
register(_simple("fig03_balance_points", "fig03_balance"))
register(_simple("fig06_metric_tradeoffs", "fig06_metric_tradeoffs"))
register(_simple("fig07_occupancy", "fig07_occupancy"))
register(_simple("fig08_divergence", "fig08_divergence"))
register(_simple("fig09_clock_domains", "fig09_clock_domains"))
register(_simple("table2_table3_models", "table2_table3_models",
                 deps=("training",)))
register(_simple("fig14_16_graph500", "fig14_16_graph500"))
register(_simple("fig17_power_sharing", "fig17_power_sharing",
                 deps=("evaluation",)))
register(_simple("fig18_cg_vs_fg", "fig18_cg_vs_fg", deps=("evaluation",)))
register(_simple("sec72_variants", "sec72_variants", deps=("evaluation",)))
register(_simple("ext_memory_voltage", "ext_memory_voltage"))
register(_simple("ext_thermal_capping", "ext_thermal_capping"))
# version 2: event-driven surfaces come from the batched lockstep engine
# (bitwise-identical to v1's scalar fan-out, but the producer changed).
register(_simple("ext_model_validation", "ext_model_validation", version=2))
register(_simple("ext_phase_memory", "ext_phase_memory",
                 deps=("training",)))
register(_simple("ext_power_capping", "ext_power_capping"))
register(_simple("ext_portability", "ext_portability",
                 deps=("evaluation",)))
register(_simple("oracle_gap", "oracle_gap", deps=("evaluation",)))
register(_simple("characterization", "characterization"))

for _study_name, _study in ablations.ALL_STUDIES:
    register(ExperimentSpec(
        name=f"ablation_{_study_name}",
        module="ablations",
        runner=lambda context, _deps, _s=_study: _s(context),
        formatter=ablations.format_report,
        deps=("training",),
        inputs=(_study_name,),
        group="ablations",
    ))
