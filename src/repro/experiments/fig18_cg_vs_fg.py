"""Figure 18: relative contributions of CG vs FG tuning.

The paper decomposes the energy-efficiency (ED²) improvement per
application into the part CG tuning alone achieves and the part the FG
loop adds, and reports convergence behaviour: CG typically needs a single
iteration; FG adds another 3-4 to converge. For CG outliers (LUD, SPMV)
the FG share dominates; for single-shot applications (XSBench, 2
iterations) CG does all the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import format_table
from repro.core.policy import LaunchContext
from repro.experiments.context import ExperimentContext, default_context
from repro.runtime.simulator import ApplicationRunner

#: Subset shown in the paper's figure.
FIGURE18_APPS: Tuple[str, ...] = (
    "LUD", "SPMV", "XSBench", "CoMD", "Stencil", "Sort", "miniFE", "CFD",
)


@dataclass(frozen=True)
class ContributionRow:
    """One application's CG/FG decomposition."""

    application: str
    ed2_cg: float
    ed2_harmonia: float

    @property
    def fg_contribution(self) -> float:
        """The ED² improvement the FG loop adds on top of CG."""
        return self.ed2_harmonia - self.ed2_cg


@dataclass(frozen=True)
class ConvergenceRow:
    """FG convergence of one kernel under Harmonia."""

    kernel: str
    iterations_to_settle: int
    cg_actions: int = 0
    fg_actions: int = 0


@dataclass(frozen=True)
class CgFgResult:
    """Figure 18 decomposition plus convergence measurements."""

    contributions: Tuple[ContributionRow, ...]
    convergence: Tuple[ConvergenceRow, ...]

    def median_settle_iterations(self) -> float:
        """Median kernel-boundary iterations until the config settles."""
        counts = sorted(r.iterations_to_settle for r in self.convergence)
        mid = len(counts) // 2
        if len(counts) % 2:
            return float(counts[mid])
        return 0.5 * (counts[mid - 1] + counts[mid])


def _settle_iterations(
    context: ExperimentContext, app_name: str
) -> Dict[str, ConvergenceRow]:
    """Iterations until each kernel's configuration stops changing."""
    app = context.application(app_name)
    runner = ApplicationRunner(context.platform)
    policy = context.harmonia_policy()
    result = runner.run(app, policy)
    settle: Dict[str, ConvergenceRow] = {}
    for kernel in app.kernels:
        records = result.trace.records_for_kernel(kernel.name)
        last_change = 0
        for index in range(1, len(records)):
            if records[index].config != records[index - 1].config:
                last_change = index
        stats = policy.stats(kernel.name)
        settle[kernel.name] = ConvergenceRow(
            kernel=kernel.name,
            iterations_to_settle=last_change,
            cg_actions=stats.cg_actions,
            fg_actions=stats.fg_actions,
        )
    return settle


def run(context: ExperimentContext = None) -> CgFgResult:
    """Decompose ED² gains into CG and FG shares; measure convergence."""
    context = context or default_context()
    summary = context.evaluation
    contributions = tuple(
        ContributionRow(
            application=app,
            ed2_cg=summary.comparison(app, "cg-only").ed2_improvement,
            ed2_harmonia=summary.comparison(app, "harmonia").ed2_improvement,
        )
        for app in FIGURE18_APPS
    )
    convergence = []
    for app_name in ("Sort", "Stencil", "miniFE"):
        convergence.extend(_settle_iterations(context, app_name).values())
    return CgFgResult(contributions=contributions,
                      convergence=tuple(convergence))


def format_report(result: CgFgResult) -> str:
    """Render the decomposition and convergence tables."""
    decomposition = format_table(
        headers=("app", "CG ED2", "FG adds", "FG+CG ED2"),
        rows=[
            (r.application, f"{r.ed2_cg:+.1%}", f"{r.fg_contribution:+.1%}",
             f"{r.ed2_harmonia:+.1%}")
            for r in result.contributions
        ],
        title=("Figure 18: relative contributions of CG vs FG "
               "(paper: FG dominates for CG outliers like LUD/SPMV)"),
    )
    convergence = format_table(
        headers=("kernel", "iterations to settle", "CG actions", "FG actions"),
        rows=[(r.kernel, str(r.iterations_to_settle),
               str(r.cg_actions), str(r.fg_actions))
              for r in result.convergence],
        title=(f"Convergence (median {result.median_settle_iterations():.0f} "
               "iterations; paper: CG 1 iteration + FG 3-4)"),
    )
    return "\n\n".join([decomposition, convergence])
