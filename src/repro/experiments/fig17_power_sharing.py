"""Figure 17: coordinated power sharing between GPU and memory.

For a subset of applications the paper plots GPU and memory power under
baseline and Harmonia, normalized to the baseline total. Anchors: of the
average 12% card-power saving, ~64% comes from the GPU compute
configuration and ~36% from the memory bus frequency (memory savings would
be larger with bus voltage scaling, which neither the paper's platform nor
ours can do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context

#: The application subset shown in the figure.
FIGURE17_APPS: Tuple[str, ...] = (
    "CoMD", "XSBench", "Graph500", "BPT", "Sort", "Stencil", "miniFE",
)


@dataclass(frozen=True)
class PowerSharingRow:
    """One application's GPU/memory power split, baseline vs Harmonia."""

    application: str
    baseline_gpu: float
    baseline_memory: float
    harmonia_gpu: float
    harmonia_memory: float

    @property
    def gpu_saving(self) -> float:
        """GPU power saved (W)."""
        return self.baseline_gpu - self.harmonia_gpu

    @property
    def memory_saving(self) -> float:
        """Memory power saved (W)."""
        return self.baseline_memory - self.harmonia_memory


@dataclass(frozen=True)
class PowerSharingResult:
    """Figure 17 across the application subset."""

    rows: Tuple[PowerSharingRow, ...]

    def savings_split(self) -> Tuple[float, float]:
        """(GPU share, memory share) of the total power saved."""
        gpu = sum(max(0.0, r.gpu_saving) for r in self.rows)
        mem = sum(max(0.0, r.memory_saving) for r in self.rows)
        total = gpu + mem
        if total <= 0:
            return 0.0, 0.0
        return gpu / total, mem / total


def run(context: ExperimentContext = None) -> PowerSharingResult:
    """Extract the GPU/memory split from the evaluation matrix."""
    context = context or default_context()
    summary = context.evaluation
    rows = []
    for app in FIGURE17_APPS:
        comparison = summary.comparison(app, "harmonia")
        rows.append(PowerSharingRow(
            application=app,
            baseline_gpu=comparison.baseline.avg_gpu_power,
            baseline_memory=comparison.baseline.avg_memory_power,
            harmonia_gpu=comparison.candidate.avg_gpu_power,
            harmonia_memory=comparison.candidate.avg_memory_power,
        ))
    return PowerSharingResult(rows=tuple(rows))


def format_report(result: PowerSharingResult) -> str:
    """Render the Figure 17 stacked bars as a table."""
    rows = []
    for r in result.rows:
        base_total = r.baseline_gpu + r.baseline_memory
        hm_total = r.harmonia_gpu + r.harmonia_memory
        rows.append((
            r.application,
            f"{r.baseline_gpu:.0f}", f"{r.baseline_memory:.0f}",
            f"{r.harmonia_gpu:.0f}", f"{r.harmonia_memory:.0f}",
            f"{hm_total / base_total:.2f}",
        ))
    gpu_share, mem_share = result.savings_split()
    rows.append((
        "savings split", f"GPU {gpu_share:.0%}", f"mem {mem_share:.0%}",
        "paper:", "64%", "36%",
    ))
    return format_table(
        headers=("app", "base GPU W", "base mem W", "HM GPU W", "HM mem W",
                 "HM/base"),
        rows=rows,
        title="Figure 17: relative GPU and memory power consumption",
    )
