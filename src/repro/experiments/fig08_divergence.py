"""Figure 8: divergence alone does not imply compute-frequency sensitivity.

``SRAD.Prepare`` diverges heavily (~75%) but executes only 8 ALU
instructions per workitem — launch overhead dominates, so compute
frequency barely matters. ``Sort.BottomScan`` diverges only 6% but
executes millions of dynamic instructions, so thread serialization makes
it strongly compute-frequency sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.sensitivity.measurement import measure_sensitivities
from repro.workloads.registry import get_kernel

#: The two Figure 8 kernels with the paper's divergence numbers.
FIGURE8_KERNELS: Tuple[Tuple[str, float], ...] = (
    ("SRAD.Prepare", 0.75),
    ("Sort.BottomScan", 0.06),
)


@dataclass(frozen=True)
class DivergenceRow:
    """One kernel's divergence vs compute-frequency sensitivity."""

    kernel: str
    branch_divergence: float
    paper_divergence: float
    alu_insts_per_item: float
    total_insts_millions: float
    frequency_sensitivity: float


@dataclass(frozen=True)
class DivergenceResultPair:
    """Figure 8's two bar groups."""

    rows: Tuple[DivergenceRow, DivergenceRow]

    @property
    def divergent_small(self) -> DivergenceRow:
        """High divergence, tiny kernel (SRAD.Prepare)."""
        return max(self.rows, key=lambda r: r.branch_divergence)

    @property
    def coherent_large(self) -> DivergenceRow:
        """Low divergence, huge kernel (Sort.BottomScan)."""
        return min(self.rows, key=lambda r: r.branch_divergence)


def run(context: ExperimentContext = None) -> DivergenceResultPair:
    """Divergence and measured compute-frequency sensitivity."""
    context = context or default_context()
    platform = context.platform
    rows = []
    for kernel_name, paper_divergence in FIGURE8_KERNELS:
        spec = get_kernel(kernel_name).base
        measured = measure_sensitivities(platform, spec)
        total_insts = spec.total_workitems * spec.valu_insts_per_item / 1.0e6
        rows.append(DivergenceRow(
            kernel=kernel_name,
            branch_divergence=spec.branch_divergence,
            paper_divergence=paper_divergence,
            alu_insts_per_item=spec.valu_insts_per_item,
            total_insts_millions=total_insts,
            frequency_sensitivity=measured.f_cu,
        ))
    return DivergenceResultPair(rows=(rows[0], rows[1]))


def format_report(result: DivergenceResultPair) -> str:
    """Render the Figure 8 bars."""
    rows = [
        (r.kernel, f"{r.branch_divergence:.0%}", f"{r.paper_divergence:.0%}",
         f"{r.alu_insts_per_item:.0f}", f"{r.total_insts_millions:.1f}M",
         f"{r.frequency_sensitivity:.2f}")
        for r in result.rows
    ]
    return format_table(
        headers=("kernel", "divergence", "paper", "ALU/item", "total insts",
                 "freq sensitivity"),
        rows=rows,
        title=("Figure 8: kernel size gates the impact of divergence on "
               "compute-frequency sensitivity"),
    )
