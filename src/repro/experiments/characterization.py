"""The Section 4.1 characterization data, in full.

"We execute the kernels and applications multiple times for multiple
iterations across the entire design space of compute and memory
configurations states ... Sensitivity is computed for each hardware
configuration."

The paper shows only "the most relevant data from a few representative
applications" (Figures 7-9); this experiment produces the complete
characterization the training pipeline consumes: per kernel, the measured
sensitivity to each tunable, plus per-tunable performance scaling curves
(normalized performance as each tunable sweeps its range with the others
at maximum).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.sensitivity.measurement import measure_sensitivities
from repro.units import hz_to_mhz
from repro.workloads.registry import all_kernels


@dataclass(frozen=True)
class ScalingCurve:
    """Normalized performance along one tunable (others at maximum)."""

    tunable: str
    #: (tunable value, performance normalized to the max setting)
    points: Tuple[Tuple[float, float], ...]

    def scaling_ratio(self) -> float:
        """Performance at max setting over performance at min setting."""
        return self.points[-1][1] / self.points[0][1]


@dataclass(frozen=True)
class KernelCharacterization:
    """One kernel's full Section 4.1 record."""

    kernel: str
    cu_sensitivity: float
    f_cu_sensitivity: float
    bandwidth_sensitivity: float
    compute_sensitivity: float
    curves: Mapping[str, ScalingCurve]


@dataclass(frozen=True)
class CharacterizationResult:
    """The whole suite's characterization."""

    rows: Tuple[KernelCharacterization, ...]

    def kernel(self, name: str) -> KernelCharacterization:
        """One kernel's record."""
        for row in self.rows:
            if row.kernel == name:
                return row
        raise KeyError(name)

    def most_bandwidth_sensitive(self) -> KernelCharacterization:
        """The kernel with the highest measured bandwidth sensitivity."""
        return max(self.rows, key=lambda r: r.bandwidth_sensitivity)

    def least_bandwidth_sensitive(self) -> KernelCharacterization:
        """The kernel with the lowest measured bandwidth sensitivity."""
        return min(self.rows, key=lambda r: r.bandwidth_sensitivity)


def _curve(platform, spec, tunable: str) -> ScalingCurve:
    space = platform.config_space
    top = space.max_config()
    if tunable == "n_cu":
        values = space.cu_counts
        configs = [top.replace(n_cu=v) for v in values]
    elif tunable == "f_cu":
        values = space.compute_frequencies
        configs = [top.replace(f_cu=v) for v in values]
    else:
        values = space.memory_frequencies
        configs = [top.replace(f_mem=v) for v in values]
    # Every curve point is a grid point of the kernel's sweep surface,
    # which measure_sensitivities already pulled into the shared cache.
    # Noisy platforms are served too: the launch-keyed draws applied
    # after the cache lookup match the scalar path bitwise.
    surface = platform.grid_sweep(spec)
    times = [surface.time_at(config) for config in configs]
    reference = 1.0 / times[-1]
    points = tuple(
        (float(value), (1.0 / t) / reference)
        for value, t in zip(values, times)
    )
    return ScalingCurve(tunable=tunable, points=points)


def run(context: ExperimentContext = None) -> CharacterizationResult:
    """Characterize every kernel along every tunable."""
    context = context or default_context()
    platform = context.platform
    rows = []
    for kernel in all_kernels():
        measured = measure_sensitivities(platform, kernel.base)
        curves = {
            tunable: _curve(platform, kernel.base, tunable)
            for tunable in ("n_cu", "f_cu", "f_mem")
        }
        rows.append(KernelCharacterization(
            kernel=kernel.name,
            cu_sensitivity=measured.cu,
            f_cu_sensitivity=measured.f_cu,
            bandwidth_sensitivity=measured.bandwidth,
            compute_sensitivity=measured.compute,
            curves=curves,
        ))
    return CharacterizationResult(rows=tuple(rows))


def format_report(result: CharacterizationResult) -> str:
    """Render the per-kernel sensitivity table and scaling summaries."""
    table = format_table(
        headers=("kernel", "cu", "f_cu", "bandwidth", "compute",
                 "cu-scale", "f-scale", "bw-scale"),
        rows=[
            (r.kernel,
             f"{r.cu_sensitivity:+.2f}",
             f"{r.f_cu_sensitivity:+.2f}",
             f"{r.bandwidth_sensitivity:+.2f}",
             f"{r.compute_sensitivity:+.2f}",
             f"{r.curves['n_cu'].scaling_ratio():.2f}x",
             f"{r.curves['f_cu'].scaling_ratio():.2f}x",
             f"{r.curves['f_mem'].scaling_ratio():.2f}x")
            for r in result.rows
        ],
        title=("Section 4.1 characterization: measured sensitivities and "
               "per-tunable performance scaling (max/min) for all 25 "
               "kernels"),
    )
    return table
