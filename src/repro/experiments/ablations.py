"""Ablation studies over Harmonia's design choices.

The paper fixes several controller constants empirically (Section 5.2:
the HIGH/MED/LOW bin edges and per-bin tunable values; the FG dithering
bound) and relies on properties it does not isolate (the performance-
feedback guard, counter smoothing, predictor provenance, measurement
noise). Each ablation here re-runs the full 14-application evaluation with
one knob moved and reports the headline triplet (ED² gain, performance
delta, power saving), so the contribution of each design choice is
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

from repro.analysis.evaluation import EvaluationHarness
from repro.analysis.report import format_table
from repro.core.baseline import BaselinePolicy
from repro.core.harmonia import HarmoniaPolicy
from repro.experiments.context import ExperimentContext, default_context
from repro.platform.hd7970 import HardwarePlatform, make_hd7970_platform
from repro.sensitivity.binning import SensitivityBins
from repro.sensitivity.predictor import (
    PAPER_BANDWIDTH_PREDICTOR,
    PAPER_COMPUTE_PREDICTOR,
    train_predictors,
)
from repro.workloads.registry import all_applications


@dataclass(frozen=True)
class AblationRow:
    """Headline triplet for one variant."""

    variant: str
    ed2: float
    performance: float
    power: float


@dataclass(frozen=True)
class AblationResult:
    """One ablation study: a set of variants around the default."""

    study: str
    rows: Tuple[AblationRow, ...]

    def row(self, variant: str) -> AblationRow:
        """Look up one variant's row."""
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(variant)

    def best_ed2_variant(self) -> AblationRow:
        """The variant with the highest ED² gain."""
        return max(self.rows, key=lambda r: r.ed2)


def _headline(context: ExperimentContext,
              make_policy: Callable[[], HarmoniaPolicy],
              platform: HardwarePlatform = None) -> Tuple[float, float, float]:
    platform = platform or context.platform
    harness = EvaluationHarness(platform, BaselinePolicy(platform.config_space))
    summary = harness.evaluate(context.applications, [make_policy()])
    name = make_policy().name
    return (
        summary.geomean_ed2(name),
        summary.geomean_performance(name),
        summary.geomean_power(name),
    )


def _policy(context: ExperimentContext, **kwargs) -> HarmoniaPolicy:
    training = context.training
    return HarmoniaPolicy(
        context.platform.config_space, training.compute, training.bandwidth,
        **kwargs,
    )


# --- individual studies -----------------------------------------------------------


def ablate_bin_edges(context: ExperimentContext = None) -> AblationResult:
    """Sensitivity-bin edges (paper: <30% / 30-70% / >70%)."""
    context = context or default_context()
    rows = []
    for low, high in ((0.20, 0.60), (0.30, 0.70), (0.40, 0.80), (0.30, 0.90)):
        bins = SensitivityBins(low_edge=low, high_edge=high)
        ed2, perf, power = _headline(
            context, lambda b=bins: _policy(context, bins=b)
        )
        label = f"edges {low:.0%}/{high:.0%}"
        if (low, high) == (0.30, 0.70):
            label += " (paper)"
        rows.append(AblationRow(variant=label, ed2=ed2, performance=perf,
                                power=power))
    return AblationResult(study="sensitivity bin edges", rows=tuple(rows))


def ablate_fg_tolerance(context: ExperimentContext = None) -> AblationResult:
    """The FG performance-feedback tolerance (default 1%)."""
    context = context or default_context()
    rows = []
    for tolerance in (0.002, 0.01, 0.03, 0.10):
        ed2, perf, power = _headline(
            context, lambda t=tolerance: _policy(context, tolerance=t)
        )
        label = f"tolerance {tolerance:.1%}"
        if tolerance == 0.01:
            label += " (default)"
        rows.append(AblationRow(variant=label, ed2=ed2, performance=perf,
                                power=power))
    return AblationResult(study="FG feedback tolerance", rows=tuple(rows))


def ablate_max_dithering(context: ExperimentContext = None) -> AblationResult:
    """The FG dithering bound before convergence (Algorithm 1)."""
    context = context or default_context()
    rows = []
    for bound in (2, 4, 8, 16):
        ed2, perf, power = _headline(
            context, lambda b=bound: _policy(context, max_dithering=b)
        )
        label = f"max dithering {bound}"
        if bound == 8:
            label += " (default)"
        rows.append(AblationRow(variant=label, ed2=ed2, performance=perf,
                                power=power))
    return AblationResult(study="FG dithering bound", rows=tuple(rows))


def ablate_fg_disabled(context: ExperimentContext = None) -> AblationResult:
    """CG-only vs FG+CG vs FG-heavy (no CG jumps beyond the first)."""
    context = context or default_context()
    variants = (
        ("CG only", dict(enable_fg=False)),
        ("FG+CG (Harmonia)", dict()),
        ("FG impatient (patience 1)", dict(fg_patience=1)),
        ("FG patient (patience 4)", dict(fg_patience=4)),
    )
    rows = []
    for label, kwargs in variants:
        ed2, perf, power = _headline(
            context, lambda k=kwargs: _policy(context, **k)
        )
        rows.append(AblationRow(variant=label, ed2=ed2, performance=perf,
                                power=power))
    return AblationResult(study="CG/FG composition", rows=tuple(rows))


def ablate_predictor_source(context: ExperimentContext = None) -> AblationResult:
    """Refit Table 3 models vs the paper's published coefficients.

    The paper's weights encode the HD7970 silicon's counter scales; run
    verbatim on this substrate they misrank sensitivities, quantifying how
    platform-specific the regression is (and why Section 4's *methodology*
    — retrain per platform — is the portable artifact).
    """
    context = context or default_context()
    training = context.training
    space = context.platform.config_space
    variants = (
        ("refit on this substrate",
         lambda: HarmoniaPolicy(space, training.compute, training.bandwidth)),
        ("paper Table 3 verbatim",
         lambda: HarmoniaPolicy(space, PAPER_COMPUTE_PREDICTOR,
                                PAPER_BANDWIDTH_PREDICTOR)),
    )
    rows = []
    for label, factory in variants:
        ed2, perf, power = _headline(context, factory)
        rows.append(AblationRow(variant=label, ed2=ed2, performance=perf,
                                power=power))
    return AblationResult(study="predictor provenance", rows=tuple(rows))


def ablate_measurement_noise(context: ExperimentContext = None) -> AblationResult:
    """Controller robustness to run-to-run measurement noise.

    The paper averages repeated runs to remove variance (Section 6); the
    online controller still sees noisy per-launch feedback. This study
    runs the whole evaluation on noisy platforms.
    """
    context = context or default_context()
    rows = []
    for noise in (0.0, 0.005, 0.02, 0.05):
        platform = make_hd7970_platform(noise_std_fraction=noise, seed=17)
        applications = all_applications()
        training = train_predictors(platform, applications)
        harness = EvaluationHarness(
            platform, BaselinePolicy(platform.config_space)
        )
        policy = HarmoniaPolicy(
            platform.config_space, training.compute, training.bandwidth
        )
        summary = harness.evaluate(applications, [policy])
        label = f"noise {noise:.1%}"
        if noise == 0.0:
            label += " (default)"
        rows.append(AblationRow(
            variant=label,
            ed2=summary.geomean_ed2("harmonia"),
            performance=summary.geomean_performance("harmonia"),
            power=summary.geomean_power("harmonia"),
        ))
    return AblationResult(study="measurement noise", rows=tuple(rows))


#: All studies, for the benchmark harness.
ALL_STUDIES: Tuple[Tuple[str, Callable[..., AblationResult]], ...] = (
    ("bin_edges", ablate_bin_edges),
    ("fg_tolerance", ablate_fg_tolerance),
    ("max_dithering", ablate_max_dithering),
    ("cg_fg_composition", ablate_fg_disabled),
    ("predictor_source", ablate_predictor_source),
    ("measurement_noise", ablate_measurement_noise),
)


def format_report(result: AblationResult) -> str:
    """Render one ablation study."""
    rows = [
        (r.variant, f"{r.ed2:+.1%}", f"{r.performance:+.2%}",
         f"{r.power:+.1%}")
        for r in result.rows
    ]
    return format_table(
        headers=("variant", "ED2 gain", "performance", "power saving"),
        rows=rows,
        title=f"Ablation: {result.study}",
    )
