"""Figure 1: power breakdown in a discrete GPU card.

The paper opens with the power distribution of an HD7970 executing the
memory-intensive XSBench: the memory subsystem (GDDR5 devices + PHYs) is a
major consumer of card power alongside the GPU chip, motivating coordinated
compute/memory management. We reproduce the breakdown by running XSBench's
main kernel at the baseline (boost) configuration and reading the card
power decomposition of Equation 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.workloads.registry import get_kernel


@dataclass(frozen=True)
class PowerBreakdownResult:
    """Card power decomposition for a memory-intensive workload (W)."""

    workload: str
    gpu_power: float
    memory_power: float
    other_power: float

    @property
    def card_power(self) -> float:
        """Total card power (W)."""
        return self.gpu_power + self.memory_power + self.other_power

    @property
    def memory_fraction(self) -> float:
        """Memory share of total card power."""
        return self.memory_power / self.card_power

    @property
    def gpu_fraction(self) -> float:
        """GPU chip share of total card power."""
        return self.gpu_power / self.card_power


def run(context: ExperimentContext = None) -> PowerBreakdownResult:
    """Reproduce the Figure 1 breakdown (XSBench at the baseline config)."""
    context = context or default_context()
    platform = context.platform
    kernel = get_kernel("XSBench.CalculateXS").base
    # Power samples are noise-free, so the cached sweep surface serves
    # this point identically to a scalar run.
    result = platform.grid_sweep(kernel).result_at_config(
        platform.baseline_config()
    )
    return PowerBreakdownResult(
        workload=kernel.name,
        gpu_power=result.power.gpu,
        memory_power=result.power.memory,
        other_power=result.power.other,
    )


def format_report(result: PowerBreakdownResult) -> str:
    """Render the breakdown as the paper's pie-chart shares."""
    rows = [
        ("GPU chip (GPUPwr)", f"{result.gpu_power:.1f}",
         f"{result.gpu_fraction:.0%}"),
        ("Memory + PHY (MemPwr)", f"{result.memory_power:.1f}",
         f"{result.memory_fraction:.0%}"),
        ("Rest of card (OtherPwr)", f"{result.other_power:.1f}",
         f"{result.other_power / result.card_power:.0%}"),
        ("Total (GPUCardPwr)", f"{result.card_power:.1f}", "100%"),
    ]
    return format_table(
        headers=("component", "watts", "share"),
        rows=rows,
        title=f"Figure 1: card power breakdown, {result.workload} @ baseline "
              "(paper: memory is a major consumer for memory-intensive work)",
    )
