"""Figure 7: VGPR-caused kernel occupancy limits bandwidth sensitivity.

``Sort.BottomScan`` uses 66 of 256 VGPRs per workitem, so only 3 of 10
wavefronts fit per SIMD — 30% occupancy — and the resulting lack of
memory-level parallelism makes it insensitive to memory bus frequency.
``CoMD.AdvanceVelocity`` is not VGPR-limited (100% occupancy) and is
strongly bandwidth sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.gpu.occupancy import compute_occupancy
from repro.sensitivity.measurement import measure_sensitivities
from repro.workloads.registry import get_kernel

#: The two Figure 7 kernels with the paper's numbers.
FIGURE7_KERNELS: Tuple[Tuple[str, float], ...] = (
    ("Sort.BottomScan", 0.30),
    ("CoMD.AdvanceVelocity", 1.00),
)


@dataclass(frozen=True)
class OccupancyRow:
    """One kernel's occupancy and bandwidth sensitivity."""

    kernel: str
    occupancy: float
    paper_occupancy: float
    limiting_resource: str
    waves_per_simd: int
    bandwidth_sensitivity: float


@dataclass(frozen=True)
class OccupancyResultPair:
    """Figure 7's two bars."""

    rows: Tuple[OccupancyRow, OccupancyRow]

    @property
    def low_occupancy(self) -> OccupancyRow:
        """The occupancy-limited kernel (Sort.BottomScan)."""
        return min(self.rows, key=lambda r: r.occupancy)

    @property
    def high_occupancy(self) -> OccupancyRow:
        """The fully occupied kernel (CoMD.AdvanceVelocity)."""
        return max(self.rows, key=lambda r: r.occupancy)


def run(context: ExperimentContext = None) -> OccupancyResultPair:
    """Occupancy + measured bandwidth sensitivity for both kernels."""
    context = context or default_context()
    platform = context.platform
    arch = platform.calibration.arch
    rows = []
    for kernel_name, paper_occupancy in FIGURE7_KERNELS:
        spec = get_kernel(kernel_name).base
        occupancy = compute_occupancy(
            arch,
            vgprs_per_workitem=spec.vgprs_per_workitem,
            sgprs_per_wave=spec.sgprs_per_wave,
            lds_bytes_per_workgroup=spec.lds_bytes_per_workgroup,
            workgroup_size=spec.workgroup_size,
        )
        measured = measure_sensitivities(platform, spec)
        rows.append(OccupancyRow(
            kernel=kernel_name,
            occupancy=occupancy.occupancy,
            paper_occupancy=paper_occupancy,
            limiting_resource=occupancy.limiting_resource,
            waves_per_simd=occupancy.waves_per_simd,
            bandwidth_sensitivity=measured.bandwidth,
        ))
    return OccupancyResultPair(rows=(rows[0], rows[1]))


def format_report(result: OccupancyResultPair) -> str:
    """Render the Figure 7 bars."""
    rows = [
        (r.kernel, f"{r.occupancy:.0%}", f"{r.paper_occupancy:.0%}",
         r.limiting_resource, str(r.waves_per_simd),
         f"{r.bandwidth_sensitivity:.2f}")
        for r in result.rows
    ]
    return format_table(
        headers=("kernel", "occupancy", "paper", "limiter", "waves/SIMD",
                 "BW sensitivity"),
        rows=rows,
        title=("Figure 7: occupancy-limited kernels are insensitive to "
               "memory bus frequency"),
    )
