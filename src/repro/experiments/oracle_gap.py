"""Decomposing the Harmonia-to-oracle ED² gap.

EXPERIMENTS.md documents one headline deviation from the paper: our
exhaustive ED² oracle leads Harmonia by ~8 points where the paper reports
~3. This experiment attributes the gap by interposing a third scheme, a
**performance-constrained oracle**: exhaustive per-launch search like the
oracle, but restricted to configurations whose launch time stays within
Harmonia's own FG tolerance of the baseline.

The decomposition per application:

* ``oracle − perf_oracle`` — what the unconstrained oracle buys by
  *trading performance away* (a few percent of time for large power
  cuts). Harmonia's design explicitly refuses this trade ("we seek to
  concurrently minimize performance impact"), so this share of the gap is
  a policy difference, not a deficiency.
* ``perf_oracle − harmonia`` — what free exhaustive profiling buys over
  online adaptation at the *same* performance constraint: the honest
  adaptation gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.core.policy import HistoryMixin, LaunchContext
from repro.experiments.context import ExperimentContext, default_context
from repro.gpu.config import HardwareConfig
from repro.perf.kernelspec import KernelSpec
from repro.platform.hd7970 import HardwarePlatform
from repro.runtime.simulator import ApplicationRunner


class PerfConstrainedOracle(HistoryMixin):
    """Exhaustive ED² search restricted to near-baseline performance."""

    def __init__(self, platform: HardwarePlatform,
                 perf_tolerance: float = 0.01):
        super().__init__()
        self._platform = platform
        self._tolerance = perf_tolerance
        self._cache: Dict[KernelSpec, HardwareConfig] = {}

    @property
    def name(self) -> str:
        """Policy name."""
        return "perf-oracle"

    def reset(self) -> None:
        """Forget run history (the exact profile cache survives)."""
        self.clear_history()

    def best_config_for_spec(self, spec: KernelSpec) -> HardwareConfig:
        """ED²-optimal config among those within the perf tolerance."""
        if spec in self._cache:
            return self._cache[spec]
        # Constrained argmin over the shared cached sweep surface. This
        # serves noisy platforms too: the launch-keyed draws applied after
        # the cache lookup make every element bitwise identical to a
        # scalar run_kernel call, and np.argmin returns the first minimum
        # in grid order — the same config a strict-< scalar loop keeps.
        surface = self._platform.grid_sweep(spec)
        limit = (surface.time_at(self._platform.baseline_config())
                 * (1.0 + self._tolerance))
        metric = np.where(surface.time <= limit, surface.ed2, np.inf)
        best_config = surface.configs[int(np.argmin(metric))]
        self._cache[spec] = best_config
        return best_config

    def config_for(self, context: LaunchContext) -> HardwareConfig:
        """Profile exhaustively under the performance constraint."""
        return self.best_config_for_spec(context.spec)

    def observe(self, context: LaunchContext, result) -> None:
        """No feedback needed."""
        self.history_for(context.kernel_name).record(result)


@dataclass(frozen=True)
class GapRow:
    """One application's gap decomposition (ED² improvements)."""

    application: str
    harmonia: float
    perf_oracle: float
    oracle: float

    @property
    def perf_trading_share(self) -> float:
        """Gap points attributable to trading performance away."""
        return self.oracle - self.perf_oracle

    @property
    def adaptation_share(self) -> float:
        """Gap points attributable to online adaptation vs free search."""
        return self.perf_oracle - self.harmonia


@dataclass(frozen=True)
class OracleGapResult:
    """The decomposition across all applications."""

    rows: Tuple[GapRow, ...]
    geomean_harmonia: float
    geomean_perf_oracle: float
    geomean_oracle: float

    def mean_perf_trading_share(self) -> float:
        """Average points the oracle gains by sacrificing performance."""
        return self.geomean_oracle - self.geomean_perf_oracle

    def mean_adaptation_share(self) -> float:
        """Average points free profiling gains at equal perf constraint."""
        return self.geomean_perf_oracle - self.geomean_harmonia


def run(context: ExperimentContext = None) -> OracleGapResult:
    """Run the three-way comparison over all applications."""
    context = context or default_context()
    summary = context.evaluation
    platform = context.platform
    runner = ApplicationRunner(platform)
    perf_oracle = PerfConstrainedOracle(platform)

    rows = []
    ratios_po = []
    for app in context.applications:
        base = summary.runs[app.name]["baseline"].metrics
        po_run = runner.run(app, perf_oracle, reset_policy=False)
        po = 1.0 - po_run.metrics.ed2 / base.ed2
        rows.append(GapRow(
            application=app.name,
            harmonia=summary.comparison(app.name, "harmonia").ed2_improvement,
            perf_oracle=po,
            oracle=summary.comparison(app.name, "oracle").ed2_improvement,
        ))
        ratios_po.append(1.0 - po)
    from repro.runtime.metrics import geomean
    return OracleGapResult(
        rows=tuple(rows),
        geomean_harmonia=summary.geomean_ed2("harmonia"),
        geomean_perf_oracle=1.0 - geomean(ratios_po),
        geomean_oracle=summary.geomean_ed2("oracle"),
    )


def format_report(result: OracleGapResult) -> str:
    """Render the decomposition."""
    rows = [
        (r.application, f"{r.harmonia:+.1%}", f"{r.perf_oracle:+.1%}",
         f"{r.oracle:+.1%}", f"{r.adaptation_share:+.1%}",
         f"{r.perf_trading_share:+.1%}")
        for r in result.rows
    ]
    rows.append((
        "geomean",
        f"{result.geomean_harmonia:+.1%}",
        f"{result.geomean_perf_oracle:+.1%}",
        f"{result.geomean_oracle:+.1%}",
        f"{result.mean_adaptation_share():+.1%}",
        f"{result.mean_perf_trading_share():+.1%}",
    ))
    return format_table(
        headers=("app", "harmonia", "perf-oracle", "oracle",
                 "adaptation gap", "perf-trading gap"),
        rows=rows,
        title=("Oracle-gap decomposition: how much of the oracle's lead "
               "comes from trading performance away (which Harmonia "
               "refuses by design) vs from free exhaustive profiling"),
    )
