"""Paper experiments: one module per table/figure of the evaluation.

Each module exposes a ``run(...)`` entry point returning a structured
result object plus a ``format_report(...)`` helper that renders the same
rows/series the paper reports. The benchmark harness under
``benchmarks/`` is a thin timing wrapper around these entry points, and
the integration tests assert the *shape* of each result (who wins, by
roughly what factor, where crossovers fall).

:mod:`repro.experiments.context` builds and caches the shared stack
(platform, trained predictors, policy-evaluation matrix) so that the
twenty-odd experiments do not repeat the expensive steps.
"""

from repro.experiments.context import ExperimentContext, default_context

__all__ = ["ExperimentContext", "default_context"]
