"""Figure 6: what each optimization target costs.

For LUD and DeviceMemory the paper exhaustively searches all ~450
configurations for (i) minimum energy, (ii) minimum ED², (iii) maximum
performance, and reports the resulting performance/energy/ED²/ED of each,
normalized to the best-performing configuration. Anchors:

* energy-optimal loses **69% / 66%** performance (LUD / DeviceMemory),
* ED²-optimal loses only **~1%** performance while saving **60% / 38%**
  energy relative to the energy-optimal... (relative to the performance
  point the paper states the ED²-optimal config "still realizes 60% and
  38% reduction in energy compared to the energy optimized case" — i.e.
  compared to what the energy-obsessed configuration would give up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.analysis.report import format_table
from repro.analysis.sweep import ConfigSweep, SweepPoint
from repro.experiments.context import ExperimentContext, default_context
from repro.workloads.registry import get_kernel

#: The two Figure 6 workloads.
FIGURE6_KERNELS: Tuple[Tuple[str, str], ...] = (
    ("LUD", "LUD.Internal"),
    ("DeviceMemory", "DeviceMemory.DeviceMemory"),
)


@dataclass(frozen=True)
class OptimumRow:
    """One optimization target's outcome, normalized to best-performing."""

    target: str
    config: str
    performance: float
    energy: float
    ed2: float
    ed: float


@dataclass(frozen=True)
class MetricTradeoffResult:
    """Figure 6 for one workload."""

    workload: str
    rows: Tuple[OptimumRow, ...]

    def row(self, target: str) -> OptimumRow:
        """Row for one optimization target."""
        for row in self.rows:
            if row.target == target:
                return row
        raise KeyError(target)

    @property
    def energy_opt_perf_loss(self) -> float:
        """Performance loss of the energy-optimal configuration."""
        return 1.0 - self.row("min-energy").performance

    @property
    def ed2_opt_perf_loss(self) -> float:
        """Performance loss of the ED²-optimal configuration."""
        return 1.0 - self.row("min-ed2").performance


def run_workload(workload: str, kernel_name: str,
                 context: ExperimentContext = None) -> MetricTradeoffResult:
    """Exhaustive metric-optimal search for one workload."""
    context = context or default_context()
    sweep = ConfigSweep(context.platform, get_kernel(kernel_name).base)
    best_perf = sweep.optimum_performance()

    def normalized(target: str, point: SweepPoint) -> OptimumRow:
        return OptimumRow(
            target=target,
            config=point.config.describe(),
            performance=point.performance / best_perf.performance,
            energy=point.energy / best_perf.energy,
            ed2=point.ed2 / best_perf.ed2,
            ed=point.ed / best_perf.ed,
        )

    rows = (
        normalized("min-energy", sweep.optimum_energy()),
        normalized("min-ed2", sweep.optimum_ed2()),
        normalized("max-perf", best_perf),
    )
    return MetricTradeoffResult(workload=workload, rows=rows)


def run(context: ExperimentContext = None) -> Dict[str, MetricTradeoffResult]:
    """Figure 6 for both workloads."""
    context = context or default_context()
    return {
        workload: run_workload(workload, kernel, context)
        for workload, kernel in FIGURE6_KERNELS
    }


def format_report(results: Mapping[str, MetricTradeoffResult]) -> str:
    """Render the three-bar groups of Figure 6."""
    sections = []
    for workload, result in results.items():
        rows = [
            (r.target, r.config, f"{r.performance:.2f}", f"{r.energy:.2f}",
             f"{r.ed2:.2f}", f"{r.ed:.2f}")
            for r in result.rows
        ]
        sections.append(format_table(
            headers=("target", "config", "perf", "energy", "ED2", "ED"),
            rows=rows,
            title=(f"Figure 6 [{workload}]: normalized to best-performing "
                   "(paper: energy-opt loses 66-69% perf; ED2-opt ~1%)"),
        ))
    return "\n\n".join(sections)
