"""Extension: coordinated power management under a tight thermal envelope.

The paper's closing insight (Section 7.3, #6): "With advanced packaging
technologies, compute and memory will share tighter package power
envelopes ... Coordinated power management and the concept of hardware
balance will become increasingly important in such systems."

On the paper's open-air test bed, thermal headroom never runs out and the
baseline boosts permanently. This experiment simulates the tighter
envelope: a poorly-cooled enclosure whose sustainable power sits *below*
the baseline's draw. Both policies run under the same PowerTune-style
thermal governor (one compute-DVFS step down per missing headroom band):

* the **baseline** keeps requesting boost, overshoots, and gets throttled
  into lower DVFS states for much of the run;
* **Harmonia** draws less power at the same performance, stays inside the
  envelope, and keeps its configuration — turning its energy savings into
  a *performance* win, exactly the dynamic the paper predicts for
  stacked-memory packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.core.baseline import BaselinePolicy
from repro.experiments.context import ExperimentContext, default_context
from repro.power.thermal import ThermalGovernor, ThermalModel
from repro.runtime.simulator import ApplicationRunner

#: Applications whose baseline draw exceeds the constrained envelope.
THERMAL_APPS: Tuple[str, ...] = ("MaxFlops", "Stencil", "LUD", "Sort")

#: A constrained enclosure: ~145 W sustainable (60 °C rise over ambient at
#: 0.414 °C/W). The cap sits between Harmonia's draw and the baseline's
#: draw for compute-bound workloads: the baseline must shed compute
#: frequency (which is exactly what hurts these workloads), while
#: Harmonia's memory-side savings keep it inside the envelope. The thermal time constant is matched to the simulator's
#: scaled-down application durations (tens of milliseconds) so a run
#: actually exercises the transient, the same way the paper's workloads
#: (seconds) exercise a real card's tens-of-seconds constant.
CONSTRAINED_ENCLOSURE = ThermalModel(
    resistance=0.414,
    capacitance=0.07,
    ambient=35.0,
    t_max=95.0,
)


@dataclass(frozen=True)
class ThermalRow:
    """One application under the constrained envelope."""

    application: str
    baseline_time: float
    harmonia_time: float
    baseline_peak_temp: float
    harmonia_peak_temp: float
    baseline_over_cap: float
    harmonia_over_cap: float

    @property
    def harmonia_speedup(self) -> float:
        """Harmonia's performance relative to the throttled baseline."""
        return self.baseline_time / self.harmonia_time - 1.0


@dataclass(frozen=True)
class ThermalCappingResult:
    """The constrained-envelope comparison."""

    sustainable_power: float
    rows: Tuple[ThermalRow, ...]

    def mean_speedup(self) -> float:
        """Average Harmonia speedup over the throttled baseline."""
        return sum(r.harmonia_speedup for r in self.rows) / len(self.rows)


def _run_hot(context: ExperimentContext, app_name: str, inner_policy):
    """Run an application repeatedly until the card is heat-soaked."""
    app = context.application(app_name)
    governor = ThermalGovernor(
        inner_policy, context.platform.config_space, CONSTRAINED_ENCLOSURE
    )
    runner = ApplicationRunner(context.platform)
    # Pre-charge to a warm but under-cap operating point (90% of the
    # sustainable power), as if the card had been busy beforehand.
    governor.thermal_state.apply(
        0.9 * CONSTRAINED_ENCLOSURE.sustainable_power(), 10.0
    )
    result = runner.run(app, governor, reset_policy=False)
    return result, governor.thermal_state


def run(context: ExperimentContext = None) -> ThermalCappingResult:
    """Run baseline vs Harmonia under the constrained enclosure."""
    context = context or default_context()
    rows = []
    for app_name in THERMAL_APPS:
        base_run, base_state = _run_hot(
            context, app_name, BaselinePolicy(context.platform.config_space)
        )
        hm_run, hm_state = _run_hot(
            context, app_name, context.harmonia_policy()
        )
        rows.append(ThermalRow(
            application=app_name,
            baseline_time=base_run.metrics.time,
            harmonia_time=hm_run.metrics.time,
            baseline_peak_temp=base_state.peak_temperature,
            harmonia_peak_temp=hm_state.peak_temperature,
            baseline_over_cap=base_state.fraction_above_cap(),
            harmonia_over_cap=hm_state.fraction_above_cap(),
        ))
    return ThermalCappingResult(
        sustainable_power=CONSTRAINED_ENCLOSURE.sustainable_power(),
        rows=tuple(rows),
    )


def format_report(result: ThermalCappingResult) -> str:
    """Render the constrained-envelope comparison."""
    rows = [
        (r.application,
         f"{r.baseline_time * 1e3:.1f}", f"{r.harmonia_time * 1e3:.1f}",
         f"{r.harmonia_speedup:+.1%}",
         f"{r.baseline_peak_temp:.1f}", f"{r.harmonia_peak_temp:.1f}")
        for r in result.rows
    ]
    return format_table(
        headers=("app", "baseline ms", "harmonia ms", "speedup",
                 "base peak C", "hm peak C"),
        rows=rows,
        title=("Extension [Section 7.3 insight 6]: tight thermal envelope "
               f"({result.sustainable_power:.0f} W sustainable) — "
               "Harmonia's balance turns power savings into performance "
               f"(mean {result.mean_speedup():+.1%})"),
    )
