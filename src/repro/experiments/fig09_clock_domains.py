"""Figure 9: clock-domain crossings make memory-bound kernels
compute-frequency sensitive.

``DeviceMemory`` misses the L2 almost always, so its requests cross the
compute-clock -> memory-clock boundary at a rate proportional to the
compute frequency. The figure shows its off-chip interconnect activity
(icActivity) is high *and* its compute-frequency sensitivity is high —
"especially when compute frequency is low since the effective bandwidth to
the DRAM is reduced".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.sensitivity.measurement import measure_sensitivities, sensitivity_between
from repro.units import hz_to_mhz
from repro.workloads.registry import get_kernel


@dataclass(frozen=True)
class ClockDomainResult:
    """Figure 9's two columns plus the low-clock bandwidth throttling."""

    kernel: str
    ic_activity: float
    frequency_sensitivity: float
    #: sensitivity measured over the low half of the clock range only
    low_clock_sensitivity: float
    #: (compute MHz, achieved DRAM bandwidth GB/s, binding limit) at max mem
    bandwidth_vs_f_cu: Tuple[Tuple[float, float, str], ...]

    def crossing_limited_points(self) -> int:
        """Configurations where the clock crossing binds bandwidth."""
        return sum(1 for _, _, limit in self.bandwidth_vs_f_cu
                   if limit == "crossing")


def run(context: ExperimentContext = None) -> ClockDomainResult:
    """Reproduce Figure 9 on DeviceMemory."""
    context = context or default_context()
    platform = context.platform
    spec = get_kernel("DeviceMemory.DeviceMemory").base
    space = platform.config_space
    top = space.max_config()

    # Every probed point is a grid point: index the kernel's cached
    # sweep surface (shared with measure_sensitivities) instead of
    # re-running the model per configuration.
    surface = platform.grid_sweep(spec)
    baseline_run = surface.result_at_config(top)
    measured = measure_sensitivities(platform, spec)

    # Sensitivity over the low half of the compute clock range, where the
    # paper says the effect is strongest.
    freqs = space.compute_frequencies
    mid = freqs[len(freqs) // 2]
    t_low = surface.time_at(top.replace(f_cu=freqs[0]))
    t_mid = surface.time_at(top.replace(f_cu=mid))
    low_clock = sensitivity_between(t_low, t_mid, freqs[0], mid)

    bandwidth_curve = []
    for f_cu in freqs:
        result = surface.result_at_config(top.replace(f_cu=f_cu))
        bandwidth_curve.append((
            hz_to_mhz(f_cu),
            result.achieved_bandwidth / 1.0e9,
            result.bandwidth_limit,
        ))

    return ClockDomainResult(
        kernel=spec.name,
        ic_activity=baseline_run.counters.ic_activity,
        frequency_sensitivity=measured.f_cu,
        low_clock_sensitivity=low_clock,
        bandwidth_vs_f_cu=tuple(bandwidth_curve),
    )


def format_report(result: ClockDomainResult) -> str:
    """Render Figure 9 plus the underlying bandwidth throttling."""
    rows = [
        (f"{mhz:.0f}", f"{bw:.0f}", limit)
        for mhz, bw, limit in result.bandwidth_vs_f_cu
    ]
    header = format_table(
        headers=("compute MHz", "achieved GB/s", "binding limit"),
        rows=rows,
        title=(f"Figure 9 [{result.kernel}]: icActivity="
               f"{result.ic_activity:.2f}, freq sensitivity="
               f"{result.frequency_sensitivity:.2f} "
               f"(low-clock: {result.low_clock_sensitivity:.2f}) — "
               "paper: both high for memory-bound kernels"),
    )
    return header
