"""Extension: Harmonia vs reactive power capping at equal power.

Section 8 positions Harmonia against budget-enforcement approaches:
"unlike many of these efforts, we seek to concurrently minimize
performance impact rather than trade performance for improvements in
energy efficiency."

The comparison that makes this concrete: for each application, run
Harmonia, read off the average card power it settled at, then hand a
workload-blind reactive capper (:class:`~repro.core.capping.
PowerCapPolicy`) **that exact power budget**. Both schemes now spend the
same power; the difference is *where* they spend it. The capper throttles
the classic knob (compute frequency) without knowing whether the kernel
needs compute or bandwidth; Harmonia places the reduction on the
resource the kernel does not need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.core.capping import PowerCapPolicy
from repro.experiments.context import ExperimentContext, default_context
from repro.runtime.simulator import ApplicationRunner

#: A representative mixed subset (compute-bound, memory-bound, balanced).
CAPPING_APPS: Tuple[str, ...] = (
    "MaxFlops", "DeviceMemory", "CoMD", "miniFE", "LUD", "SPMV",
)


@dataclass(frozen=True)
class CappingRow:
    """One application at matched power budgets."""

    application: str
    budget: float
    harmonia_perf: float
    capper_perf: float
    harmonia_power: float
    capper_power: float

    @property
    def harmonia_advantage(self) -> float:
        """Performance points Harmonia keeps over the blind capper."""
        return self.harmonia_perf - self.capper_perf


@dataclass(frozen=True)
class PowerCappingResult:
    """The equal-power comparison across the subset."""

    rows: Tuple[CappingRow, ...]

    def mean_advantage(self) -> float:
        """Average performance advantage of coordination over capping."""
        return sum(r.harmonia_advantage for r in self.rows) / len(self.rows)


def run(context: ExperimentContext = None) -> PowerCappingResult:
    """Run the matched-budget comparison."""
    context = context or default_context()
    platform = context.platform
    runner = ApplicationRunner(platform)
    rows = []
    for app_name in CAPPING_APPS:
        app = context.application(app_name)
        baseline = runner.run(app, context.baseline_policy())
        harmonia = runner.run(app, context.harmonia_policy())
        budget = harmonia.metrics.avg_power
        capper = PowerCapPolicy(platform.config_space, budget_watts=budget)
        capped = runner.run(app, capper, reset_policy=False)
        rows.append(CappingRow(
            application=app_name,
            budget=budget,
            harmonia_perf=baseline.metrics.time / harmonia.metrics.time - 1,
            capper_perf=baseline.metrics.time / capped.metrics.time - 1,
            harmonia_power=harmonia.metrics.avg_power,
            capper_power=capped.metrics.avg_power,
        ))
    return PowerCappingResult(rows=tuple(rows))


def format_report(result: PowerCappingResult) -> str:
    """Render the matched-budget comparison."""
    rows = [
        (r.application, f"{r.budget:.0f}",
         f"{r.harmonia_perf:+.1%}", f"{r.capper_perf:+.1%}",
         f"{r.capper_power:.0f}", f"{r.harmonia_advantage:+.1%}")
        for r in result.rows
    ]
    return format_table(
        headers=("app", "budget W", "harmonia perf", "capper perf",
                 "capper W", "advantage"),
        rows=rows,
        title=("Extension [Section 8 contrast]: at equal power budgets, "
               "coordinated balance beats blind capping by "
               f"{result.mean_advantage():+.1%} performance on average"),
    )
