"""Table 1: the HD7970 GPU DVFS table.

DPM0 300 MHz @ 0.85 V, DPM1 500 MHz @ 0.95 V, DPM2 925 MHz @ 1.17 V, plus
the Section 2.3 boost state (1 GHz @ 1.19 V). The experiment verifies the
library's DVFS table and the interpolated voltage curve against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.units import MHZ, hz_to_mhz

#: (state, frequency MHz, voltage V) as printed in the paper.
PAPER_TABLE1: Tuple[Tuple[str, float, float], ...] = (
    ("DPM0", 300.0, 0.85),
    ("DPM1", 500.0, 0.95),
    ("DPM2", 925.0, 1.17),
    ("BOOST", 1000.0, 1.19),
)


@dataclass(frozen=True)
class DvfsTableResult:
    """Library DVFS states next to the paper's Table 1."""

    rows: Tuple[Tuple[str, float, float, float, float], ...]

    def max_voltage_error(self) -> float:
        """Largest absolute voltage deviation from the paper (V)."""
        return max(abs(row[2] - row[4]) for row in self.rows)


def run(context: ExperimentContext = None) -> DvfsTableResult:
    """Compare the library's DVFS table against the paper's Table 1."""
    context = context or default_context()
    table = context.platform.calibration.arch.dvfs_table
    rows = []
    for name, freq_mhz, volts in PAPER_TABLE1:
        state = table.state_named(name)
        rows.append((
            name,
            freq_mhz,
            volts,
            hz_to_mhz(state.frequency),
            state.voltage,
        ))
    return DvfsTableResult(rows=tuple(rows))


def format_report(result: DvfsTableResult) -> str:
    """Render paper-vs-library DVFS states."""
    rows = [
        (name, f"{p_f:.0f}", f"{p_v:.2f}", f"{l_f:.0f}", f"{l_v:.2f}")
        for name, p_f, p_v, l_f, l_v in result.rows
    ]
    return format_table(
        headers=("state", "paper MHz", "paper V", "library MHz", "library V"),
        rows=rows,
        title="Table 1: AMD HD7970 GPU DVFS table",
    )
