"""Extension: portability of the methodology to a second platform.

Section 4.3: "We believe principles of hardware balance and coordinated
management are portable across platforms. Therefore, we expect the
methodology is portable since most platforms provide similar classes of
counters."

This experiment runs the entire pipeline — sensitivity measurement,
training-set construction, regression fitting, binning, and the two-level
controller — unchanged on a second GCN platform (a Pitcairn-class part:
20 CUs, four GDDR5 channels, 154 GB/s peak, a 240-point configuration
grid) and reports the same headline quantities as the HD7970 evaluation.
The *coefficients* retrain per platform (the ablation suite shows why);
the *methodology* is what ports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.evaluation import EvaluationHarness
from repro.analysis.report import format_table
from repro.core.baseline import BaselinePolicy
from repro.core.harmonia import HarmoniaPolicy
from repro.experiments.context import ExperimentContext, default_context
from repro.platform.hd7970 import make_pitcairn_platform
from repro.sensitivity.predictor import train_predictors
from repro.workloads.registry import all_applications


@dataclass(frozen=True)
class PortabilityResult:
    """HD7970 vs Pitcairn headline comparison."""

    hd7970_ed2: float
    hd7970_perf: float
    hd7970_power: float
    pitcairn_ed2: float
    pitcairn_perf: float
    pitcairn_power: float
    pitcairn_bw_correlation: float
    pitcairn_compute_correlation: float
    pitcairn_configs: int


def run(context: ExperimentContext = None) -> PortabilityResult:
    """Rerun the full pipeline on the Pitcairn platform."""
    context = context or default_context()
    hd = context.evaluation

    platform = make_pitcairn_platform()
    applications = all_applications()
    training = train_predictors(platform, applications)
    harness = EvaluationHarness(platform, BaselinePolicy(platform.config_space))
    harmonia = HarmoniaPolicy(
        platform.config_space, training.compute, training.bandwidth
    )
    summary = harness.evaluate(applications, [harmonia])

    return PortabilityResult(
        hd7970_ed2=hd.geomean_ed2("harmonia"),
        hd7970_perf=hd.geomean_performance("harmonia"),
        hd7970_power=hd.geomean_power("harmonia"),
        pitcairn_ed2=summary.geomean_ed2("harmonia"),
        pitcairn_perf=summary.geomean_performance("harmonia"),
        pitcairn_power=summary.geomean_power("harmonia"),
        pitcairn_bw_correlation=training.bandwidth_correlation,
        pitcairn_compute_correlation=training.compute_correlation,
        pitcairn_configs=len(platform.config_space),
    )


def format_report(result: PortabilityResult) -> str:
    """Render the cross-platform headline comparison."""
    rows = [
        ("configuration grid", "448", str(result.pitcairn_configs)),
        ("ED2 improvement", f"{result.hd7970_ed2:+.1%}",
         f"{result.pitcairn_ed2:+.1%}"),
        ("performance", f"{result.hd7970_perf:+.2%}",
         f"{result.pitcairn_perf:+.2%}"),
        ("power saving", f"{result.hd7970_power:+.1%}",
         f"{result.pitcairn_power:+.1%}"),
        ("bandwidth model r", "-",
         f"{result.pitcairn_bw_correlation:.2f}"),
        ("compute model r", "-",
         f"{result.pitcairn_compute_correlation:.2f}"),
    ]
    return format_table(
        headers=("quantity", "HD7970 (paper platform)", "Pitcairn-class"),
        rows=rows,
        title=("Extension [Section 4.3 portability]: the unchanged "
               "methodology retrained and rerun on a second platform"),
    )
