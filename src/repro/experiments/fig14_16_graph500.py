"""Figures 14-16: Harmonia's adaptation to Graph500's phases.

* **Figure 14** — the instruction totals (VALUInsts / VFetchInsts /
  VWriteInsts) of ``Graph500.BottomStepUp`` vary widely across its eight
  successive iterations as the BFS frontier expands and contracts.
* **Figure 15** — under Harmonia the memory bus frequency dithers, mostly
  between 925 and 775 MHz, tracking the bandwidth-sensitivity changes.
* **Figure 16** — residency of all three tunables over the whole run: the
  compute frequency stays pinned at 1 GHz (divergence keeps compute
  sensitivity high), the CU count stays at 32 most of the time, and the
  memory bus spreads across several frequencies (paper: 1375/925/775/475
  at roughly 25/23/42/8%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.analysis.report import format_table
from repro.core.fine import utilization_rate
from repro.experiments.context import ExperimentContext, default_context
from repro.runtime.simulator import ApplicationRunner, RunResult
from repro.runtime.trace import ResidencyTable
from repro.units import GHZ, hz_to_mhz

KERNEL = "Graph500.BottomStepUp"


@dataclass(frozen=True)
class PhaseRow:
    """One Figure 14 iteration of BottomStepUp."""

    iteration: int
    valu_insts_millions: float
    vfetch_insts_millions: float
    vwrite_insts_millions: float
    time: float


@dataclass(frozen=True)
class Graph500Result:
    """Figures 14-16 data from one Harmonia run of Graph500."""

    phases: Tuple[PhaseRow, ...]
    mem_residency: ResidencyTable
    cu_residency: ResidencyTable
    f_cu_residency: ResidencyTable

    def instruction_swing(self) -> float:
        """max/min ratio of per-iteration VALU instruction totals."""
        totals = [p.valu_insts_millions for p in self.phases]
        return max(totals) / min(totals)

    def dominant_f_cu(self) -> float:
        """The compute frequency with the highest residency (Hz)."""
        return self.f_cu_residency.dominant_value()

    def mem_frequencies_visited(self) -> int:
        """How many distinct memory bus frequencies the run visited."""
        return len(self.mem_residency.fractions)


def run(context: ExperimentContext = None) -> Graph500Result:
    """Run Graph500 under Harmonia and extract the three figures."""
    context = context or default_context()
    app = context.application("Graph500")
    runner = ApplicationRunner(context.platform)
    run_result = runner.run(app, context.harmonia_policy())

    phases = []
    for record in run_result.trace.records_for_kernel(KERNEL):
        counters = record.result.counters
        phases.append(PhaseRow(
            iteration=record.iteration,
            valu_insts_millions=counters.valu_insts_millions,
            vfetch_insts_millions=counters.vfetch_insts_millions,
            vwrite_insts_millions=counters.vwrite_insts_millions,
            time=record.time,
        ))
    return Graph500Result(
        phases=tuple(phases),
        mem_residency=run_result.trace.f_mem_residency(),
        cu_residency=run_result.trace.cu_residency(),
        f_cu_residency=run_result.trace.f_cu_residency(),
    )


def format_report(result: Graph500Result) -> str:
    """Render Figures 14, 15 and 16."""
    fig14 = format_table(
        headers=("iter", "VALU (M)", "VFetch (M)", "VWrite (M)", "time ms"),
        rows=[
            (str(p.iteration), f"{p.valu_insts_millions:.0f}",
             f"{p.vfetch_insts_millions:.1f}", f"{p.vwrite_insts_millions:.1f}",
             f"{p.time * 1e3:.2f}")
            for p in result.phases
        ],
        title=(f"Figure 14: {KERNEL} instruction totals over iterations "
               f"(swing {result.instruction_swing():.1f}x; paper: large "
               "iteration-to-iteration variation)"),
    )

    def residency_rows(table: ResidencyTable, fmt) -> list:
        return [
            (fmt(value), f"{fraction:.0%}")
            for value, fraction in sorted(table.fractions.items())
        ]

    fig15 = format_table(
        headers=("mem bus MHz", "residency"),
        rows=residency_rows(result.mem_residency,
                            lambda v: f"{hz_to_mhz(v):.0f}"),
        title=("Figures 15/16 [memory]: bus-frequency residency "
               "(paper: spread over 1375/925/775/475 ~ 25/23/42/8%)"),
    )
    fig16_cu = format_table(
        headers=("active CUs", "residency"),
        rows=residency_rows(result.cu_residency, lambda v: f"{v:.0f}"),
        title="Figure 16 [#CUs]: paper: ~90% of time at 32 CUs",
    )
    fig16_f = format_table(
        headers=("compute MHz", "residency"),
        rows=residency_rows(result.f_cu_residency,
                            lambda v: f"{hz_to_mhz(v):.0f}"),
        title="Figure 16 [CUFreq]: paper: pinned at the 1 GHz boost state",
    )
    return "\n\n".join([fig14, fig15, fig16_cu, fig16_f])
