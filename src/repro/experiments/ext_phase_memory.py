"""Extension: per-phase configuration recall on recurring phases.

Section 5.1: "Harmonia records the last best hardware configuration for
all kernels within that application. This state is the initial state for
the subsequent iteration. Such iterative behaviors are quite common in
HPC and scientific applications."

Graph500's BFS levels recur every traversal; when a level persists long
enough for the FG loop to refine its configuration, recalling that refined
state on the next traversal skips the whole CG + FG adaptation. This
experiment runs a slowed-down two-traversal BFS (each level lasting
several kernel iterations — large graphs where one level spans many
kernel launches) with recall enabled vs disabled.

Finding on this substrate: recall is *neutral* — the coarse-grain jump
already lands each phase near its settled configuration, so there is
little adaptation cost left to skip, and the validation guard keeps
recalled configurations from ever doing harm. The mechanism's value is
robustness (recalls can never be worse than one guarded iteration), and
it would grow on platforms where CG mispredicts more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.baseline import BaselinePolicy
from repro.core.harmonia import HarmoniaPolicy
from repro.experiments.context import ExperimentContext, default_context
from repro.runtime.simulator import ApplicationRunner
from repro.workloads.application import Application
from repro.workloads.registry import get_application

KERNEL = "Graph500.BottomStepUp"
TRAVERSALS = 2
#: kernel launches per BFS level (large graphs: one level = many launches)
LAUNCHES_PER_LEVEL = 6


@dataclass(frozen=True)
class PhaseMemoryResult:
    """Recall-on vs recall-off on the multi-traversal Graph500."""

    ed2_without: float
    ed2_with: float
    perf_without: float
    perf_with: float
    recalls: int
    distinct_phases: int

    @property
    def ed2_gain_from_recall(self) -> float:
        """ED² points the recall adds."""
        return self.ed2_with - self.ed2_without


def _long_graph500() -> Application:
    """A slow-frontier Graph500: each BFS level spans several launches."""
    from repro.workloads.kernel import TableSchedule, WorkloadKernel
    base = get_application("Graph500")
    kernels = []
    for kernel in base.kernels:
        schedule = kernel.schedule
        if isinstance(schedule, TableSchedule):
            stretched = tuple(
                row for row in schedule.rows
                for _ in range(LAUNCHES_PER_LEVEL)
            )
            kernel = WorkloadKernel(
                base=kernel.base,
                schedule=TableSchedule(rows=stretched, wrap=True),
            )
        kernels.append(kernel)
    return Application(
        name="Graph500slow",
        suite="Graph500",
        kernels=tuple(kernels),
        iterations=base.iterations * LAUNCHES_PER_LEVEL * TRAVERSALS,
    )


def run(context: ExperimentContext = None) -> PhaseMemoryResult:
    """Compare phase recall on vs off over three BFS traversals."""
    context = context or default_context()
    platform = context.platform
    training = context.training
    app = _long_graph500()
    runner = ApplicationRunner(platform)
    baseline = runner.run(app, BaselinePolicy(platform.config_space))

    def harmonia(enable_memory: bool) -> HarmoniaPolicy:
        return HarmoniaPolicy(
            platform.config_space, training.compute, training.bandwidth,
            enable_phase_memory=enable_memory,
        )

    without_policy = harmonia(False)
    with_policy = harmonia(True)
    without = runner.run(app, without_policy, reset_policy=False)
    with_recall = runner.run(app, with_policy, reset_policy=False)

    return PhaseMemoryResult(
        ed2_without=1 - without.metrics.ed2 / baseline.metrics.ed2,
        ed2_with=1 - with_recall.metrics.ed2 / baseline.metrics.ed2,
        perf_without=baseline.metrics.time / without.metrics.time - 1,
        perf_with=baseline.metrics.time / with_recall.metrics.time - 1,
        recalls=with_policy.stats(KERNEL).phase_recalls,
        distinct_phases=with_policy.phase_memory.phase_count(KERNEL),
    )


def format_report(result: PhaseMemoryResult) -> str:
    """Render the recall comparison."""
    rows = [
        ("recall off", f"{result.ed2_without:+.1%}",
         f"{result.perf_without:+.1%}", "-"),
        ("recall on", f"{result.ed2_with:+.1%}",
         f"{result.perf_with:+.1%}",
         f"{result.recalls} recalls / {result.distinct_phases} phases"),
    ]
    return format_table(
        headers=("variant", "ED2 vs baseline", "performance", "recall stats"),
        rows=rows,
        title=("Extension [Section 5.1 history, per phase]: recall "
               "restores settled configurations on recurring traversals "
               f"({result.ed2_gain_from_recall:+.1%} ED2; neutral-or-better "
               "by construction — recalls are validation-guarded)"),
    )
