"""Shared experiment stack: platform, predictors, evaluation matrix.

Building the test bed is cheap, but training the Section 4 predictors and
running the four-policy evaluation matrix over all fourteen applications
is not free; every experiment that needs them shares one cached instance.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.analysis.evaluation import EvaluationHarness, EvaluationSummary
from repro.core.baseline import BaselinePolicy
from repro.core.harmonia import HarmoniaPolicy
from repro.core.oracle import OraclePolicy
from repro.core.variants import ComputeDvfsOnlyPolicy, make_cg_only_policy
from repro.platform.hd7970 import HardwarePlatform, make_hd7970_platform
from repro.sensitivity.predictor import TrainingReport, train_predictors
from repro.workloads.application import Application
from repro.workloads.registry import all_applications


class ExperimentContext:
    """Lazily-built shared stack for all paper experiments."""

    def __init__(self, platform: Optional[HardwarePlatform] = None,
                 jobs: int = 1):
        """
        Args:
            platform: the test bed; defaults to a deterministic HD7970.
            jobs: thread fan-out for the expensive stages (training-set
                construction and the evaluation matrix). Results are
                independent of the job count; 1 keeps everything serial
                and 0 means "auto" (one worker per core).
        """
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0 (0 = auto), got {jobs}")
        from repro.runtime.parallel import resolve_jobs
        self._platform = platform or make_hd7970_platform()
        self._jobs = resolve_jobs(jobs)
        self._applications: Optional[List[Application]] = None
        self._training: Optional[TrainingReport] = None
        self._summary: Optional[EvaluationSummary] = None
        # Pipeline nodes share one context across worker threads; the
        # lazy builds below must each happen exactly once. Reentrant:
        # the evaluation build reads the training property.
        self._build_lock = threading.RLock()

    @property
    def jobs(self) -> int:
        """Thread fan-out used by the expensive stages."""
        return self._jobs

    @property
    def platform(self) -> HardwarePlatform:
        """The simulated HD7970 test bed."""
        return self._platform

    @property
    def applications(self) -> List[Application]:
        """The paper's 14 applications (built once)."""
        with self._build_lock:
            if self._applications is None:
                self._applications = all_applications()
            return self._applications

    def application(self, name: str) -> Application:
        """Look up one of the cached applications by name."""
        for app in self.applications:
            if app.name == name:
                return app
        raise KeyError(name)

    @property
    def training(self) -> TrainingReport:
        """The Section 4 predictor-training pipeline output (cached)."""
        with self._build_lock:
            if self._training is None:
                self._training = train_predictors(
                    self._platform, self.applications, jobs=self._jobs
                )
            return self._training

    # --- policies -----------------------------------------------------------

    def baseline_policy(self) -> BaselinePolicy:
        """A fresh PowerTune baseline policy."""
        return BaselinePolicy(self._platform.config_space)

    def harmonia_policy(self, telemetry=None) -> HarmoniaPolicy:
        """A fresh Harmonia (FG+CG) policy with trained predictors."""
        training = self.training
        return HarmoniaPolicy(
            self._platform.config_space, training.compute, training.bandwidth,
            telemetry=telemetry,
        )

    def cg_only_policy(self, telemetry=None) -> HarmoniaPolicy:
        """A fresh CG-only policy."""
        training = self.training
        return make_cg_only_policy(
            self._platform.config_space, training.compute, training.bandwidth,
            telemetry=telemetry,
        )

    def dvfs_only_policy(self, telemetry=None) -> ComputeDvfsOnlyPolicy:
        """A fresh compute-DVFS-only policy (Section 7.2)."""
        training = self.training
        return ComputeDvfsOnlyPolicy(
            self._platform.config_space, training.compute, training.bandwidth,
            telemetry=telemetry,
        )

    def oracle_policy(self) -> OraclePolicy:
        """A fresh exhaustive ED² oracle."""
        return OraclePolicy(self._platform)

    # --- the Figures 10-13 matrix -----------------------------------------------------------

    @property
    def evaluation(self) -> EvaluationSummary:
        """Baseline vs CG vs Harmonia vs oracle vs DVFS-only, cached."""
        with self._build_lock:
            return self._evaluation_locked()

    def _evaluation_locked(self) -> EvaluationSummary:
        if self._summary is None:
            harness = EvaluationHarness(self._platform, self.baseline_policy())
            if self._jobs > 1:
                # Train before fanning out: the policy factories run inside
                # worker threads and must all see the one shared report.
                _ = self.training
                self._summary = harness.evaluate_parallel(
                    self.applications,
                    baseline_factory=self.baseline_policy,
                    policy_factories=[
                        self.cg_only_policy,
                        self.harmonia_policy,
                        self.oracle_policy,
                        self.dvfs_only_policy,
                    ],
                    jobs=self._jobs,
                )
            else:
                self._summary = harness.evaluate(
                    self.applications,
                    [
                        self.cg_only_policy(),
                        self.harmonia_policy(),
                        self.oracle_policy(),
                        self.dvfs_only_policy(),
                    ],
                )
        return self._summary


@lru_cache(maxsize=1)
def default_context() -> ExperimentContext:
    """The process-wide shared context (deterministic platform)."""
    return ExperimentContext()
