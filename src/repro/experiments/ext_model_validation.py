"""Extension: cross-validation of the analytical performance model.

The entire reproduction rests on the analytical model's execution-time
surfaces. This experiment validates them against the independent
event-driven wavefront simulator (:mod:`repro.perf.eventsim`), which
shares only the machine description and memory-bandwidth inputs — its
scheduling, queueing and stall behaviour are modelled from scratch.

For every one of the 25 kernels, both models evaluate a spread of
hardware configurations; the experiment reports the per-kernel relative
time deviation and the correlation of the two models' performance
rankings across the configuration sample.

The event-driven surfaces are produced by the batched lockstep engine
(:mod:`repro.perf.eventsim_batch`) by default — one vectorized numpy
event loop over every missing (kernel, config) lane, bitwise-identical
to the scalar simulator. Setting :data:`EVENTSIM_BATCH_ENV` to
``0``/``off``/``false``/``no`` (or an :class:`~repro.errors.AnalysisError`
from the batched engine) falls back to the original scalar loop fanned
out over worker processes; either path writes the same store records.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.errors import AnalysisError
from repro.experiments.context import ExperimentContext, default_context
from repro.memory.controller import MemoryControllerModel
from repro.perf.eventsim import EventDrivenModel
from repro.perf.eventsim_batch import BatchedEventModel
from repro.platform.store import EVENTSIM_KIND
from repro.platform.sweepcache import shared_cache
from repro.runtime.parallel import fan_out_processes
from repro.sensitivity.regression import pearson
from repro.telemetry.spans import ambient_telemetry
from repro.units import MHZ
from repro.workloads.registry import all_kernels

#: Environment variable disabling the batched lockstep engine (set to
#: ``0``/``off``/``false``/``no``); simulation then falls back to the
#: scalar event loop fanned out over worker processes. The two paths
#: produce bitwise-identical surfaces — the knob exists for debugging
#: and for differential runs, not because results differ.
EVENTSIM_BATCH_ENV = "REPRO_EVENTSIM_BATCH"


@dataclass(frozen=True)
class ValidationRow:
    """One kernel's analytical-vs-event-driven agreement."""

    kernel: str
    mean_abs_deviation: float
    max_abs_deviation: float
    rank_correlation: float


@dataclass(frozen=True)
class ModelValidationResult:
    """Agreement across all kernels."""

    rows: Tuple[ValidationRow, ...]
    configs_per_kernel: int

    def worst_mean_deviation(self) -> float:
        """Largest per-kernel mean deviation."""
        return max(r.mean_abs_deviation for r in self.rows)

    def overall_mean_deviation(self) -> float:
        """Mean of the per-kernel mean deviations."""
        return sum(r.mean_abs_deviation for r in self.rows) / len(self.rows)

    def min_correlation(self) -> float:
        """Weakest per-kernel performance-ranking correlation."""
        return min(r.rank_correlation for r in self.rows)


def _sample_configs(space) -> List:
    """A 3x3x3 corner/midpoint sample of the configuration grid."""
    cus = (space.cu_counts[0], space.cu_counts[3], space.cu_counts[-1])
    f_cus = (space.compute_frequencies[0], space.compute_frequencies[4],
             space.compute_frequencies[-1])
    f_mems = (space.memory_frequencies[0], space.memory_frequencies[3],
              space.memory_frequencies[-1])
    from repro.gpu.config import HardwareConfig
    return [
        HardwareConfig(n, f, m)
        for n in cus for f in f_cus for m in f_mems
    ]


def _batch_enabled() -> bool:
    """Whether the batched lockstep engine serves this experiment."""
    flag = os.environ.get(EVENTSIM_BATCH_ENV, "").strip().lower()
    return flag not in {"0", "off", "false", "no"}


def _batch_simulate(calibration, specs, configs) -> List[np.ndarray]:
    """Batched event-driven surfaces, one float64 array per spec.

    All (spec, config) lanes run through one lockstep engine call; the
    telemetry span and the ``eventsim_batch_lanes_total`` counter make
    the engine's share of a reproduce run visible in
    ``telemetry-report --metrics``.
    """
    controller = MemoryControllerModel(
        arch=calibration.arch, timing=calibration.gddr5_timing
    )
    batch_model = BatchedEventModel(
        calibration.arch, controller, calibration.clock_domain_model()
    )
    telemetry = ambient_telemetry()
    with telemetry.span("eventsim.batch", kernels=len(specs),
                        configs=len(configs)):
        results = batch_model.run_batch(specs, configs)
    if telemetry.enabled:
        telemetry.metrics.counter(
            "eventsim_batch_lanes_total",
            "lanes simulated by the batched lockstep event engine",
        ).inc(len(specs) * len(configs))
    return [
        np.array([r.time for r in row], dtype=np.float64)
        for row in results
    ]


def _simulate_times(task) -> List[float]:
    """Event-driven execution times for one kernel (worker-side).

    Runs in a ``fan_out_processes`` worker, so it is a pure top-level
    function of picklable inputs: it rebuilds the simulator stack from
    the calibration instead of sharing the parent's instances, and leaves
    all store traffic to the caller.
    """
    calibration, spec, configs = task
    controller = MemoryControllerModel(
        arch=calibration.arch, timing=calibration.gddr5_timing
    )
    event_model = EventDrivenModel(
        calibration.arch, controller, calibration.clock_domain_model()
    )
    return [event_model.run(spec, config).time for config in configs]


def _load_event_times(store, calibration, spec,
                      configs) -> Optional[np.ndarray]:
    """The persisted event-driven surface for one kernel, or None.

    The simulator is deterministic and by far the most expensive stage of
    the ``reproduce`` pipeline (one scalar Python event loop per config),
    so its validation surface is persisted in the content-addressed sweep
    store when one is attached to the shared cache: keyed by calibration,
    spec and the exact config sample, a warm process loads the surface
    bitwise instead of re-simulating 27 configurations per kernel.
    Malformed foreign records that pass the schema check count as misses
    (the caller recomputes and overwrites). The surface stays a numpy
    array end-to-end — the deviation and correlation rows consume it
    without a list round-trip.
    """
    if store is None:
        return None
    loaded = store.load_record(
        EVENTSIM_KIND, (calibration, spec, tuple(configs))
    )
    if loaded is None:
        return None
    times = np.asarray(loaded[0].get("time"), dtype=np.float64)
    if times.shape != (len(configs),):
        return None
    return times


def run(context: ExperimentContext = None) -> ModelValidationResult:
    """Run both models over all kernels and a 27-point config sample."""
    context = context or default_context()
    platform = context.platform
    calibration = platform.calibration
    configs = _sample_configs(platform.config_space)
    kernels = list(all_kernels())
    store = shared_cache().store

    # Serve every kernel the store already covers, then simulate the rest.
    # The default engine is the batched lockstep simulator: every missing
    # (kernel, config) lane runs as one vectorized numpy event loop in
    # this process, bitwise-identical to the scalar loop. The scalar
    # fan-out over worker processes remains as a fallback (env knob off,
    # or a lane the batched engine refuses); store writes always happen
    # here in the parent, keeping both paths side-effect free.
    event_driven = {}
    missing = []
    for kernel in kernels:
        times = _load_event_times(store, calibration, kernel.base, configs)
        if times is None:
            missing.append(kernel)
        else:
            event_driven[kernel.name] = times
    if missing:
        surfaces = None
        if _batch_enabled():
            try:
                surfaces = _batch_simulate(
                    calibration, [kernel.base for kernel in missing], configs
                )
            except AnalysisError:
                surfaces = None
        if surfaces is None:
            telemetry = ambient_telemetry()
            if telemetry.enabled:
                telemetry.metrics.counter(
                    "eventsim_batch_fallback_total",
                    "event-driven runs served by the scalar fork fallback",
                ).inc()
            tasks = [(calibration, kernel.base, tuple(configs))
                     for kernel in missing]
            simulated = fan_out_processes(
                _simulate_times, tasks, jobs=context.jobs,
                labels=[kernel.name for kernel in missing],
            )
            surfaces = [np.asarray(times, dtype=np.float64)
                        for times in simulated]
        for kernel, times in zip(missing, surfaces):
            if store is not None:
                store.save_record(
                    EVENTSIM_KIND, (calibration, kernel.base, tuple(configs)),
                    {"time": times},
                    meta={"kernel_name": kernel.base.name},
                )
            event_driven[kernel.name] = times

    rows = []
    for kernel in kernels:
        # Every sampled point is a grid point: the analytical times come
        # from the kernel's cached (and store-served) sweep surface, as
        # one vectorized gather against the surface array.
        surface = platform.grid_sweep(kernel.base)
        indices = np.array([surface.index_of(config) for config in configs],
                           dtype=np.intp)
        analytical = surface.time[indices]
        times = event_driven[kernel.name]
        deviations = np.abs(times / analytical - 1.0)
        correlation = pearson(1.0 / analytical, 1.0 / times)
        rows.append(ValidationRow(
            kernel=kernel.name,
            mean_abs_deviation=float(deviations.mean()),
            max_abs_deviation=float(deviations.max()),
            rank_correlation=correlation,
        ))
    return ModelValidationResult(rows=tuple(rows),
                                 configs_per_kernel=len(configs))


def format_report(result: ModelValidationResult) -> str:
    """Render the per-kernel agreement table."""
    rows = [
        (r.kernel, f"{r.mean_abs_deviation:.1%}",
         f"{r.max_abs_deviation:.1%}", f"{r.rank_correlation:.3f}")
        for r in result.rows
    ]
    rows.append((
        "OVERALL",
        f"{result.overall_mean_deviation():.1%}",
        f"{result.worst_mean_deviation():.1%} (worst kernel mean)",
        f"{result.min_correlation():.3f} (min)",
    ))
    return format_table(
        headers=("kernel", "mean |dev|", "max |dev|", "perf correlation"),
        rows=rows,
        title=("Extension [model validation]: analytical vs event-driven "
               f"execution times over {result.configs_per_kernel} "
               "configurations per kernel"),
    )
