"""Figure 3: hardware balance points for MaxFlops, DeviceMemory, LUD.

Normalized performance vs. platform ops/byte, one curve per memory
configuration, everything normalized to the minimum hardware configuration
(4 CUs, 300 MHz, 90 GB/s). The paper's anchors:

* **MaxFlops** (3a) — performance rises linearly with compute throughput
  to ~27x at the maximum configuration, identically for every memory
  configuration (bandwidth-insensitive).
* **DeviceMemory** (3b) — each memory configuration saturates at its own
  knee; at maximum bandwidth the knee sits at ~4x the minimum
  configuration's ops/byte.
* **LUD** (3c) — compute-bound at high bandwidth; its best balance point
  is the highest-and-rightmost configuration, around 15x normalized
  ops/byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.analysis.balance import knee_of_curve
from repro.analysis.report import format_table
from repro.analysis.sweep import ConfigSweep
from repro.experiments.context import ExperimentContext, default_context
from repro.units import hz_to_mhz
from repro.workloads.registry import get_kernel

#: The three Figure 3 workloads and the kernels that realize them.
FIGURE3_KERNELS: Tuple[Tuple[str, str], ...] = (
    ("MaxFlops", "MaxFlops.MaxFlops"),
    ("DeviceMemory", "DeviceMemory.DeviceMemory"),
    ("LUD", "LUD.Internal"),
)


@dataclass(frozen=True)
class BalanceCurve:
    """One fixed-memory-configuration performance curve."""

    f_mem: float
    #: (normalized platform ops/byte, normalized performance) points
    points: Tuple[Tuple[float, float], ...]
    #: normalized ops/byte at the knee (balance point)
    knee_ops_per_byte: float
    #: normalized performance at the knee
    knee_performance: float


@dataclass(frozen=True)
class BalanceResult:
    """Figure 3 for one workload."""

    workload: str
    kernel: str
    curves: Tuple[BalanceCurve, ...]

    def peak_normalized_performance(self) -> float:
        """Best normalized performance across all configurations."""
        return max(p for curve in self.curves for _, p in curve.points)

    def curve_at_max_bandwidth(self) -> BalanceCurve:
        """The curve for the highest memory configuration."""
        return max(self.curves, key=lambda c: c.f_mem)


def run_workload(workload: str, kernel_name: str,
                 context: ExperimentContext = None) -> BalanceResult:
    """Sweep one Figure 3 workload over the full configuration space."""
    context = context or default_context()
    platform = context.platform
    spec = get_kernel(kernel_name).base
    sweep = ConfigSweep(platform, spec)
    reference = sweep.reference_point()
    ref_perf = reference.performance
    ref_opb = reference.platform_ops_per_byte

    curves: List[BalanceCurve] = []
    for f_mem in platform.config_space.memory_frequencies:
        raw = sweep.curve_for_memory_config(f_mem)
        points = tuple(
            (p.platform_ops_per_byte / ref_opb, p.performance / ref_perf)
            for p in raw
        )
        knee = knee_of_curve(raw)
        curves.append(BalanceCurve(
            f_mem=f_mem,
            points=points,
            knee_ops_per_byte=knee.platform_ops_per_byte / ref_opb,
            knee_performance=knee.performance / ref_perf,
        ))
    return BalanceResult(workload=workload, kernel=kernel_name,
                         curves=tuple(curves))


def run(context: ExperimentContext = None) -> Dict[str, BalanceResult]:
    """All three Figure 3 panels."""
    context = context or default_context()
    return {
        workload: run_workload(workload, kernel, context)
        for workload, kernel in FIGURE3_KERNELS
    }


def format_report(results: Mapping[str, BalanceResult]) -> str:
    """Render per-memory-configuration knees for all three panels."""
    sections = []
    anchors = {
        "MaxFlops": "paper: linear scaling to ~27x, no knee",
        "DeviceMemory": "paper: knee at ~4x normalized ops/byte (max BW)",
        "LUD": "paper: best balance ~15x normalized ops/byte",
    }
    for workload, result in results.items():
        rows = [
            (f"{hz_to_mhz(c.f_mem):.0f}", f"{c.knee_ops_per_byte:.1f}",
             f"{c.knee_performance:.1f}")
            for c in result.curves
        ]
        rows.append(("peak perf", "-",
                     f"{result.peak_normalized_performance():.1f}"))
        sections.append(format_table(
            headers=("mem MHz", "knee ops/byte (norm)", "knee perf (norm)"),
            rows=rows,
            title=f"Figure 3 [{workload}] ({anchors[workload]})",
        ))
    return "\n\n".join(sections)
