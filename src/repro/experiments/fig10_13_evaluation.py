"""Figures 10-13: the headline evaluation.

Baseline (PowerTune boost) vs CG-only vs Harmonia (FG+CG) vs the ED²
oracle over all fourteen applications. Paper anchors:

* **Figure 10 (ED²)** — Harmonia improves ED² by 12% on average (up to
  36% on BPT), of which ~6 points come from CG; Harmonia lands within
  ~3% of the oracle on average. Two geomeans are reported; "Geomean 2"
  excludes the MaxFlops/DeviceMemory stress benchmarks.
* **Figure 11 (energy)** — CG and FG+CG save nearly identical energy
  (the FG loop adds only ~2%); its role is protecting performance.
* **Figure 12 (power)** — 12% average card-power saving, up to ~19%.
* **Figure 13 (performance)** — Harmonia loses only 0.36% on average
  (max 3.6%, Streamcluster); CG-only loses 2.2% on average with a 27%
  worst case (Streamcluster); BPT gains 11%, CFD and XSBench gain ~3%
  from reduced L2 interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.analysis.evaluation import EvaluationSummary
from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context

#: Candidate policies in presentation order.
POLICIES: Tuple[str, ...] = ("cg-only", "harmonia", "oracle")

#: Paper headline anchors, used by the report footers and the tests.
PAPER_ANCHORS: Mapping[str, float] = {
    "harmonia_ed2_avg": 0.12,
    "harmonia_ed2_max": 0.36,
    "cg_share_of_ed2": 0.06,
    "oracle_gap": 0.03,
    "harmonia_perf_avg": -0.0036,
    "harmonia_perf_worst": -0.036,
    "cg_perf_avg": -0.022,
    "cg_perf_worst": -0.27,
    "power_saving_avg": 0.12,
    "power_saving_max": 0.19,
    "bpt_perf_gain": 0.11,
}


@dataclass(frozen=True)
class EvaluationResult:
    """The full Figures 10-13 data."""

    summary: EvaluationSummary
    applications: Tuple[str, ...]

    def per_app(self, policy: str, attribute: str) -> Dict[str, float]:
        """One metric for one policy across all applications."""
        return {
            app: getattr(self.summary.comparison(app, policy), attribute)
            for app in self.applications
        }


def run(context: ExperimentContext = None) -> EvaluationResult:
    """Run (or fetch the cached) evaluation matrix."""
    context = context or default_context()
    apps = tuple(app.name for app in context.applications)
    return EvaluationResult(summary=context.evaluation, applications=apps)


def _figure_report(result: EvaluationResult, attribute: str, title: str,
                   footer_rows: List[Tuple[str, str, str]]) -> str:
    rows = []
    for app in result.applications:
        cells = [app]
        for policy in POLICIES:
            value = getattr(result.summary.comparison(app, policy), attribute)
            cells.append(f"{value:+.1%}")
        rows.append(tuple(cells))
    for label, geo_kind, paper in footer_rows:
        cells = [label]
        exclude = geo_kind == "geomean2"
        for policy in POLICIES:
            value = result.summary.geomean(policy, attribute, exclude)
            cells.append(f"{value:+.1%}")
        rows.append(tuple(cells))
    table = format_table(
        headers=("application",) + POLICIES,
        rows=rows,
        title=title,
    )
    return table


def format_fig10(result: EvaluationResult) -> str:
    """Figure 10: ED² improvement."""
    return _figure_report(
        result, "ed2_improvement",
        "Figure 10: ED2 improvement over baseline "
        "(paper: Harmonia 12% avg / 36% max, within ~3% of oracle)",
        [("geomean 1", "geomean1", ""), ("geomean 2", "geomean2", "")],
    )


def format_fig11(result: EvaluationResult) -> str:
    """Figure 11: energy improvement."""
    return _figure_report(
        result, "energy_improvement",
        "Figure 11: energy improvement over baseline "
        "(paper: CG and FG+CG nearly identical)",
        [("geomean 1", "geomean1", ""), ("geomean 2", "geomean2", "")],
    )


def format_fig12(result: EvaluationResult) -> str:
    """Figure 12: power saving."""
    return _figure_report(
        result, "power_saving",
        "Figure 12: card power saving over baseline "
        "(paper: 12% avg, up to ~19%)",
        [("geomean 1", "geomean1", ""), ("geomean 2", "geomean2", "")],
    )


def format_fig13(result: EvaluationResult) -> str:
    """Figure 13: performance delta."""
    return _figure_report(
        result, "performance_delta",
        "Figure 13: performance vs baseline (paper: Harmonia -0.36% avg / "
        "-3.6% max; CG-only -2.2% avg / -27% max; BPT +11%)",
        [("geomean 1", "geomean1", ""), ("geomean 2", "geomean2", "")],
    )


def format_report(result: EvaluationResult) -> str:
    """All four figures."""
    return "\n\n".join([
        format_fig10(result),
        format_fig11(result),
        format_fig12(result),
        format_fig13(result),
    ])
