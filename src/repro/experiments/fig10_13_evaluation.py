"""Figures 10-13: the headline evaluation.

Baseline (PowerTune boost) vs CG-only vs Harmonia (FG+CG) vs the ED²
oracle over all fourteen applications. Paper anchors:

* **Figure 10 (ED²)** — Harmonia improves ED² by 12% on average (up to
  36% on BPT), of which ~6 points come from CG; Harmonia lands within
  ~3% of the oracle on average. Two geomeans are reported; "Geomean 2"
  excludes the MaxFlops/DeviceMemory stress benchmarks.
* **Figure 11 (energy)** — CG and FG+CG save nearly identical energy
  (the FG loop adds only ~2%); its role is protecting performance.
* **Figure 12 (power)** — 12% average card-power saving, up to ~19%.
* **Figure 13 (performance)** — Harmonia loses only 0.36% on average
  (max 3.6%, Streamcluster); CG-only loses 2.2% on average with a 27%
  worst case (Streamcluster); BPT gains 11%, CFD and XSBench gain ~3%
  from reduced L2 interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.analysis.evaluation import (
    EvaluationHarness,
    EvaluationSummary,
    MonteCarloSummary,
)
from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context

#: Candidate policies in presentation order.
POLICIES: Tuple[str, ...] = ("cg-only", "harmonia", "oracle")

#: Paper headline anchors, used by the report footers and the tests.
PAPER_ANCHORS: Mapping[str, float] = {
    "harmonia_ed2_avg": 0.12,
    "harmonia_ed2_max": 0.36,
    "cg_share_of_ed2": 0.06,
    "oracle_gap": 0.03,
    "harmonia_perf_avg": -0.0036,
    "harmonia_perf_worst": -0.036,
    "cg_perf_avg": -0.022,
    "cg_perf_worst": -0.27,
    "power_saving_avg": 0.12,
    "power_saving_max": 0.19,
    "bpt_perf_gain": 0.11,
}


@dataclass(frozen=True)
class EvaluationResult:
    """The full Figures 10-13 data."""

    summary: EvaluationSummary
    applications: Tuple[str, ...]

    def per_app(self, policy: str, attribute: str) -> Dict[str, float]:
        """One metric for one policy across all applications."""
        return {
            app: getattr(self.summary.comparison(app, policy), attribute)
            for app in self.applications
        }


def run(context: ExperimentContext = None) -> EvaluationResult:
    """Run (or fetch the cached) evaluation matrix."""
    context = context or default_context()
    apps = tuple(app.name for app in context.applications)
    return EvaluationResult(summary=context.evaluation, applications=apps)


def _figure_report(result: EvaluationResult, attribute: str, title: str,
                   footer_rows: List[Tuple[str, str, str]]) -> str:
    rows = []
    for app in result.applications:
        cells = [app]
        for policy in POLICIES:
            value = getattr(result.summary.comparison(app, policy), attribute)
            cells.append(f"{value:+.1%}")
        rows.append(tuple(cells))
    for label, geo_kind, paper in footer_rows:
        cells = [label]
        exclude = geo_kind == "geomean2"
        for policy in POLICIES:
            value = result.summary.geomean(policy, attribute, exclude)
            cells.append(f"{value:+.1%}")
        rows.append(tuple(cells))
    table = format_table(
        headers=("application",) + POLICIES,
        rows=rows,
        title=title,
    )
    return table


def format_fig10(result: EvaluationResult) -> str:
    """Figure 10: ED² improvement."""
    return _figure_report(
        result, "ed2_improvement",
        "Figure 10: ED2 improvement over baseline "
        "(paper: Harmonia 12% avg / 36% max, within ~3% of oracle)",
        [("geomean 1", "geomean1", ""), ("geomean 2", "geomean2", "")],
    )


def format_fig11(result: EvaluationResult) -> str:
    """Figure 11: energy improvement."""
    return _figure_report(
        result, "energy_improvement",
        "Figure 11: energy improvement over baseline "
        "(paper: CG and FG+CG nearly identical)",
        [("geomean 1", "geomean1", ""), ("geomean 2", "geomean2", "")],
    )


def format_fig12(result: EvaluationResult) -> str:
    """Figure 12: power saving."""
    return _figure_report(
        result, "power_saving",
        "Figure 12: card power saving over baseline "
        "(paper: 12% avg, up to ~19%)",
        [("geomean 1", "geomean1", ""), ("geomean 2", "geomean2", "")],
    )


def format_fig13(result: EvaluationResult) -> str:
    """Figure 13: performance delta."""
    return _figure_report(
        result, "performance_delta",
        "Figure 13: performance vs baseline (paper: Harmonia -0.36% avg / "
        "-3.6% max; CG-only -2.2% avg / -27% max; BPT +11%)",
        [("geomean 1", "geomean1", ""), ("geomean 2", "geomean2", "")],
    )


def format_report(result: EvaluationResult) -> str:
    """All four figures."""
    return "\n\n".join([
        format_fig10(result),
        format_fig11(result),
        format_fig12(result),
        format_fig13(result),
    ])


# --- Monte Carlo confidence bands --------------------------------------------------------

#: (attribute, table title) pairs the CI report prints, one per figure.
_CI_TABLES: Tuple[Tuple[str, str], ...] = (
    ("ed2_improvement", "Figure 10 CI: ED2 improvement over baseline"),
    ("energy_improvement", "Figure 11 CI: energy improvement over baseline"),
    ("power_saving", "Figure 12 CI: card power saving over baseline"),
    ("performance_delta", "Figure 13 CI: performance vs baseline"),
)


def run_ci(context: ExperimentContext = None, seeds: int = 16,
           noise_std_fraction: float = 0.05,
           jobs: int = 1) -> MonteCarloSummary:
    """The evaluation matrix under repeated-trial measurement noise.

    The paper's numbers average repeated hardware measurements; this is
    the reproduction's analogue — ``seeds`` Monte Carlo trials at
    ``noise_std_fraction`` run-to-run time noise, seed-paired against the
    baseline, vectorized by the launch-keyed noise model.
    """
    context = context or default_context()
    harness = EvaluationHarness(context.platform, context.baseline_policy())
    if jobs > 1:
        # Train before fanning out, as context.evaluation does: the
        # factories must all see the one shared training report.
        _ = context.training
    return harness.evaluate_montecarlo(
        context.applications,
        baseline_factory=context.baseline_policy,
        policy_factories=[
            context.cg_only_policy,
            context.harmonia_policy,
            context.oracle_policy,
        ],
        seeds=seeds,
        noise_std_fraction=noise_std_fraction,
        jobs=jobs,
    )


def format_ci(summary: MonteCarloSummary) -> str:
    """Figures 10-13 with 95% confidence bands (mean ± half-width)."""
    applications = []
    for comparison in summary.comparisons:
        if comparison.application not in applications:
            applications.append(comparison.application)
    tables = []
    for attribute, title in _CI_TABLES:
        rows = []
        for app in applications:
            cells = [app]
            for policy in POLICIES:
                band = getattr(summary.comparison(app, policy), attribute)
                cells.append(f"{band.mean:+.1%} ±{band.half_width:.1%}")
            rows.append(tuple(cells))
        for label, exclude in (("geomean 1", False), ("geomean 2", True)):
            cells = [label]
            for policy in POLICIES:
                band = summary.geomean(policy, attribute, exclude)
                cells.append(f"{band.mean:+.1%} ±{band.half_width:.1%}")
            rows.append(tuple(cells))
        tables.append(format_table(
            headers=("application",) + POLICIES,
            rows=rows,
            title=f"{title} ({len(summary.seeds)} trials, "
                  f"{summary.noise_std_fraction:.0%} time noise)",
        ))
    return "\n\n".join(tables)
