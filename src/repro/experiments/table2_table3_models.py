"""Tables 2 and 3: the counter vocabulary and the sensitivity models.

Table 2 defines the counters and derived metrics (icActivity per
Equations 1-2, C-to-M Intensity per Equation 3). Table 3 gives the linear
regression coefficients; the paper reports fit correlations of 0.91
(compute throughput) and 0.96 (memory bandwidth), and Section 7.2 reports
online prediction errors of 3.03% (bandwidth) and 5.71% (compute).

We rerun the full Section 4 pipeline against this substrate and print the
refit coefficients next to the paper's. Absolute weights differ (they
encode the silicon's counter scales); the fit quality and the error
magnitudes are the reproducible quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context
from repro.perf.counters import PerfCounters
from repro.sensitivity.predictor import (
    PAPER_BANDWIDTH_PREDICTOR,
    PAPER_COMPUTE_PREDICTOR,
    TrainingReport,
)

#: Paper fit correlations (Section 4.3).
PAPER_COMPUTE_CORRELATION = 0.91
PAPER_BANDWIDTH_CORRELATION = 0.96
#: Paper prediction errors (Section 7.2).
PAPER_BANDWIDTH_ERROR = 0.0303
PAPER_COMPUTE_ERROR = 0.0571


@dataclass(frozen=True)
class ModelComparisonResult:
    """Refit Table 3 next to the published one."""

    training: TrainingReport

    @property
    def compute_correlation(self) -> float:
        """Refit compute-model correlation (paper: 0.91)."""
        return self.training.compute_correlation

    @property
    def bandwidth_correlation(self) -> float:
        """Refit bandwidth-model correlation (paper: 0.96)."""
        return self.training.bandwidth_correlation

    def prediction_errors(self) -> Tuple[float, float]:
        """(bandwidth, compute) mean absolute prediction errors."""
        return self.training.prediction_errors()


def run(context: ExperimentContext = None) -> ModelComparisonResult:
    """Rerun the Section 4 pipeline on this substrate."""
    context = context or default_context()
    return ModelComparisonResult(training=context.training)


def format_report(result: ModelComparisonResult) -> str:
    """Render Table 2 (vocabulary) and Table 3 (paper vs refit)."""
    table2_rows = [(name,) for name in PerfCounters.feature_names()]
    table2 = format_table(
        headers=("Table 2 counter / metric",),
        rows=table2_rows,
        title="Table 2: counters and derived metrics available online",
    )

    sections = [table2]
    for kind, refit, paper in (
        ("bandwidth", result.training.bandwidth.model,
         PAPER_BANDWIDTH_PREDICTOR.model),
        ("compute", result.training.compute.model,
         PAPER_COMPUTE_PREDICTOR.model),
    ):
        paper_coeffs = dict(paper.coefficient_rows())
        rows = []
        for name, value in refit.coefficient_rows():
            paper_value = paper_coeffs.get(name)
            rows.append((
                name,
                f"{value:+.4f}",
                f"{paper_value:+.4f}" if paper_value is not None else "-",
            ))
        sections.append(format_table(
            headers=("feature", "refit coeff", "paper coeff"),
            rows=rows,
            title=f"Table 3 [{kind} sensitivity model]",
        ))

    bw_err, comp_err = result.prediction_errors()
    summary = format_table(
        headers=("quantity", "this substrate", "paper"),
        rows=[
            ("compute correlation", f"{result.compute_correlation:.2f}",
             f"{PAPER_COMPUTE_CORRELATION:.2f}"),
            ("bandwidth correlation", f"{result.bandwidth_correlation:.2f}",
             f"{PAPER_BANDWIDTH_CORRELATION:.2f}"),
            ("bandwidth pred. error", f"{bw_err:.2%}",
             f"{PAPER_BANDWIDTH_ERROR:.2%}"),
            ("compute pred. error", f"{comp_err:.2%}",
             f"{PAPER_COMPUTE_ERROR:.2%}"),
        ],
        title="Section 4.3 / 7.2: model quality",
    )
    sections.append(summary)
    return "\n\n".join(sections)
