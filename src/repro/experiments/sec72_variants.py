"""Section 7.2 textual results: predictor errors and compute-DVFS-only.

* predictor errors — "The prediction errors between measured and estimated
  bandwidth and compute sensitivities are 3.03% and 5.71% respectively".
* compute-DVFS-only — "compute frequency and voltage scaling alone achieve
  only an average ED² gain of 3% with a 1% performance loss": scaling the
  legacy single knob leaves most of Harmonia's benefit on the table,
  motivating coordinated CU-count + memory-bandwidth scaling (Section 7.3,
  insight 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.experiments.context import ExperimentContext, default_context


@dataclass(frozen=True)
class VariantsResult:
    """DVFS-only vs Harmonia geomeans plus predictor errors."""

    dvfs_only_ed2: float
    dvfs_only_performance: float
    harmonia_ed2: float
    harmonia_performance: float
    bandwidth_prediction_error: float
    compute_prediction_error: float

    @property
    def dvfs_only_share(self) -> float:
        """Fraction of Harmonia's ED² gain the legacy knob captures."""
        if self.harmonia_ed2 <= 0:
            return 0.0
        return self.dvfs_only_ed2 / self.harmonia_ed2


def run(context: ExperimentContext = None) -> VariantsResult:
    """Compute the Section 7.2 comparison quantities."""
    context = context or default_context()
    summary = context.evaluation
    bw_err, comp_err = context.training.prediction_errors()
    return VariantsResult(
        dvfs_only_ed2=summary.geomean_ed2("dvfs-only"),
        dvfs_only_performance=summary.geomean_performance("dvfs-only"),
        harmonia_ed2=summary.geomean_ed2("harmonia"),
        harmonia_performance=summary.geomean_performance("harmonia"),
        bandwidth_prediction_error=bw_err,
        compute_prediction_error=comp_err,
    )


def format_report(result: VariantsResult) -> str:
    """Render the Section 7.2 numbers next to the paper's."""
    return format_table(
        headers=("quantity", "this substrate", "paper"),
        rows=[
            ("DVFS-only ED2 gain", f"{result.dvfs_only_ed2:+.1%}", "+3%"),
            ("DVFS-only performance", f"{result.dvfs_only_performance:+.1%}",
             "-1%"),
            ("Harmonia ED2 gain", f"{result.harmonia_ed2:+.1%}", "+12%"),
            ("Harmonia performance", f"{result.harmonia_performance:+.1%}",
             "-0.36%"),
            ("DVFS-only / Harmonia", f"{result.dvfs_only_share:.0%}", "~25%"),
            ("bandwidth pred. error",
             f"{result.bandwidth_prediction_error:.2%}", "3.03%"),
            ("compute pred. error",
             f"{result.compute_prediction_error:.2%}", "5.71%"),
        ],
        title="Section 7.2: legacy-knob comparison and predictor accuracy",
    )
