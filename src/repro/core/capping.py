"""A reactive power-capping policy (the related-work comparator).

Section 8 surveys power-capping approaches (RAPL-style budget enforcement
[8, 14, 18]) and positions Harmonia against them: "unlike many of these
efforts, we seek to concurrently minimize performance impact rather than
trade performance for improvements in energy efficiency."

:class:`PowerCapPolicy` implements the contrasting approach: a
workload-blind budget enforcer that watches average card power and
throttles when over budget. Like production cappers it sheds the
highest-leverage knob first (compute frequency), then parallelism, then
the memory bus, and steps back up when comfortably under budget. It knows
nothing about the kernel's compute/memory balance — which is exactly the
difference the equal-power comparison (`ext_power_capping`) quantifies.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import HistoryMixin, LaunchContext
from repro.errors import PolicyError
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.perf.result import KernelRunResult

#: Throttle order: frequency first (the classic capping knob), then CUs,
#: then the memory bus; recovery proceeds in reverse.
_THROTTLE_ORDER = ("f_cu", "n_cu", "f_mem")


class PowerCapPolicy(HistoryMixin):
    """Reactive, workload-blind power-budget enforcement.

    Args:
        space: the platform configuration grid.
        budget_watts: the card power budget to enforce.
        alpha: EWMA weight of the power estimate.
        hysteresis: fractional band around the budget: throttle above
            ``budget``, recover below ``budget x (1 - hysteresis)``.
    """

    def __init__(self, space: ConfigSpace, budget_watts: float,
                 alpha: float = 0.5, hysteresis: float = 0.05):
        super().__init__()
        if budget_watts <= 0:
            raise PolicyError("budget_watts must be positive")
        if not 0 < alpha <= 1:
            raise PolicyError("alpha must be in (0, 1]")
        if not 0 <= hysteresis < 1:
            raise PolicyError("hysteresis must be in [0, 1)")
        self._space = space
        self._budget = budget_watts
        self._alpha = alpha
        self._hysteresis = hysteresis
        self._power_estimate: Optional[float] = None
        self._config = space.max_config()

    @property
    def name(self) -> str:
        """Policy name."""
        return "power-cap"

    @property
    def budget(self) -> float:
        """The enforced budget (W)."""
        return self._budget

    @property
    def power_estimate(self) -> Optional[float]:
        """Current EWMA card-power estimate (W)."""
        return self._power_estimate

    def reset(self) -> None:
        """Forget history and return to the maximum configuration."""
        self.clear_history()
        self._power_estimate = None
        self._config = self._space.max_config()

    # --- stepping helpers ------------------------------------------------------

    def _step(self, config: HardwareConfig, tunable: str,
              direction: int) -> HardwareConfig:
        if tunable == "f_cu":
            return self._space.step_f_cu(config, direction)
        if tunable == "n_cu":
            return self._space.step_cu(config, direction)
        return self._space.step_f_mem(config, direction)

    def _throttle(self, config: HardwareConfig) -> HardwareConfig:
        """One step down the throttle order (first knob with headroom)."""
        for tunable in _THROTTLE_ORDER:
            stepped = self._step(config, tunable, -1)
            if stepped != config:
                return stepped
        return config

    def _recover(self, config: HardwareConfig) -> HardwareConfig:
        """One step back up, unwinding the throttle order in reverse."""
        for tunable in reversed(_THROTTLE_ORDER):
            stepped = self._step(config, tunable, +1)
            if stepped != config:
                return stepped
        return config

    # --- policy interface ------------------------------------------------------

    def config_for(self, context: LaunchContext) -> HardwareConfig:
        """The current capped configuration (workload-independent)."""
        return self._config

    def observe(self, context: LaunchContext,
                result: KernelRunResult) -> None:
        """Fold in the launch's power and adjust the cap state."""
        self.history_for(context.kernel_name).record(result)
        power = result.power.card
        if self._power_estimate is None:
            self._power_estimate = power
        else:
            self._power_estimate = (
                (1 - self._alpha) * self._power_estimate
                + self._alpha * power
            )
        if self._power_estimate > self._budget:
            self._config = self._throttle(self._config)
        elif self._power_estimate < self._budget * (1 - self._hysteresis):
            self._config = self._recover(self._config)
