"""Harmonia: two-level coordinated power management (Algorithm 1).

Per kernel, at every kernel boundary:

1. **Monitor** — read the completed launch's counters; fold them into the
   kernel's running feature average (:class:`~repro.core.monitor.
   MonitoringBlock`); detect workload phase changes from config-invariant
   identity counters (:class:`~repro.core.monitor.PhaseDetector`).
2. **CG** — on a genuine workload phase change, predict compute and
   bandwidth sensitivities (Table 3 models), bin them HIGH/MED/LOW, and
   jump all tunables with ``SetCU_Freq_MemBW``. Algorithm 1's guard —
   "we only execute CG when there have been no changes in the hardware
   tunables prior to the sensitivity change" — is enforced by
   construction: the phase detector reacts only to counters the hardware
   tunables cannot move (instruction totals, divergence, registers), so a
   sensitivity change induced by our own configuration change can never
   re-trigger CG. This replaces the pseudo-code's revert-and-retry dance
   with the same isolation guarantee and no oscillation.
3. **FG** — within a stable phase, fine-tune one grid step at a time on
   the utilization-rate gradient (:class:`~repro.core.fine.
   FineGrainTuner`): decrement while performance holds, revert and try the
   opposite direction when it degrades, freeze dead tunables, and after
   too much dithering converge to the cheapest state with best feedback.

Kernel history is retained across application iterations — "Harmonia
records the last best hardware configuration for all kernels within that
application. This state is the initial state for the subsequent iteration"
(Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.coarse import CoarseGrainTuner, SensitivitySnapshot, TUNABLES
from repro.core.fine import FineGrainState, FineGrainTuner, utilization_rate
from repro.core.monitor import MonitoringBlock, PhaseDetector, PhaseMemory
from repro.core.policy import HistoryMixin, KernelHistory, LaunchContext
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.perf.result import KernelRunResult
from repro.sensitivity.binning import Bin, SensitivityBins
from repro.sensitivity.predictor import SensitivityPredictor
from repro.telemetry import events as tm
from repro.telemetry.handle import coalesce


@dataclass
class _KernelControlState:
    """Controller state for one kernel beyond the generic history."""

    fg: FineGrainState = field(default_factory=FineGrainState)
    last_snapshot: Optional[SensitivitySnapshot] = None
    #: count of CG jumps taken (for the Figure 18 CG/FG attribution)
    cg_actions: int = 0
    #: count of FG steps taken
    fg_actions: int = 0
    #: count of detected workload phase changes
    phase_changes: int = 0
    #: observations since the current phase started
    phase_age: int = 0
    #: count of phase-memory recalls (recurring phases restored directly)
    phase_recalls: int = 0
    #: identity of the phase currently executing (for exit snapshots)
    last_identity: Optional[Tuple] = None


@dataclass(frozen=True)
class ControllerStats:
    """Read-only snapshot of one kernel's controller counters.

    The public face of the per-kernel control state: the Figure 18
    CG/FG attribution and the phase bookkeeping, without reaching into
    the policy's private ``_KernelControlState``.
    """

    cg_actions: int = 0
    fg_actions: int = 0
    phase_changes: int = 0
    phase_recalls: int = 0


class HarmoniaPolicy(HistoryMixin):
    """The paper's two-level controller.

    Args:
        space: the platform configuration grid.
        compute_predictor: Table 3 compute-throughput sensitivity model.
        bandwidth_predictor: Table 3 bandwidth sensitivity model.
        bins: sensitivity binning (defaults to the paper's 30%/70%).
        enable_fg: disable for the CG-only comparator of Figures 10-13.
        tunables: tunables the controller may move (the compute-DVFS-only
            variant of Section 7.2 passes ``("f_cu",)``).
        max_dithering: FG oscillation bound before convergence.
        tolerance: FG relative-feedback tolerance.
        monitor_alpha: EWMA weight of the monitoring block.
        phase_threshold: relative identity-counter change that declares a
            workload phase change.
        fg_patience: observations a phase must survive before the FG loop
            starts probing. Rapidly phase-changing kernels (Graph500's BFS
            levels) would otherwise pay a probe-iteration penalty inside
            every short phase; stable kernels merely start FG one
            iteration later. The CG-jump validation is exempt — a bad
            jump is reverted immediately regardless of patience.
        enable_phase_memory: when a previously seen phase recurs, restore
            its last settled configuration instead of re-running CG from
            scratch (Section 5.1's per-kernel history, generalized to
            phases).
        policy_name: report name override.
        telemetry: telemetry handle receiving decision events, metrics
            and profiling samples (disabled null handle by default; with
            it disabled the policy's decisions are bit-identical).
    """

    def __init__(
        self,
        space: ConfigSpace,
        compute_predictor: SensitivityPredictor,
        bandwidth_predictor: SensitivityPredictor,
        bins: Optional[SensitivityBins] = None,
        enable_fg: bool = True,
        tunables: Tuple[str, ...] = TUNABLES,
        max_dithering: int = 8,
        tolerance: float = 0.01,
        monitor_alpha: float = 0.4,
        phase_threshold: float = 0.10,
        fg_patience: int = 3,
        enable_phase_memory: bool = True,
        policy_name: Optional[str] = None,
        telemetry=None,
    ):
        super().__init__()
        self._space = space
        self._telemetry = coalesce(telemetry)
        self._cg = CoarseGrainTuner(
            space=space,
            compute_predictor=compute_predictor,
            bandwidth_predictor=bandwidth_predictor,
            bins=bins,
            tunables=frozenset(tunables),
            telemetry=self._telemetry,
        )
        self._fg = FineGrainTuner(
            space=space,
            tunables=tunables,
            max_dithering=max_dithering,
            tolerance=tolerance,
            telemetry=self._telemetry,
        )
        self._monitor = MonitoringBlock(alpha=monitor_alpha,
                                        telemetry=self._telemetry)
        self._phases = PhaseDetector(threshold=phase_threshold)
        self._phase_memory = (
            PhaseMemory(threshold=phase_threshold)
            if enable_phase_memory else None
        )
        self._enable_fg = enable_fg
        if fg_patience < 1:
            raise ValueError("fg_patience must be >= 1")
        self._fg_patience = fg_patience
        self._control: Dict[str, _KernelControlState] = {}
        # Pure memo: the per-tunable bin mapping handed to the FG tuner is
        # a function of the snapshot's (compute_bin, bandwidth_bin) pair
        # (at most |Bin|^2 shared read-only dicts).
        self._tunable_bins_memo: Dict[Tuple[Bin, Bin], Dict[str, Bin]] = {}
        default_name = "harmonia" if enable_fg else "cg-only"
        self._name = policy_name or default_name

    @property
    def name(self) -> str:
        """Policy name."""
        return self._name

    @property
    def monitor(self) -> MonitoringBlock:
        """The monitoring block (exposed for analysis)."""
        return self._monitor

    @property
    def coarse_tuner(self) -> CoarseGrainTuner:
        """The CG block (exposed for analysis)."""
        return self._cg

    @property
    def phase_memory(self) -> Optional[PhaseMemory]:
        """The per-phase configuration memory (None when disabled)."""
        return self._phase_memory

    @property
    def telemetry(self):
        """The telemetry handle in use (the null handle when disabled)."""
        return self._telemetry

    @property
    def phase_threshold(self) -> float:
        """Relative identity change declaring a workload phase change."""
        return self._phases.threshold

    def restore_numeric_state(self, kernel_name: str, features,
                              identity: Tuple) -> None:
        """Install externally computed monitor/phase state for one kernel.

        The batched session engine advances the numeric stage (feature
        EWMA, phase identities) as lane arrays outside the policy
        object; on lane hand-back it restores the equivalent scalar
        state here, so post-run inspection (``monitor.current``,
        ``current_identity``) and any subsequent scalar stepping see
        exactly what a scalar run would have left behind.
        """
        self._monitor.restore(kernel_name, features)
        self._phases.restore(kernel_name, identity)

    def reset(self) -> None:
        """Forget all per-kernel state (between applications)."""
        self.clear_history()
        self._control.clear()
        self._monitor.reset()
        self._phases.reset()
        if self._phase_memory is not None:
            self._phase_memory.reset()

    def control_state(self, kernel_name: str) -> _KernelControlState:
        """The (auto-created) controller state of one kernel."""
        if kernel_name not in self._control:
            self._control[kernel_name] = _KernelControlState()
        return self._control[kernel_name]

    def stats(self, kernel_name: Optional[str] = None):
        """Read-only controller counters (the Figure 18 attribution).

        Args:
            kernel_name: return one kernel's :class:`ControllerStats`
                (all-zero for a kernel never observed); ``None`` returns
                a mapping over every kernel seen so far.
        """
        if kernel_name is None:
            return {name: self.stats(name) for name in sorted(self._control)}
        control = self._control.get(kernel_name)
        if control is None:
            return ControllerStats()
        return ControllerStats(
            cg_actions=control.cg_actions,
            fg_actions=control.fg_actions,
            phase_changes=control.phase_changes,
            phase_recalls=control.phase_recalls,
        )

    # --- policy interface ---------------------------------------------------------

    def config_for(self, context: LaunchContext) -> HardwareConfig:
        """The configuration assigned to this kernel's next launch."""
        history = self.history_for(context.kernel_name)
        if history.current_config is None:
            # First launch: inherit the baseline (boost) operating point.
            history.current_config = self._space.max_config()
        return history.current_config

    def observe(self, context: LaunchContext, result: KernelRunResult) -> None:
        """Algorithm 1's monitoring + decision step.

        Split into a numeric stage (phase detection, feature averaging,
        sensitivity prediction, utilization-rate feedback) followed by
        :meth:`_apply_observation`, the branchy transition stage. The
        batched engine (:mod:`repro.runtime.session`) computes the same
        numeric stage as vectorized lane arrays and funnels each lane
        through the same transition stage, which is what keeps the two
        paths bitwise-identical.
        """
        history = self.history_for(context.kernel_name)
        control = self.control_state(context.kernel_name)
        requested = history.current_config
        history.record(result)

        if requested is not None and result.config != requested:
            # An outer layer (e.g. a thermal governor, Section 2.3's
            # PowerTune enforcement) overrode our request. The launch's
            # feedback is not attributable to any FG move, so drop the
            # in-flight step and hold our own decision.
            control.fg.abort_inflight()
            self._phases.phase_changed(context.kernel_name, result.counters)
            self._monitor.update(context.kernel_name, result.counters)
            return

        phase_changed = self._phases.phase_changed(
            context.kernel_name, result.counters
        )
        if phase_changed:
            # New workload phase: restart the feature average.
            self._monitor.reset_kernel(context.kernel_name)
        features = self._monitor.update(context.kernel_name, result.counters)
        snapshot = self._cg.snapshot_from_features(features)
        identity = self._phases.identity_of(result.counters)
        self._apply_observation(
            context, result, history, control,
            phase_changed=phase_changed,
            snapshot=snapshot,
            identity=identity,
            feedback=utilization_rate(result),
        )

    def _apply_observation(self, context: LaunchContext,
                           result: KernelRunResult,
                           history: KernelHistory,
                           control: _KernelControlState, *,
                           phase_changed: bool,
                           snapshot: SensitivitySnapshot,
                           identity: Tuple,
                           feedback: float) -> None:
        """Algorithm 1's decision step, downstream of the numeric stage.

        Applies the CG-jump / phase-recall / FG hill-climb transition
        rules given the launch's numeric observations: the phase-change
        flag, the binned sensitivity snapshot, the phase identity, and
        the utilization-rate feedback. Mutates the per-kernel history
        and control state in place. Both the scalar :meth:`observe` and
        the batched session engine call into this one method, so every
        branch decision is shared verbatim between the two paths.
        """
        if phase_changed:
            # New workload phase: restart the FG state.
            control.phase_changes += 1
            control.phase_age = 0
            control.fg.restart()
        control.phase_age += 1
        tel = self._telemetry
        if phase_changed and tel.enabled:
            tel.emit(tm.PhaseChange(
                kernel=context.kernel_name,
                iteration=context.iteration,
                time_s=result.time,
                identity=tuple(identity),
                phase_index=control.phase_changes,
            ))
            tel.metrics.counter(
                "phase_changes_total",
                "workload phase changes declared by the phase detector",
            ).inc(kernel=context.kernel_name)
        source = None
        if phase_changed:
            recalled = (
                self._phase_memory.recall(context.kernel_name, identity)
                if self._phase_memory is not None else None
            )
            if recalled is not None:
                # A previously seen phase recurs: restore its last settled
                # configuration directly (Section 5.1's history, per phase).
                control.phase_recalls += 1
                next_config = recalled
                source = "recall"
                if tel.enabled:
                    tel.metrics.counter(
                        "phase_recalls_total",
                        "recurring phases restored from phase memory",
                    ).inc(kernel=context.kernel_name)
            else:
                next_config = self._cg_jump(control, snapshot, result.config)
                source = "cg"
                if tel.enabled:
                    tel.emit(tm.CGJump(
                        kernel=context.kernel_name,
                        iteration=context.iteration,
                        time_s=result.time,
                        old_config=result.config,
                        new_config=next_config,
                        compute_bin=snapshot.compute_bin.value,
                        bandwidth_bin=snapshot.bandwidth_bin.value,
                        compute_sensitivity=snapshot.compute,
                        bandwidth_sensitivity=snapshot.bandwidth,
                    ))
                    tel.metrics.counter(
                        "cg_actions_total", "coarse-grain jumps taken",
                    ).inc(kernel=context.kernel_name)
            if self._enable_fg and next_config != result.config:
                # Arm the FG loop to validate the jump (or the recall)
                # against the pre-jump utilization rate (Section 7.3,
                # insight 4) — both feedbacks are measured on the new
                # phase, so the comparison is meaningful.
                control.fg.prime_cg_validation(
                    before_config=result.config,
                    before_feedback=feedback,
                )
            control.last_identity = identity
        elif self._enable_fg and (
            control.phase_age > self._fg_patience
            or control.fg.inflight is not None
        ):
            control.fg_actions += 1
            bins_key = (snapshot.compute_bin, snapshot.bandwidth_bin)
            tunable_bins = self._tunable_bins_memo.get(bins_key)
            if tunable_bins is None:
                tunable_bins = self._tunable_bins_memo[bins_key] = {
                    "n_cu": snapshot.compute_bin,
                    "f_cu": snapshot.compute_bin,
                    "f_mem": snapshot.bandwidth_bin,
                }
            pre_inflight = control.fg.inflight
            pre_converged = control.fg.converged
            pre_dithering = control.fg.dithering
            next_config = self._fg.propose(
                control.fg, result.config, feedback, tunable_bins
            )
            source = "fg"
            if tel.enabled:
                self._emit_fg_telemetry(
                    context, result, control, snapshot, pre_inflight,
                    pre_converged, pre_dithering, next_config,
                )
        else:
            next_config = result.config

        history.previous_config = result.config
        history.config_changed_last = next_config != result.config
        history.current_config = next_config
        control.last_snapshot = snapshot
        if tel.enabled and source is not None and next_config != result.config:
            tel.emit(tm.ConfigApplied(
                kernel=context.kernel_name,
                iteration=context.iteration,
                time_s=result.time,
                old_config=result.config,
                new_config=next_config,
                source=source,
            ))
            tel.metrics.counter(
                "config_changes_total",
                "configuration changes applied, by deciding block",
            ).inc(kernel=context.kernel_name, source=source)
        if self._phase_memory is not None and control.fg.inflight is None:
            # Remember the phase's configuration only at settle points —
            # never a transient FG probe awaiting its feedback.
            self._phase_memory.remember(
                context.kernel_name, identity, next_config
            )

    def _cg_jump(self, control: _KernelControlState,
                 snapshot: SensitivitySnapshot,
                 current: HardwareConfig) -> HardwareConfig:
        control.cg_actions += 1
        return self._cg.target_config(snapshot, current)

    def _emit_fg_telemetry(self, context: LaunchContext,
                           result: KernelRunResult,
                           control: _KernelControlState,
                           snapshot: SensitivitySnapshot,
                           pre_inflight, pre_converged: bool,
                           pre_dithering: int,
                           next_config: HardwareConfig) -> None:
        """Classify one FG engagement into step/revert/converged events.

        The tuner mutates its state in place, so the engagement's nature
        is read off the pre/post deltas: a dithering increment is a
        revert (of ``pre_inflight``'s tunable, or of a whole CG jump
        under validation), a fresh ``converged`` flag is convergence,
        and any other configuration change is a forward step.
        """
        tel = self._telemetry
        kernel = context.kernel_name
        tel.metrics.counter(
            "fg_actions_total", "fine-grain engagements",
        ).inc(kernel=kernel)
        reverted = control.fg.dithering > pre_dithering
        if reverted:
            tel.emit(tm.FGRevert(
                kernel=kernel,
                iteration=context.iteration,
                time_s=result.time,
                tunable=pre_inflight.tunable if pre_inflight else "?",
                old_config=result.config,
                new_config=next_config,
            ))
            tel.metrics.counter(
                "fg_dither_events_total", "fine-grain reverts (dithering)",
            ).inc(kernel=kernel)
        if control.fg.converged and not pre_converged:
            tel.emit(tm.FGConverged(
                kernel=kernel,
                iteration=context.iteration,
                time_s=result.time,
                config=next_config,
            ))
            tel.metrics.counter(
                "fg_converged_total", "fine-grain convergence events",
            ).inc(kernel=kernel)
        elif not reverted and next_config != result.config:
            tunable, direction = _moved_tunable(result.config, next_config)
            tel.emit(tm.FGStep(
                kernel=kernel,
                iteration=context.iteration,
                time_s=result.time,
                tunable=tunable,
                direction=direction,
                old_config=result.config,
                new_config=next_config,
                compute_bin=snapshot.compute_bin.value,
                bandwidth_bin=snapshot.bandwidth_bin.value,
            ))
            tel.metrics.counter(
                "fg_steps_total", "fine-grain grid steps taken",
            ).inc(kernel=kernel)


def _moved_tunable(old: HardwareConfig,
                   new: HardwareConfig) -> Tuple[str, int]:
    """(tunable, direction) of a one-tunable move; ("multi", 0) otherwise."""
    moved = [
        (name, 1 if getattr(new, name) > getattr(old, name) else -1)
        for name in TUNABLES
        if getattr(new, name) != getattr(old, name)
    ]
    if len(moved) == 1:
        return moved[0]
    return ("multi", 0)
