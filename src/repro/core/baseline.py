"""The shipping PowerTune baseline (Sections 2.3 and 7).

AMD PowerTune manages the GPU between the DPM states of Table 1 plus the
1 GHz boost state, based on power and thermal headroom. "Due to the
consistent availability of thermal headroom, the baseline power management
always runs at the boost frequency of 1 GHz for all applications"
(Section 7) — with all 32 CUs active and the memory bus at its maximum —
so the baseline policy resolves to the maximum configuration for every
launch. The headroom logic is still modelled (a TDP check against the
previous launch's card power) so that constrained scenarios degrade to
DPM2 exactly as PowerTune would.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.perf.result import KernelRunResult
from repro.core.policy import HistoryMixin, LaunchContext


class BaselinePolicy(HistoryMixin):
    """PowerTune-style baseline: boost whenever headroom allows.

    Args:
        space: the platform configuration grid.
        tdp_watts: board power limit; if a launch exceeded it, the next
            launch falls back from boost to the DPM2 frequency. The
            paper's rig never hits this (fan pinned at max RPM), so the
            default is comfortably above any modelled draw.
    """

    def __init__(self, space: ConfigSpace, tdp_watts: float = 250.0):
        super().__init__()
        self._space = space
        self._tdp = tdp_watts
        freqs = space.compute_frequencies
        # DPM2 is the highest non-boost state: one grid step below max.
        self._dpm2_f_cu = freqs[-2] if len(freqs) > 1 else freqs[-1]

    @property
    def name(self) -> str:
        """Policy name."""
        return "baseline"

    def reset(self) -> None:
        """Forget all history."""
        self.clear_history()

    def config_for(self, context: LaunchContext) -> HardwareConfig:
        """Boost configuration, or DPM2 when the TDP was exceeded."""
        boost = self._space.max_config()
        last = self.history_for(context.kernel_name).last_result
        if last is not None and last.power.card > self._tdp:
            return boost.replace(f_cu=self._dpm2_f_cu)
        return boost

    def observe(self, context: LaunchContext, result: KernelRunResult) -> None:
        """Record the launch for the headroom check."""
        self.history_for(context.kernel_name).record(result)
