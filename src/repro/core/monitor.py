"""The monitoring block (Section 5.1).

"Our implementation is organized into: i) a monitoring block that samples
the performance counters at application kernel boundaries ... and use[s]
each kernel's historical data from previous iterations."

Raw counter samples react to the hardware configuration as well as to the
workload; the monitoring block therefore maintains a per-kernel
exponentially-weighted moving average of the counter feature vector. The
smoothed features are what the sensitivity predictors consume: a genuine
workload phase change moves most features decisively and flips the
sensitivity bins, while a one-step configuration change perturbs the
average only fractionally — the online analogue of Section 4.2's
observation that per-kernel counters show "only small variations around
the nominal values" across hardware configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import PolicyError
from repro.perf.counters import PerfCounters
from repro.telemetry.handle import coalesce


class MonitoringBlock:
    """Per-kernel EWMA smoothing of counter features.

    Args:
        alpha: EWMA weight of the newest sample, in (0, 1]. 1.0 disables
            smoothing (raw per-launch features).
        telemetry: telemetry handle for profiling the update hot path
            (disabled null handle by default).
    """

    def __init__(self, alpha: float = 0.4, telemetry=None):
        if not 0 < alpha <= 1:
            raise PolicyError("alpha must be in (0, 1]")
        self._alpha = alpha
        self._telemetry = coalesce(telemetry)
        self._state: Dict[str, Dict[str, float]] = {}

    @property
    def alpha(self) -> float:
        """The EWMA weight in use."""
        return self._alpha

    def update(self, kernel_name: str,
               counters: PerfCounters) -> Mapping[str, float]:
        """Fold a new counter sample into the kernel's running average.

        Returns:
            The smoothed feature mapping to feed the predictors.
        """
        with self._telemetry.time("monitor.update"):
            features = counters.as_feature_dict()
            state = self._state.get(kernel_name)
            if state is None:
                state = dict(features)
            else:
                for name, value in features.items():
                    state[name] = ((1 - self._alpha) * state[name]
                                   + self._alpha * value)
            self._state[kernel_name] = state
            return dict(state)

    def current(self, kernel_name: str) -> Optional[Mapping[str, float]]:
        """The kernel's current smoothed features, if any."""
        state = self._state.get(kernel_name)
        return dict(state) if state is not None else None

    def reset(self) -> None:
        """Forget all kernels."""
        self._state.clear()

    def reset_kernel(self, kernel_name: str) -> None:
        """Forget one kernel (called at a workload phase boundary so the
        average restarts from the new phase's behaviour)."""
        self._state.pop(kernel_name, None)

    def restore(self, kernel_name: str,
                features: Mapping[str, float]) -> None:
        """Install an externally maintained running average for a kernel.

        The batched session engine advances the EWMA as lane arrays and
        hands the final values back through here, so post-run
        inspection (:meth:`current`) and any further scalar updates see
        exactly what a scalar run would have left behind.
        """
        self._state[kernel_name] = dict(features)


class PhaseDetector:
    """Workload phase-change detection from config-invariant counters.

    Algorithm 1 executes the CG block only for sensitivity changes caused
    by the *workload* ("we only execute CG when there have been no changes
    in the hardware tunables prior to the sensitivity change"). The robust
    way to isolate workload changes is to watch counters that depend only
    on the launched work, never on the hardware configuration: the
    instruction totals (VALUInsts / VFetchInsts / VWriteInsts — exactly
    the quantities Figure 14 plots for Graph500's phases), lane
    utilization (divergence), and register allocation.

    A phase change is declared when any identity component moves by more
    than ``threshold`` relative to the previous launch.
    """

    def __init__(self, threshold: float = 0.10):
        if threshold <= 0:
            raise PolicyError("threshold must be positive")
        self._threshold = threshold
        self._identity: Dict[str, tuple] = {}

    @property
    def threshold(self) -> float:
        """Relative-change threshold."""
        return self._threshold

    @staticmethod
    def identity_of(counters: PerfCounters) -> tuple:
        """The config-invariant workload-identity vector.

        Sensitivities are *intensive* properties of a kernel — they depend
        on the instruction mix per workitem, not on how much work was
        launched. The identity therefore uses the memory-to-compute
        instruction ratios rather than raw totals: a BFS level that doubles
        the frontier but keeps the same mix is the same phase (Harmonia
        keeps its configuration), while a level that shifts the
        compute/memory balance re-triggers CG even at identical totals.
        """
        valu = max(counters.valu_insts_millions, 1e-9)
        return (
            counters.vfetch_insts_millions / valu,
            counters.vwrite_insts_millions / valu,
            counters.valu_utilization,
            counters.norm_vgpr,
        )

    def phase_changed(self, kernel_name: str, counters: PerfCounters) -> bool:
        """Fold in a launch; True if it starts a new workload phase.

        The first observation of a kernel is reported as a phase change
        (the first phase has just been discovered).
        """
        identity = self.identity_of(counters)
        previous = self._identity.get(kernel_name)
        self._identity[kernel_name] = identity
        if previous is None:
            return True
        return self.identity_differs(previous, identity, self._threshold)

    @staticmethod
    def identity_differs(previous: tuple, identity: tuple,
                         threshold: float) -> bool:
        """The phase-change test on two identity vectors.

        Exposed so the batched engine can replay the detector over a
        precomputed identity schedule with the exact same comparison.
        """
        for old, new in zip(previous, identity):
            scale = max(abs(old), abs(new), 1e-12)
            if abs(new - old) / scale > threshold:
                return True
        return False

    def reset(self) -> None:
        """Forget all kernels."""
        self._identity.clear()

    def current_identity(self, kernel_name: str) -> Optional[tuple]:
        """The most recent identity vector of one kernel, if any."""
        return self._identity.get(kernel_name)

    def restore(self, kernel_name: str, identity: tuple) -> None:
        """Install an externally tracked identity for a kernel (the
        batched session engine's scalar-state hand-back)."""
        self._identity[kernel_name] = tuple(identity)


class PhaseMemory:
    """Per-(kernel, phase) configuration recall.

    Section 5.1: "Harmonia records the last best hardware configuration
    for all kernels within that application. This state is the initial
    state for the subsequent iteration. Such iterative behaviors are quite
    common in HPC and scientific applications."

    For phased kernels the natural generalization keys that memory by the
    workload-identity vector: when a previously seen phase *recurs* (a BFS
    level shape coming back around, a solver alternating between stages),
    the controller restores that phase's last settled configuration
    immediately instead of re-running the coarse-grain jump and the
    fine-grain refinement from scratch.
    """

    def __init__(self, threshold: float = 0.10):
        if threshold <= 0:
            raise PolicyError("threshold must be positive")
        self._threshold = threshold
        #: kernel -> list of (identity, config) entries, most recent last
        self._entries: Dict[str, list] = {}

    @staticmethod
    def _matches(a: tuple, b: tuple, threshold: float) -> bool:
        if a == b:
            # Stable phases recur with literally equal identity vectors;
            # the tolerance scan below accepts any equal pair anyway.
            return True
        for x, y in zip(a, b):
            scale = max(abs(x), abs(y), 1e-12)
            if abs(x - y) / scale > threshold:
                return False
        return True

    def recall(self, kernel_name: str, identity: tuple):
        """The remembered configuration for a matching phase, or None."""
        for stored_identity, config in reversed(
            self._entries.get(kernel_name, [])
        ):
            if self._matches(stored_identity, identity, self._threshold):
                return config
        return None

    def remember(self, kernel_name: str, identity: tuple, config) -> None:
        """Record (or update) the configuration for a phase."""
        entries = self._entries.setdefault(kernel_name, [])
        for index, (stored_identity, _) in enumerate(entries):
            if self._matches(stored_identity, identity, self._threshold):
                entries[index] = (stored_identity, config)
                return
        entries.append((identity, config))

    def phase_count(self, kernel_name: str) -> int:
        """Number of distinct phases remembered for a kernel."""
        return len(self._entries.get(kernel_name, []))

    def reset(self) -> None:
        """Forget everything."""
        self._entries.clear()
