"""Vectorized numeric stage of the Harmonia controller, across lanes.

The scalar controller (:class:`~repro.core.harmonia.HarmoniaPolicy`) splits
each observation into a *numeric stage* — phase detection, the feature
EWMA, the Table 3 sensitivity predictions and binning, the utilization-rate
feedback — followed by the branchy *transition stage*
(``_apply_observation``: CG jumps, phase recalls, FG hill-climb steps).

This module vectorizes the numeric stage over **lanes**: independent
controller sessions (one per app × seed × policy-variant) advanced in
lockstep by :class:`~repro.runtime.session.BatchSessionRunner`. Lane state
lives in struct-of-arrays form — one ``(lanes, features)`` EWMA matrix per
kernel — and every tick folds all lanes' counters in with a handful of
array expressions instead of per-lane dict walks.

**Bitwise contract.** Every array expression replicates the scalar
left-to-right IEEE operation order element-wise:

* the EWMA is ``(1 - alpha) * state + alpha * value`` per feature;
* the linear predictors accumulate ``intercept + c0*f0 + c1*f1 + ...``
  sequentially in each model's ``feature_names`` order (never a dot
  product, whose pairwise reduction could differ in the last ULP);
* C-to-M intensity follows Equation 3's exact guard and saturation order;
* clamps and bin edges use the same comparisons as the scalar code.

The transition stage is *not* vectorized: each lane funnels its numeric
observations through the very same ``_apply_observation`` the scalar path
runs, so every branch decision is shared verbatim. That hybrid is what
makes the batched engine bitwise-identical to the scalar loop — the
differential suite in ``tests/test_session_equivalence.py`` holds it to
exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.harmonia import HarmoniaPolicy
from repro.core.coarse import SensitivitySnapshot
from repro.core.monitor import PhaseDetector
from repro.perf.batch import BatchRunResult
from repro.perf.counters import PerfCounters
from repro.sensitivity.binning import Bin

#: canonical feature column order of the lane-state matrices
FEATURE_NAMES: Tuple[str, ...] = PerfCounters.feature_names()
_COLUMN: Dict[str, int] = {name: j for j, name in enumerate(FEATURE_NAMES)}
_BIN_BY_CODE: Tuple[Bin, ...] = (Bin.LOW, Bin.MED, Bin.HIGH)


@dataclass(frozen=True)
class SurfaceNumerics:
    """Per-surface precomputes serving the vectorized numeric stage.

    Derived once per clean grid surface (so shared across every lane,
    seed and tick that launches the spec) and indexed by grid position:

    Attributes:
        features: ``(configs, features)`` raw feature matrix — row ``i``
            is exactly ``result_at(i).counters.as_feature_dict()`` in
            :data:`FEATURE_NAMES` order.
        feedback: per-config utilization rate
            (:func:`~repro.core.fine.utilization_rate`) of a launch
            served at that config.
        identity: the config-invariant workload-identity tuple
            (:meth:`~repro.core.monitor.PhaseDetector.identity_of`) —
            one value for the whole surface by construction.
    """

    features: np.ndarray
    feedback: np.ndarray
    identity: tuple


def surface_numerics(surface: BatchRunResult) -> SurfaceNumerics:
    """Build the :class:`SurfaceNumerics` of one clean grid surface.

    Every element replicates the scalar computation bitwise: the same
    multiplications and divisions, in the same order, on the same float64
    values the scalar counters carry.
    """
    counters = surface.counters
    n = len(surface.configs)
    valu_busy = np.asarray(counters.valu_busy, dtype=np.float64)
    mem_busy = np.asarray(counters.mem_unit_busy, dtype=np.float64)

    features = np.empty((n, len(FEATURE_NAMES)), dtype=np.float64)
    features[:, _COLUMN["VALUUtilization"]] = counters.valu_utilization
    features[:, _COLUMN["VALUBusy"]] = valu_busy
    features[:, _COLUMN["MemUnitBusy"]] = mem_busy
    features[:, _COLUMN["MemUnitStalled"]] = counters.mem_unit_stalled
    features[:, _COLUMN["WriteUnitStalled"]] = counters.write_unit_stalled
    features[:, _COLUMN["icActivity"]] = counters.ic_activity
    features[:, _COLUMN["NormVGPR"]] = counters.norm_vgpr
    features[:, _COLUMN["NormSGPR"]] = counters.norm_sgpr
    # Equation 3, in the scalar's exact order:
    #   raw = (valu_busy * valu_utilization / 100.0) / mem_unit_busy
    #   ctom = min(100.0, raw * 100.0), guarded to 100 when mem is idle.
    idle = mem_busy <= 0
    raw = valu_busy * counters.valu_utilization / 100.0
    raw = raw / np.where(idle, 1.0, mem_busy)
    ctom = np.minimum(100.0, raw * 100.0)
    features[:, _COLUMN["CtoMIntensity"]] = np.where(idle, 100.0, ctom)

    # utilization_rate: valu_busy / 100.0 * n_cu * f_cu, left to right.
    n_cu = np.array([c.n_cu for c in surface.configs], dtype=np.float64)
    f_cu = np.array([c.f_cu for c in surface.configs], dtype=np.float64)
    feedback = valu_busy / 100.0 * n_cu * f_cu

    identity = PhaseDetector.identity_of(counters.at(0))
    return SurfaceNumerics(
        features=features, feedback=feedback, identity=identity
    )


def fast_path_eligible(policy) -> bool:
    """True when a policy can ride the vectorized numeric stage.

    Requires a :class:`HarmoniaPolicy` (or a subclass that overrides
    neither ``observe`` nor ``config_for`` — the Section 7.2 variants
    qualify) with telemetry disabled: an instrumented policy emits
    profiler sections inside the scalar numeric stage that the
    vectorized one intentionally skips. Anything else steps through its
    own ``observe`` per lane (still batched at the platform layer, just
    not at the numeric stage).
    """
    return (
        isinstance(policy, HarmoniaPolicy)
        and type(policy).observe is HarmoniaPolicy.observe
        and type(policy).config_for is HarmoniaPolicy.config_for
        and not policy.telemetry.enabled
    )


def group_signature(policy: HarmoniaPolicy) -> tuple:
    """Lockstep-compatibility key of one fast-path policy.

    Lanes sharing a :class:`LaneGroupObserver` must agree on whatever
    shapes the *sequence* of vectorized operations: the predictors'
    feature accumulation order and the phase threshold (which decides
    the shared per-tick reset mask). Per-lane *values* — EWMA weight,
    model coefficients, bin edges — may differ freely; they are carried
    as lane arrays.
    """
    cg = policy.coarse_tuner
    return (
        tuple(cg.compute_predictor.model.feature_names),
        tuple(cg.bandwidth_predictor.model.feature_names),
        policy.phase_threshold,
    )


class LaneGroupObserver:
    """The struct-of-arrays numeric stage for one lockstep lane group.

    Holds, per kernel, an ``(lanes, features)`` EWMA matrix plus the
    per-lane model parameters, and turns each tick's gathered grid
    indices into per-lane sensitivity snapshots and feedback values —
    the exact inputs ``HarmoniaPolicy._apply_observation`` consumes.

    All lanes must share one :func:`group_signature`; the session
    runner groups them accordingly.
    """

    def __init__(self, policies: Sequence[HarmoniaPolicy]):
        if not policies:
            raise ValueError("a lane group needs at least one policy")
        self._lanes = len(policies)
        alphas = np.array([p.monitor.alpha for p in policies],
                          dtype=np.float64)
        self._alpha = alphas.reshape(-1, 1)
        self._one_minus_alpha = (1.0 - alphas).reshape(-1, 1)

        def model_terms(models):
            intercepts = np.array([m.intercept for m in models],
                                  dtype=np.float64)
            names = models[0].feature_names
            terms = [
                (
                    _COLUMN[name],
                    np.array([m.coefficients[name] for m in models],
                             dtype=np.float64),
                )
                for name in names
            ]
            return intercepts, terms

        self._c_intercept, self._c_terms = model_terms(
            [p.coarse_tuner.compute_predictor.model for p in policies]
        )
        self._b_intercept, self._b_terms = model_terms(
            [p.coarse_tuner.bandwidth_predictor.model for p in policies]
        )
        self._low = np.array(
            [p.coarse_tuner.bins.low_edge for p in policies],
            dtype=np.float64,
        )
        self._high = np.array(
            [p.coarse_tuner.bins.high_edge for p in policies],
            dtype=np.float64,
        )
        #: kernel name -> (lanes, features) running average
        self._ewma: Dict[str, np.ndarray] = {}

    @property
    def lanes(self) -> int:
        """Number of lanes advanced by this observer."""
        return self._lanes

    def _predict(self, intercepts: np.ndarray, terms,
                 state: np.ndarray) -> np.ndarray:
        # Sequential accumulation in feature_names order — the scalar
        # LinearModel.predict loop, vectorized over the lane axis only.
        total = intercepts.copy()
        for column, coefficients in terms:
            total = total + coefficients * state[:, column]
        # SensitivityPredictor.predict_features: max(0.0, min(1.0, raw)).
        return np.maximum(0.0, np.minimum(1.0, total))

    def tick(self, kernel_name: str, numerics: SurfaceNumerics,
             grid_indices: np.ndarray, phase_changed: bool):
        """Fold one lockstep launch into every lane's numeric state.

        Args:
            kernel_name: the kernel all lanes just launched.
            numerics: the launch surface's precomputes.
            grid_indices: per-lane grid position of the launched config.
            phase_changed: the (lane-uniform) phase-change flag of this
                launch — precomputed from the schedule, since the phase
                identity is config-invariant.

        Returns:
            ``(snapshots, feedback)``: per-lane
            :class:`~repro.core.coarse.SensitivitySnapshot` list and
            per-lane utilization-rate feedback list.
        """
        raw = numerics.features[grid_indices]          # (lanes, features)
        state = self._ewma.get(kernel_name)
        if state is None or phase_changed:
            # First observation of the kernel/phase: the average restarts
            # from the raw sample (MonitoringBlock's dict(features)).
            state = raw
        else:
            state = self._one_minus_alpha * state + self._alpha * raw
        self._ewma[kernel_name] = state

        compute = self._predict(self._c_intercept, self._c_terms, state)
        bandwidth = self._predict(self._b_intercept, self._b_terms, state)
        # SensitivityBins.classify: < low_edge LOW, > high_edge HIGH.
        c_codes = np.where(compute < self._low, 0,
                           np.where(compute > self._high, 2, 1))
        b_codes = np.where(bandwidth < self._low, 0,
                           np.where(bandwidth > self._high, 2, 1))
        feedback = numerics.feedback[grid_indices]

        # One C-level conversion per array (`.tolist()`), then plain-float
        # construction: per-lane numpy scalar extraction dominates the
        # tick at realistic lane counts. The frozen-dataclass __init__
        # pays object.__setattr__ per field, so the snapshot is built by
        # seeding the instance dict directly — value-equal to the scalar
        # constructor's output.
        new = SensitivitySnapshot.__new__
        snapshots = []
        append = snapshots.append
        for values in zip(compute.tolist(), bandwidth.tolist(),
                          c_codes.tolist(), b_codes.tolist()):
            snap = new(SensitivitySnapshot)
            snap.__dict__.update(
                compute=values[0], bandwidth=values[1],
                compute_bin=_BIN_BY_CODE[values[2]],
                bandwidth_bin=_BIN_BY_CODE[values[3]],
            )
            append(snap)
        return snapshots, feedback.tolist()

    def export_lane(self, lane: int) -> Dict[str, Dict[str, float]]:
        """One lane's final per-kernel feature averages, as the scalar
        :class:`~repro.core.monitor.MonitoringBlock` dicts (for the
        policy-state hand-back)."""
        return {
            kernel: {
                name: float(state[lane, column])
                for name, column in _COLUMN.items()
            }
            for kernel, state in self._ewma.items()
        }


@dataclass(frozen=True)
class SchedulePlan:
    """Precomputed numeric observations of one application schedule.

    The phase identity is a pure function of the launched spec (its
    counters never depend on the chosen configuration), so the whole
    phase-change sequence of a run is known before stepping any lane —
    the same flags for every lane, seed and policy sharing a threshold.

    Attributes:
        flags: per-launch phase-change booleans.
        identities: per-launch identity tuples.
        last_identity: final identity per kernel (the value the scalar
            :class:`~repro.core.monitor.PhaseDetector` would retain).
    """

    flags: Tuple[bool, ...]
    identities: Tuple[tuple, ...]
    last_identity: Dict[str, tuple]


def plan_schedule(steps: Sequence[Tuple[int, str, SurfaceNumerics]],
                  threshold: float) -> SchedulePlan:
    """Replay the phase detector over a known launch schedule.

    Args:
        steps: per-launch ``(iteration, kernel_name, numerics)`` rows in
            execution order.
        threshold: the lane group's phase threshold.
    """
    flags: List[bool] = []
    identities: List[tuple] = []
    previous: Dict[str, tuple] = {}
    for _iteration, kernel_name, numerics in steps:
        identity = numerics.identity
        before = previous.get(kernel_name)
        previous[kernel_name] = identity
        if before is None:
            changed = True
        else:
            changed = PhaseDetector.identity_differs(
                before, identity, threshold
            )
        flags.append(changed)
        identities.append(identity)
    return SchedulePlan(
        flags=tuple(flags),
        identities=tuple(identities),
        last_identity=previous,
    )
