"""The ED² oracle (Section 7).

"We also compare Harmonia with an oracle scheme optimized for ED² based on
exhaustive online profiling of every iteration of each kernel across all
of the 450 possible hardware configurations. While the oracle technique
provides a useful basis for evaluation, it is impractical to implement."

The oracle launches every (kernel, iteration) at all grid configurations
and picks the one minimizing the launch's ED². Profiling launches are not
charged to the run (the paper's oracle is an offline bound, not a
deployable policy). Distinct iterations of a phased kernel are profiled
separately; repeated identical specs hit a cache.

The exhaustive profile is one batched grid evaluation through the shared
sweep cache, so the oracle, the oracle-gap experiment and the evaluation
harness all search the *same* cached surface instead of each re-sweeping
every kernel — on noisy platforms too, where the launch-keyed noise is
applied after the cache lookup. The per-spec result cache keeps its exact
semantics either way: a spec maps to exactly one optimal configuration,
and that mapping survives :meth:`reset`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.policy import HistoryMixin, LaunchContext
from repro.gpu.config import HardwareConfig
from repro.perf.kernelspec import KernelSpec
from repro.perf.result import KernelRunResult
from repro.platform.hd7970 import HardwarePlatform


class OraclePolicy(HistoryMixin):
    """Exhaustive-search ED²-optimal configuration per launch."""

    def __init__(self, platform: HardwarePlatform):
        super().__init__()
        self._platform = platform
        self._cache: Dict[KernelSpec, HardwareConfig] = {}

    @property
    def name(self) -> str:
        """Policy name."""
        return "oracle"

    def reset(self) -> None:
        """Forget history (the profile cache survives: it is exact)."""
        self.clear_history()

    def best_config_for_spec(self, spec: KernelSpec) -> HardwareConfig:
        """ED²-optimal grid configuration for one kernel spec."""
        if spec in self._cache:
            return self._cache[spec]
        # One batched grid evaluation through the shared sweep cache;
        # argmin returns the first minimum in grid order, matching a
        # scalar loop's strict-< update rule. Noisy platforms take the
        # same path: grid_sweep applies the launch-keyed noise after the
        # cache lookup, element-identical to per-launch profiling.
        surface = self._platform.grid_sweep(spec)
        best_config = surface.configs[int(np.argmin(surface.ed2))]
        self._cache[spec] = best_config
        return best_config

    def config_for(self, context: LaunchContext) -> HardwareConfig:
        """Profile this launch's spec exhaustively and pick the ED² best."""
        return self.best_config_for_spec(context.spec)

    def observe(self, context: LaunchContext, result: KernelRunResult) -> None:
        """Record for completeness; the oracle needs no feedback."""
        self.history_for(context.kernel_name).record(result)
