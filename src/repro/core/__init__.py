"""Power-management policies: the paper's contribution and its comparators.

* :mod:`repro.core.policy` — the policy protocol and shared history state,
* :mod:`repro.core.baseline` — the shipping PowerTune baseline (boost),
* :mod:`repro.core.coarse` — the CG block (sensitivity-binned jumps),
* :mod:`repro.core.fine` — the FG block (utilization-gradient hill climb),
* :mod:`repro.core.harmonia` — Harmonia = monitoring + CG + FG
  (Algorithm 1),
* :mod:`repro.core.oracle` — the exhaustive ED² oracle,
* :mod:`repro.core.variants` — CG-only and compute-DVFS-only policies.
"""

from repro.core.policy import KernelHistory, LaunchContext, PowerPolicy
from repro.core.baseline import BaselinePolicy
from repro.core.capping import PowerCapPolicy
from repro.core.coarse import CoarseGrainTuner
from repro.core.fine import FineGrainTuner, FineGrainState
from repro.core.harmonia import HarmoniaPolicy
from repro.core.oracle import OraclePolicy
from repro.core.variants import ComputeDvfsOnlyPolicy, make_cg_only_policy

__all__ = [
    "KernelHistory",
    "LaunchContext",
    "PowerPolicy",
    "BaselinePolicy",
    "PowerCapPolicy",
    "CoarseGrainTuner",
    "FineGrainTuner",
    "FineGrainState",
    "HarmoniaPolicy",
    "OraclePolicy",
    "ComputeDvfsOnlyPolicy",
    "make_cg_only_policy",
]
