"""The fine-grain (FG) tuning block (Section 5.2).

"Harmonia's FG block fine-tunes each of the hardware tunables based on
performance feedback through the gradient of core utilization. The idea is
to reduce power when the gradient is positive or zero and increase power
when the gradient is negative so as to eventually settle at the balance
point (minimum configuration with zero gradient). To prevent oscillation,
the configuration is set to the last best state after a certain number of
oscillations ... If performance starts to degrade, FG isolates the
responsible tunable and reverts it to previous value."

Feedback signal
---------------
The paper uses "changes in the VALUBusy performance counter" as the proxy
for changes in overall performance. Because launched work can differ
between iterations, the robust form of that proxy is the **ALU-issue
rate**: ``VALUBusy x n_cu x f_cu`` — the rate at which the machine retires
vector work. For a fixed kernel this is exactly proportional to 1/time; it
is invariant to trimming resources the kernel cannot use (zero gradient)
and drops as soon as a trimmed resource was actually needed (negative
gradient), which is precisely the paper's "balance point" semantics.

Control law
-----------
One tunable moves per FG engagement, chosen in *sensitivity-bin priority*
(LOW bins first — they have the most provable headroom; ties broken
memory bus, then CU count, then compute frequency, matching the paper's
observation that Harmonia "most often adjusts CU counts and memory bus
frequencies rather than the full range of compute frequencies"):

* moving **down** continues while feedback stays within tolerance (zero or
  positive gradient: trimming fat, possibly *gaining* performance as in
  the BPT cache-thrashing case);
* a drop in feedback reverts the move (dithering++) and tries the
  **opposite direction** once — this is how FG climbs back out of an
  over-aggressive CG jump (the Streamcluster recovery of Section 7.1);
* moving **up** continues only while feedback strictly improves;
* a tunable whose both directions fail is frozen at its local optimum;
* after ``max_dithering`` reverts the kernel converges to the best state
  seen ("converge to last state with zero gradient") until the workload
  phase changes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import PolicyError
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.perf.result import KernelRunResult
from repro.sensitivity.binning import Bin
from repro.telemetry.handle import coalesce

#: FG probing priority among equal bins: memory bus, CU count, frequency.
_TIEBREAK_ORDER: Tuple[str, ...] = ("f_mem", "n_cu", "f_cu")
_BIN_RANK = {Bin.LOW: 0, Bin.MED: 1, Bin.HIGH: 2}

#: Pseudo-tunable marking a CG jump awaiting feedback validation.
CG_VALIDATION = "__cg__"


def utilization_rate(result: KernelRunResult) -> float:
    """The FG feedback signal: ALU-issue rate (see module docstring)."""
    return (
        result.counters.valu_busy / 100.0
        * result.config.n_cu
        * result.config.f_cu
    )


@dataclass
class _Step:
    """An in-flight FG move awaiting its feedback."""

    tunable: str
    direction: int
    before_config: HardwareConfig
    before_feedback: float
    tried_opposite: bool


@dataclass
class FineGrainState:
    """Per-kernel FG tuner state."""

    #: tunables frozen at their local optimum until the phase changes
    frozen: Set[str] = field(default_factory=set)
    #: the move awaiting feedback, if any
    inflight: Optional[_Step] = None
    #: a queued opposite-direction retry (tunable, direction)
    pending: Optional[Tuple[str, int]] = None
    #: oscillation counter
    dithering: int = 0
    #: best (feedback, config) seen since the last restart
    best: Optional[Tuple[float, HardwareConfig]] = None
    #: converged: hold the best state until the phase changes
    converged: bool = False

    def restart(self) -> None:
        """Re-arm the tuner after a workload phase change."""
        self.frozen.clear()
        self.inflight = None
        self.pending = None
        self.dithering = 0
        self.best = None
        self.converged = False

    def abort_inflight(self) -> None:
        """Drop the in-flight move (external revert invalidated it)."""
        self.inflight = None
        self.pending = None

    def external_revert(self) -> None:
        """An FG move was reverted from outside (it destabilized the
        sensitivity predictions): freeze the moved tunable so the tuner
        does not immediately retry the same destabilizing step."""
        if self.inflight is not None:
            self.frozen.add(self.inflight.tunable)
            self.dithering += 1
        self.abort_inflight()

    def prime_cg_validation(self, before_config: HardwareConfig,
                            before_feedback: float) -> None:
        """Arm validation of a CG jump against pre-jump feedback.

        The paper's FG loop is what "ensures much better performance ...
        and avoids outliers" (Section 7.1) — it corrects coarse-grain
        mispredictions (Section 7.3, insight 4). The first FG engagement
        after a CG jump therefore compares the post-jump utilization rate
        with the pre-jump one; a drop beyond tolerance reverts the jump
        wholesale ("converge to last state with zero gradient").
        """
        self.inflight = _Step(
            tunable=CG_VALIDATION,
            direction=-1,
            before_config=before_config,
            before_feedback=before_feedback,
            tried_opposite=True,
        )
        self.pending = None


class FineGrainTuner:
    """Feedback-driven one-step-at-a-time bidirectional tuner.

    Args:
        space: the platform configuration grid.
        tunables: the tunables this tuner may move.
        max_dithering: reverts tolerated before converging to the best
            state seen (the paper's ``dithering > max`` check).
        tolerance: relative feedback change treated as "stayed the same".
        telemetry: telemetry handle for profiling the propose hot path
            (disabled null handle by default).
    """

    def __init__(
        self,
        space: ConfigSpace,
        tunables: Tuple[str, ...] = ("n_cu", "f_cu", "f_mem"),
        max_dithering: int = 3,
        tolerance: float = 0.01,
        telemetry=None,
    ):
        if max_dithering < 1:
            raise PolicyError("max_dithering must be >= 1")
        if tolerance < 0:
            raise PolicyError("tolerance must be non-negative")
        self._space = space
        self._tunables = tuple(tunables)
        self._max_dithering = max_dithering
        self._tolerance = tolerance
        self._telemetry = coalesce(telemetry)
        # Pure memo: probe order is a function of the bin assignment only
        # (at most |Bin|^len(tunables) entries for a fixed tuner).
        self._probe_memo: Dict[Tuple[Bin, ...], Tuple[str, ...]] = {}
        # Power-rank normalization is fixed by the grid; precompute the
        # inverse scales so the per-launch rank is two multiplies.
        self._rank_compute_scale = 1.0 / (
            space.cu_counts[-1] * space.compute_frequencies[-1]
        )
        self._rank_memory_scale = 0.3 / space.memory_frequencies[-1]

    # --- grid helpers ---------------------------------------------------------

    def _step(self, config: HardwareConfig, tunable: str,
              direction: int) -> HardwareConfig:
        if tunable == "n_cu":
            return self._space.step_cu(config, direction)
        if tunable == "f_cu":
            return self._space.step_f_cu(config, direction)
        if tunable == "f_mem":
            return self._space.step_f_mem(config, direction)
        raise PolicyError(f"unknown tunable {tunable!r}")

    def _probe_order(self, bins: Mapping[str, Bin]) -> Tuple[str, ...]:
        """Unfrozen tunables, lowest sensitivity bin first."""
        key = tuple(bins.get(t, Bin.MED) for t in self._tunables)
        order = self._probe_memo.get(key)
        if order is None:
            candidates = sorted(
                self._tunables,
                key=lambda t: (_BIN_RANK[bins.get(t, Bin.MED)],
                               _TIEBREAK_ORDER.index(t)),
            )
            order = self._probe_memo[key] = tuple(candidates)
        return order

    # --- main step ---------------------------------------------------------

    def propose(
        self,
        state: FineGrainState,
        current: HardwareConfig,
        feedback: float,
        bins: Mapping[str, Bin],
    ) -> HardwareConfig:
        """One FG decision.

        Args:
            state: the kernel's FG state (mutated in place).
            current: the configuration of the launch just observed.
            feedback: the launch's utilization-rate feedback.
            bins: per-tunable sensitivity bins (``n_cu``/``f_cu`` carry the
                compute bin, ``f_mem`` the bandwidth bin).

        Returns:
            The configuration for the next launch.
        """
        tel = self._telemetry
        if not tel.enabled:
            # Per-launch hot path: skip the null-telemetry counter and
            # timing-section machinery entirely.
            return self._propose(state, current, feedback, bins)
        tel.metrics.counter(
            "fg_proposals_total", "fine-grain propose() decisions",
        ).inc()
        with tel.time("fg.propose"):
            return self._propose(state, current, feedback, bins)

    def _propose(
        self,
        state: FineGrainState,
        current: HardwareConfig,
        feedback: float,
        bins: Mapping[str, Bin],
    ) -> HardwareConfig:
        self._space.validate(current)
        self._update_best(state, current, feedback)

        if state.converged:
            return state.best[1]

        if state.inflight is not None:
            outcome = self._resolve_inflight(state, current, feedback)
            if outcome is not None:
                return outcome

        return self._start_next_move(state, current, feedback, bins)

    # --- best-state tracking ---------------------------------------------------------

    def _power_rank(self, config: HardwareConfig) -> float:
        """Monotone power proxy used to break feedback ties.

        "Converge to last state with zero gradient" means the *cheapest*
        state delivering the best feedback — among configs whose feedback
        is within tolerance, prefer lower compute throughput (dominant
        dynamic power) and then lower memory bus frequency.
        """
        return (config.n_cu * config.f_cu * self._rank_compute_scale
                + config.f_mem * self._rank_memory_scale)

    def _update_best(self, state: FineGrainState, current: HardwareConfig,
                     feedback: float) -> None:
        if state.best is None:
            state.best = (feedback, current)
            return
        best_feedback, best_config = state.best
        if feedback > best_feedback * (1.0 + self._tolerance):
            state.best = (feedback, current)
        elif (feedback >= best_feedback * (1.0 - self._tolerance)
              and self._power_rank(current) < self._power_rank(best_config)):
            state.best = (max(feedback, best_feedback), current)

    # --- inflight resolution ---------------------------------------------------------

    def _resolve_inflight(self, state: FineGrainState,
                          current: HardwareConfig,
                          feedback: float) -> Optional[HardwareConfig]:
        """Judge the in-flight move. Returns a config to run next, or None
        to fall through to starting a new move from ``current``."""
        step = state.inflight
        assert step is not None
        before = step.before_feedback
        change = 0.0 if before <= 0 else (feedback - before) / before

        if step.direction < 0:
            # Downward moves must stay within tolerance of the best
            # feedback seen this phase, not merely of the previous step —
            # otherwise a long descent ratchets away sub-tolerance losses
            # one step at a time.
            assert state.best is not None
            anchor = max(before, state.best[0])
            success = (anchor <= 0
                       or (feedback - anchor) / anchor >= -self._tolerance)
        else:
            success = change > self._tolerance

        if step.tunable == CG_VALIDATION:
            state.inflight = None
            if success:
                # The CG jump held up: hold it this round; normal FG moves
                # begin on the next engagement (subject to the caller's
                # patience gate).
                return current
            # The CG jump hurt: revert it wholesale.
            state.dithering += 1
            return step.before_config

        if success:
            if step.direction > 0:
                # Climbing out of an over-aggressive cut moves the
                # bottleneck: previously frozen tunables may have headroom
                # again (the max(compute, memory) ridge), so re-open them.
                state.frozen = {t for t in state.frozen if t == step.tunable}
            # Keep moving the same tunable in the same direction.
            proposal = self._step(current, step.tunable, step.direction)
            if proposal == current:
                # Grid edge: this tunable is done.
                state.frozen.add(step.tunable)
                state.inflight = None
                return None
            state.inflight = _Step(
                tunable=step.tunable,
                direction=step.direction,
                before_config=current,
                before_feedback=feedback,
                tried_opposite=step.tried_opposite,
            )
            return proposal

        # The move hurt (or an upward move bought nothing): revert it.
        state.dithering += 1
        state.inflight = None
        if state.dithering > self._max_dithering:
            state.converged = True
            assert state.best is not None
            return state.best[1]
        if step.tried_opposite or step.direction > 0:
            # Both directions exhausted (down failed earlier or this was
            # the upward retry): the tunable sits at its local optimum.
            state.frozen.add(step.tunable)
        else:
            state.pending = (step.tunable, +1)
        return step.before_config

    # --- starting moves ---------------------------------------------------------

    def _start_next_move(self, state: FineGrainState,
                         current: HardwareConfig, feedback: float,
                         bins: Mapping[str, Bin]) -> HardwareConfig:
        if state.pending is not None:
            tunable, direction = state.pending
            state.pending = None
            return self._launch_step(state, current, feedback, tunable,
                                     direction, tried_opposite=True)

        for tunable in self._probe_order(bins):
            if tunable in state.frozen:
                continue
            proposal = self._step(current, tunable, -1)
            if proposal == current:
                # At the grid minimum there is nothing to trim, but the
                # tunable may be *starved* (e.g. after an over-aggressive
                # LOW-bin jump): probe upward once. The up-move keeps only
                # on strict improvement, so a genuinely balanced tunable
                # costs a single reverted step before freezing.
                return self._launch_step(state, current, feedback, tunable,
                                         direction=+1, tried_opposite=True)
            return self._launch_step(state, current, feedback, tunable,
                                     direction=-1, tried_opposite=False)
        # Everything frozen or at minimum: settled (zero gradient).
        return current

    def _launch_step(self, state: FineGrainState, current: HardwareConfig,
                     feedback: float, tunable: str, direction: int,
                     tried_opposite: bool) -> HardwareConfig:
        proposal = self._step(current, tunable, direction)
        if proposal == current:
            state.frozen.add(tunable)
            return current
        state.inflight = _Step(
            tunable=tunable,
            direction=direction,
            before_config=current,
            before_feedback=feedback,
            tried_opposite=tried_opposite,
        )
        return proposal
