"""Policy protocol and shared per-kernel history.

Harmonia "operates as a system software policy overlaid on top of the
baseline power management system" (Section 5.1): at each kernel boundary
it reads the previous launch's counters, decides a hardware configuration,
and the kernel runs there. The simulator drives every policy through the
same two calls:

* :meth:`PowerPolicy.config_for` — before a launch: which configuration?
* :meth:`PowerPolicy.observe` — after a launch: here is what happened.

Policies are stateful across a run and are ``reset`` between applications
(per-kernel history is intentionally retained *within* an application
across its iterations — that recurrence is what Harmonia exploits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.gpu.config import HardwareConfig
from repro.perf.kernelspec import KernelSpec
from repro.perf.result import KernelRunResult


@dataclass(frozen=True)
class LaunchContext:
    """What a policy knows about an upcoming launch.

    The ``spec`` field exists for the oracle (which by definition may
    profile the kernel exhaustively, Section 7); online policies like
    Harmonia must not inspect it and decide from counters alone.
    """

    kernel_name: str
    iteration: int
    spec: KernelSpec


@runtime_checkable
class PowerPolicy(Protocol):
    """A power-management policy driven at kernel boundaries."""

    @property
    def name(self) -> str:
        """Short policy name used in reports (e.g. ``"harmonia"``)."""
        ...

    def reset(self) -> None:
        """Forget all history (called before each application run)."""
        ...

    def config_for(self, context: LaunchContext) -> HardwareConfig:
        """Choose the configuration for the upcoming launch."""
        ...

    def observe(self, context: LaunchContext, result: KernelRunResult) -> None:
        """Record the outcome of the launch that just completed."""
        ...


@dataclass
class KernelHistory:
    """Per-kernel state a controller accumulates across iterations."""

    #: results observed so far, in iteration order
    results: List[KernelRunResult] = field(default_factory=list)
    #: configuration the controller currently assigns to this kernel
    current_config: Optional[HardwareConfig] = None
    #: configuration used before the most recent change (for reverts)
    previous_config: Optional[HardwareConfig] = None
    #: whether the controller changed the config before the last launch
    config_changed_last: bool = False

    @property
    def last_result(self) -> Optional[KernelRunResult]:
        """Most recent observation, if any."""
        return self.results[-1] if self.results else None

    def record(self, result: KernelRunResult) -> None:
        """Append an observation."""
        self.results.append(result)


class HistoryMixin:
    """Common per-kernel history bookkeeping for concrete policies."""

    def __init__(self) -> None:
        self._history: Dict[str, KernelHistory] = {}

    def history_for(self, kernel_name: str) -> KernelHistory:
        """The (auto-created) history of one kernel."""
        if kernel_name not in self._history:
            self._history[kernel_name] = KernelHistory()
        return self._history[kernel_name]

    def clear_history(self) -> None:
        """Drop all per-kernel state."""
        self._history.clear()
