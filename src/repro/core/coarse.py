"""The coarse-grain (CG) tuning block (Section 5.2).

"Within the CG block, all three tunables are concurrently adjusted in
SetCU-Freq-MemBW(). Sensitivity is computed for each tunable using
weighted linear equation per Table 3, and binned into three bins of high,
medium, and low. Each bin is associated with a specific empirically fixed
high, medium, or low value of the tunable."

The compute-throughput sensitivity bin drives both compute tunables (CU
count and CU frequency); the bandwidth sensitivity bin drives the memory
bus frequency. Bin targets are fractions of each tunable's range, snapped
to the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Optional, Tuple

from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.perf.counters import PerfCounters
from repro.sensitivity.binning import Bin, SensitivityBins
from repro.sensitivity.predictor import SensitivityPredictor
from repro.telemetry.handle import coalesce

#: Names of the three hardware tunables.
TUNABLES: Tuple[str, ...] = ("n_cu", "f_cu", "f_mem")

#: Empirically fixed per-bin range targets per tunable (Section 5.2: "Each
#: bin is associated with a specific empirically fixed high, medium, or low
#: value of the tunable"). Compute frequency is kept high even in its MED
#: bin — the paper finds scaling CU count and memory bandwidth far more
#: effective than scaling frequency (Section 7.3, insight 2).
DEFAULT_BIN_TARGETS: Mapping[str, Mapping[Bin, float]] = {
    "n_cu": {Bin.LOW: 0.0, Bin.MED: 0.75, Bin.HIGH: 1.0},
    "f_cu": {Bin.LOW: 0.3, Bin.MED: 0.9, Bin.HIGH: 1.0},
    "f_mem": {Bin.LOW: 0.0, Bin.MED: 0.5, Bin.HIGH: 1.0},
}


@dataclass(frozen=True)
class SensitivitySnapshot:
    """One monitoring sample's predicted sensitivities and bins."""

    compute: float
    bandwidth: float
    compute_bin: Bin
    bandwidth_bin: Bin

    @property
    def bins(self) -> Tuple[Bin, Bin]:
        """(compute bin, bandwidth bin) — CG reacts to changes in these."""
        return (self.compute_bin, self.bandwidth_bin)


class CoarseGrainTuner:
    """Computes sensitivity snapshots and CG target configurations.

    Args:
        space: the platform configuration grid.
        compute_predictor: the Table 3 compute-throughput model.
        bandwidth_predictor: the Table 3 bandwidth model.
        bins: binning thresholds and per-bin range targets.
        tunables: which tunables the CG block may move (the compute-DVFS-
            only variant restricts this to ``{"f_cu"}``).
        telemetry: telemetry handle for profiling the prediction hot path
            and counting CG targets (disabled null handle by default).
    """

    def __init__(
        self,
        space: ConfigSpace,
        compute_predictor: SensitivityPredictor,
        bandwidth_predictor: SensitivityPredictor,
        bins: Optional[SensitivityBins] = None,
        tunables: FrozenSet[str] = frozenset(TUNABLES),
        bin_targets: Optional[Mapping[str, Mapping[Bin, float]]] = None,
        telemetry=None,
    ):
        self._telemetry = coalesce(telemetry)
        unknown = tunables - set(TUNABLES)
        if unknown:
            raise ValueError(f"unknown tunables: {sorted(unknown)}")
        self._space = space
        self._compute = compute_predictor
        self._bandwidth = bandwidth_predictor
        self._bins = bins or SensitivityBins()
        self._tunables = tunables
        self._targets = bin_targets or DEFAULT_BIN_TARGETS
        for tunable in TUNABLES:
            if tunable not in self._targets:
                raise ValueError(f"bin_targets missing tunable {tunable!r}")

    @property
    def bins(self) -> SensitivityBins:
        """The binning in use."""
        return self._bins

    @property
    def compute_predictor(self):
        """The compute-sensitivity predictor in use."""
        return self._compute

    @property
    def bandwidth_predictor(self):
        """The bandwidth-sensitivity predictor in use."""
        return self._bandwidth

    def snapshot(self, counters: PerfCounters) -> SensitivitySnapshot:
        """Predict sensitivities from a counter sample and bin them."""
        return self.snapshot_from_features(counters.as_feature_dict())

    def snapshot_from_features(self, features) -> SensitivitySnapshot:
        """Predict sensitivities from a (possibly smoothed) feature map."""
        with self._telemetry.time("cg.predict"):
            compute = self._compute.predict_features(features)
            bandwidth = self._bandwidth.predict_features(features)
            return SensitivitySnapshot(
                compute=compute,
                bandwidth=bandwidth,
                compute_bin=self._bins.classify(compute),
                bandwidth_bin=self._bins.classify(bandwidth),
            )

    def target_config(self, snapshot: SensitivitySnapshot,
                      current: HardwareConfig) -> HardwareConfig:
        """``SetCU_Freq_MemBW``: the CG jump for a sensitivity snapshot.

        The compute bin drives the two compute tunables, the bandwidth bin
        drives the memory bus; each tunable jumps to its own empirically
        fixed per-bin range fraction. Tunables outside this tuner's
        jurisdiction keep their current values.
        """
        if self._telemetry.enabled:
            self._telemetry.metrics.counter(
                "cg_targets_total", "SetCU_Freq_MemBW target computations",
            ).inc()
        jumped = self._space.fraction_to_grid(
            frac_cu=self._targets["n_cu"][snapshot.compute_bin],
            frac_f_cu=self._targets["f_cu"][snapshot.compute_bin],
            frac_f_mem=self._targets["f_mem"][snapshot.bandwidth_bin],
        )
        return current.replace(
            n_cu=jumped.n_cu if "n_cu" in self._tunables else None,
            f_cu=jumped.f_cu if "f_cu" in self._tunables else None,
            f_mem=jumped.f_mem if "f_mem" in self._tunables else None,
        )
