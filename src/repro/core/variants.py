"""Policy variants used in the paper's analysis.

* **CG-only** (Figures 10-13): Harmonia with the fine-grain loop disabled.
  Achieves comparable energy savings but loses up to 27% performance on
  Streamcluster for lack of feedback (Section 7.1).
* **Compute-DVFS-only** (Section 7.2): scaling only compute frequency and
  voltage — what "modern systems rely primarily on" — which achieves a
  mere 3% ED² gain with 1% performance loss, motivating coordinated
  CU-count and memory-bandwidth scaling.
"""

from __future__ import annotations

from typing import Optional

from repro.core.harmonia import HarmoniaPolicy
from repro.gpu.config import ConfigSpace
from repro.sensitivity.binning import SensitivityBins
from repro.sensitivity.predictor import SensitivityPredictor


def make_cg_only_policy(
    space: ConfigSpace,
    compute_predictor: SensitivityPredictor,
    bandwidth_predictor: SensitivityPredictor,
    bins: Optional[SensitivityBins] = None,
    telemetry=None,
) -> HarmoniaPolicy:
    """Harmonia with the FG loop disabled (the "CG" bars)."""
    return HarmoniaPolicy(
        space=space,
        compute_predictor=compute_predictor,
        bandwidth_predictor=bandwidth_predictor,
        bins=bins,
        enable_fg=False,
        policy_name="cg-only",
        telemetry=telemetry,
    )


class ComputeDvfsOnlyPolicy(HarmoniaPolicy):
    """Frequency/voltage scaling of the compute domain only.

    CU count and memory bus frequency stay at their maxima; only the
    compute frequency is tuned (CG jump from the compute-sensitivity bin,
    FG refinement on the utilization gradient).
    """

    def __init__(
        self,
        space: ConfigSpace,
        compute_predictor: SensitivityPredictor,
        bandwidth_predictor: SensitivityPredictor,
        bins: Optional[SensitivityBins] = None,
        telemetry=None,
    ):
        super().__init__(
            space=space,
            compute_predictor=compute_predictor,
            bandwidth_predictor=bandwidth_predictor,
            bins=bins,
            enable_fg=True,
            tunables=("f_cu",),
            policy_name="dvfs-only",
            telemetry=telemetry,
        )
