"""Command-line interface.

::

    python -m repro list                      # applications and kernels
    python -m repro run CoMD --policy harmonia
    python -m repro evaluate                  # the Figures 10-13 headline
    python -m repro figure fig10              # any paper table/figure
    python -m repro sweep Sort.BottomScan     # design-space summary

Every subcommand builds the deterministic simulated test bed, so output is
reproducible run to run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.analysis.sweep import ConfigSweep
from repro.experiments.context import ExperimentContext
from repro.units import hz_to_mhz
from repro.workloads.registry import all_kernels, application_names, get_kernel

#: figure/table name -> (run, format_report) import paths, resolved lazily.
_FIGURES: Dict[str, str] = {
    "fig01": "fig01_power_breakdown",
    "table1": "table1_dvfs",
    "fig03": "fig03_balance",
    "fig06": "fig06_metric_tradeoffs",
    "fig07": "fig07_occupancy",
    "fig08": "fig08_divergence",
    "fig09": "fig09_clock_domains",
    "table3": "table2_table3_models",
    "fig14": "fig14_16_graph500",
    "fig15": "fig14_16_graph500",
    "fig16": "fig14_16_graph500",
    "fig17": "fig17_power_sharing",
    "fig18": "fig18_cg_vs_fg",
    "sec72": "sec72_variants",
    "ext-voltage": "ext_memory_voltage",
    "ext-portability": "ext_portability",
    "ext-capping": "ext_power_capping",
    "ext-validation": "ext_model_validation",
    "ext-recall": "ext_phase_memory",
    "oracle-gap": "oracle_gap",
    "ext-thermal": "ext_thermal_capping",
}

_POLICIES = ("baseline", "harmonia", "cg-only", "dvfs-only", "oracle")


def _attach_store(args: argparse.Namespace, telemetry=None):
    """Attach the persistent sweep store behind the shared cache.

    Every sweeping subcommand calls this first: unless ``--no-cache`` was
    given, deterministic grid surfaces are served from (and written
    through to) the content-addressed store under ``--cache-dir`` /
    ``$REPRO_CACHE_DIR`` / ``~/.cache/repro-harmonia``, so repeated CLI
    invocations warm-start across processes. An unusable store directory
    degrades to memory-only operation with a warning — the store is an
    accelerator, never a requirement.
    """
    from repro.platform.sweepcache import shared_cache

    cache = shared_cache()
    if getattr(args, "no_cache", False):
        cache.detach_store()
        return None
    from repro.platform.store import SweepStore, resolve_store_dir

    root = resolve_store_dir(getattr(args, "cache_dir", None))
    try:
        store = SweepStore(root, telemetry=telemetry)
    except OSError as error:
        print(f"warning: sweep store disabled ({root}: {error})",
              file=sys.stderr)
        cache.detach_store()
        return None
    cache.attach_store(store)
    return store


def _build_policy(context: ExperimentContext, name: str, telemetry=None):
    if name in ("baseline", "oracle"):
        # These comparators take no decisions worth tracing; runner-level
        # KernelLaunch events still cover them.
        factories = {
            "baseline": context.baseline_policy,
            "oracle": context.oracle_policy,
        }
        return factories[name]()
    factories = {
        "harmonia": context.harmonia_policy,
        "cg-only": context.cg_only_policy,
        "dvfs-only": context.dvfs_only_policy,
    }
    return factories[name](telemetry=telemetry)


def cmd_list(args: argparse.Namespace) -> int:
    """List the registered applications and kernels."""
    from repro.workloads.registry import get_application

    rows = []
    for name in application_names():
        app = get_application(name)
        rows.append((name, app.suite, str(app.iterations),
                     ", ".join(k.name.split(".", 1)[1] for k in app.kernels)))
    print(format_table(
        headers=("application", "suite", "iterations", "kernels"),
        rows=rows,
        title=f"{len(application_names())} applications / "
              f"{len(all_kernels())} kernels (paper Section 6)",
    ))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run one application under one policy."""
    from repro.runtime.simulator import ApplicationRunner

    context = ExperimentContext()
    if args.app not in application_names():
        print(f"unknown application {args.app!r}; try: python -m repro list",
              file=sys.stderr)
        return 2
    app = context.application(args.app)

    telemetry = None
    sink = None
    if args.trace or args.metrics_out or args.profile:
        from repro.telemetry import JsonlSink, Telemetry
        telemetry = Telemetry()
        if args.trace:
            sink = JsonlSink(args.trace)
            telemetry.add_sink(sink)
    _attach_store(args, telemetry=telemetry)

    policy = _build_policy(context, args.policy, telemetry=telemetry)
    baseline = context.baseline_policy()
    # The baseline comparator runs un-instrumented so the trace holds
    # only the policy under study.
    runner = ApplicationRunner(context.platform)
    base_run = runner.run(app, baseline)
    policy_runner = ApplicationRunner(context.platform, telemetry=telemetry)
    run = policy_runner.run(app, policy)

    rows = []
    for label, r in (("baseline", base_run), (args.policy, run)):
        m = r.metrics
        rows.append((label, f"{m.time * 1e3:.2f}", f"{m.energy:.3f}",
                     f"{m.avg_power:.1f}", f"{m.ed2 * 1e6:.3f}"))
    print(format_table(
        headers=("policy", "time ms", "energy J", "power W", "ED2 uJ s^2"),
        rows=rows,
        title=f"{app.name}: {app.iterations} iterations x "
              f"{len(app.kernels)} kernels",
    ))

    improvement = 1 - run.metrics.ed2 / base_run.metrics.ed2
    perf = base_run.metrics.time / run.metrics.time - 1
    print(f"\nED2 {improvement:+.1%}, performance {perf:+.1%}, power "
          f"{1 - run.metrics.avg_power / base_run.metrics.avg_power:+.1%}")

    print("\nmemory-bus residency:")
    for f_mem, frac in sorted(run.trace.f_mem_residency().fractions.items()):
        print(f"  {hz_to_mhz(f_mem):6.0f} MHz  {frac:6.1%}")

    if telemetry is not None:
        if sink is not None:
            sink.close()
            print(f"\ntelemetry trace: {sink.count} events written to "
                  f"{sink.path}\n(summarize with: python -m repro "
                  f"telemetry-report {sink.path})")
        if args.metrics_out:
            from repro.platform.sweepcache import shared_cache
            shared_cache().publish(telemetry)
            telemetry.metrics.write_json(args.metrics_out)
            print(f"metrics written to {args.metrics_out}")
        if args.profile:
            print("\nwall-time profile of the policy run:")
            print(telemetry.profiler.report())
    return 0


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    """Summarize a JSONL event trace, a span trace, or a metrics export."""
    from repro.errors import TelemetryError
    from repro.telemetry.report import (
        cache_effectiveness_from_metrics, eventsim_engine_from_metrics,
        format_report, summarize)

    if not (args.trace or args.spans or args.metrics):
        print("telemetry-report needs a trace file, --spans, or --metrics",
              file=sys.stderr)
        return 2

    first = True
    if args.trace:
        from repro.telemetry.export import load_events
        try:
            events = load_events(args.trace)
        except FileNotFoundError:
            print(f"no such trace file: {args.trace}", file=sys.stderr)
            return 2
        except TelemetryError as error:
            print(f"unreadable trace {args.trace}: {error}", file=sys.stderr)
            return 2
        if not events:
            print(f"trace {args.trace} holds no events", file=sys.stderr)
            return 2
        print(format_report(summarize(events)))
        first = False

    if args.spans:
        from repro.telemetry.spans import format_span_report, load_chrome_trace
        try:
            records = load_chrome_trace(args.spans)
        except FileNotFoundError:
            print(f"no such span trace: {args.spans}", file=sys.stderr)
            return 2
        except TelemetryError as error:
            print(f"unreadable span trace {args.spans}: {error}",
                  file=sys.stderr)
            return 2
        if not first:
            print()
        print(format_span_report(records))
        first = False

    if args.metrics:
        import json
        from repro.telemetry.metrics import MetricsRegistry
        try:
            with open(args.metrics) as handle:
                metrics = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"unreadable metrics file {args.metrics}: {error}",
                  file=sys.stderr)
            return 2
        if args.prometheus or args.metrics_out:
            try:
                exposition = MetricsRegistry.from_dict(metrics)\
                    .render_prometheus()
            except TelemetryError as error:
                print(f"bad metrics snapshot {args.metrics}: {error}",
                      file=sys.stderr)
                return 2
            if args.metrics_out:
                with open(args.metrics_out, "w") as handle:
                    handle.write(exposition)
                print(f"prometheus exposition written to {args.metrics_out}")
            if args.prometheus:
                if not first:
                    print()
                print(exposition, end="")
                first = False
        else:
            line = cache_effectiveness_from_metrics(metrics)
            if not first:
                print()
            print(line if line is not None
                  else "sweep cache: no series in the metrics export")
            eventsim_line = eventsim_engine_from_metrics(metrics)
            if eventsim_line is not None:
                print(eventsim_line)
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Print the Figures 10-13 headline evaluation."""
    from repro.experiments import fig10_13_evaluation
    from repro.runtime.parallel import resolve_jobs

    _attach_store(args)
    jobs = resolve_jobs(args.jobs)
    context = ExperimentContext(jobs=jobs)
    result = fig10_13_evaluation.run(context)
    print(fig10_13_evaluation.format_report(result))
    if args.seeds:
        summary = fig10_13_evaluation.run_ci(
            context, seeds=args.seeds, noise_std_fraction=args.noise,
            jobs=jobs,
        )
        print()
        print(fig10_13_evaluation.format_ci(summary))
    return 0


def cmd_montecarlo(args: argparse.Namespace) -> int:
    """Repeated-trial Monte Carlo bands for one policy vs the baseline."""
    from repro.analysis.evaluation import EvaluationHarness
    from repro.runtime.parallel import resolve_jobs

    _attach_store(args)
    args.jobs = resolve_jobs(args.jobs)
    context = ExperimentContext(jobs=args.jobs)
    if args.apps:
        unknown = [a for a in args.apps if a not in application_names()]
        if unknown:
            print(f"unknown application(s) {', '.join(map(repr, unknown))}; "
                  f"try: python -m repro list", file=sys.stderr)
            return 2
        apps = [context.application(name) for name in args.apps]
    else:
        apps = context.applications

    factories = {
        "baseline": context.baseline_policy,
        "harmonia": context.harmonia_policy,
        "cg-only": context.cg_only_policy,
        "dvfs-only": context.dvfs_only_policy,
        "oracle": context.oracle_policy,
    }
    if args.jobs > 1 and args.policy not in ("baseline", "oracle"):
        # Train before fanning out so every worker sees one shared report.
        _ = context.training
    harness = EvaluationHarness(context.platform, context.baseline_policy())
    summary = harness.evaluate_montecarlo(
        apps,
        baseline_factory=context.baseline_policy,
        policy_factories=[factories[args.policy]],
        seeds=args.seeds,
        noise_std_fraction=args.noise,
        jobs=args.jobs,
    )

    rows = []
    for comparison in summary.comparisons:
        ed2 = comparison.ed2_improvement
        energy = comparison.energy_improvement
        perf = comparison.performance_delta
        rows.append((
            comparison.application,
            f"{ed2.mean:+.1%} ±{ed2.half_width:.1%}",
            f"{energy.mean:+.1%} ±{energy.half_width:.1%}",
            f"{perf.mean:+.1%} ±{perf.half_width:.1%}",
        ))
    if len(summary.comparisons) > 1:
        geo_ed2 = summary.geomean(args.policy, "ed2_improvement")
        geo_energy = summary.geomean(args.policy, "energy_improvement")
        geo_perf = summary.geomean(args.policy, "performance_delta")
        rows.append((
            "geomean",
            f"{geo_ed2.mean:+.1%} ±{geo_ed2.half_width:.1%}",
            f"{geo_energy.mean:+.1%} ±{geo_energy.half_width:.1%}",
            f"{geo_perf.mean:+.1%} ±{geo_perf.half_width:.1%}",
        ))
    print(format_table(
        headers=("application", "ED2 vs baseline", "energy vs baseline",
                 "performance"),
        rows=rows,
        title=f"{args.policy}: {len(summary.seeds)} Monte Carlo trials at "
              f"{summary.noise_std_fraction:.0%} time noise "
              f"(mean ± 95% CI, seed-paired)",
    ))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """Regenerate one paper table/figure."""
    import importlib

    _attach_store(args)
    key = args.name.lower()
    if key in ("fig10", "fig11", "fig12", "fig13"):
        from repro.experiments import fig10_13_evaluation as module
        context = ExperimentContext()
        result = fig10_13_evaluation_result = module.run(context)
        formatter = getattr(module, f"format_{key}")
        print(formatter(result))
        return 0
    if key == "fig04" or key == "fig05":
        from repro.experiments import fig04_fig05_power_ranges as module
        context = ExperimentContext()
        if key == "fig04":
            print(module.format_report(module.run_fig04(context), "70%"))
        else:
            print(module.format_report(module.run_fig05(context), "10%"))
        return 0
    if key not in _FIGURES:
        known = ", ".join(sorted(set(_FIGURES) | {"fig04", "fig05", "fig10",
                                                  "fig11", "fig12", "fig13"}))
        print(f"unknown figure {args.name!r}; known: {known}",
              file=sys.stderr)
        return 2
    module = importlib.import_module(f"repro.experiments.{_FIGURES[key]}")
    context = ExperimentContext()
    print(module.format_report(module.run(context)))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Design-space summary for one or more kernels."""
    from repro.runtime.parallel import fan_out

    _attach_store(args)
    context = ExperimentContext()
    specs = []
    for name in args.kernels:
        try:
            specs.append(get_kernel(name).base)
        except Exception:
            print(f"unknown kernel {name!r}; try: python -m repro list",
                  file=sys.stderr)
            return 2

    sweeps = fan_out(lambda spec: ConfigSweep(context.platform, spec),
                     specs, jobs=args.jobs)
    for spec, sweep in zip(specs, sweeps):
        best_perf = sweep.optimum_performance()
        rows = []
        for target, point in (("min energy", sweep.optimum_energy()),
                              ("min ED2", sweep.optimum_ed2()),
                              ("max perf", best_perf)):
            rows.append((
                target, point.config.describe(),
                f"{point.performance / best_perf.performance:.2f}",
                f"{point.energy / best_perf.energy:.2f}",
                f"{point.card_power:.0f}",
            ))
        print(format_table(
            headers=("target", "configuration", "perf", "energy", "power W"),
            rows=rows,
            title=f"{spec.name}: metric-optimal configurations over "
                  f"{len(sweep)} grid points",
        ))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate every paper table/figure and write reports to a dir.

    The experiments run as a DAG through the pipeline scheduler: ready
    nodes fan out over the ``--jobs`` worker budget and unchanged nodes
    are served from the content-addressed result manifest in the sweep
    store (``--no-incremental`` forces recomputation). Report bytes are
    identical in every mode.
    """
    import json
    import pathlib
    import time

    from repro.experiments.registry import (
        reproduce_fingerprint, reproduce_specs)
    from repro.runtime.parallel import resolve_jobs
    from repro.runtime.pipeline import (
        ExperimentPipeline, ResultManifest, STATUS_MANIFEST, format_profile)

    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)

    telemetry = None
    if args.trace or args.metrics_out:
        from repro.telemetry import Telemetry
        telemetry = Telemetry()
    store = _attach_store(args, telemetry=telemetry)
    jobs = resolve_jobs(args.jobs)
    context = ExperimentContext(jobs=jobs)

    manifest = None
    if store is not None and not args.no_incremental:
        manifest = ResultManifest(store, telemetry=telemetry)
    pipeline = ExperimentPipeline(
        reproduce_specs(include_ablations=args.ablations), context,
        jobs=jobs, manifest=manifest,
        fingerprint=reproduce_fingerprint(context),
        telemetry=telemetry,
    )

    started = time.time()
    count = 0

    def emit(name: str, text: str, status: str) -> None:
        nonlocal count
        (out_dir / f"{name}.txt").write_text(text + "\n")
        count += 1
        tag = "  (manifest)" if status == STATUS_MANIFEST else ""
        print(f"[{count:2d}] {name}{tag}")

    if telemetry is not None:
        # One root span over the whole run: every pipeline node (and the
        # store/batch/Monte-Carlo spans below them, across thread and
        # process workers) nests under it in the exported trace.
        with telemetry.span("reproduce", jobs=jobs):
            result = pipeline.run(emit)
    else:
        result = pipeline.run(emit)

    print(f"\n{count} reports written to {out_dir} "
          f"in {time.time() - started:.1f}s")
    served = result.served()
    if manifest is not None:
        if len(served) == len(result.reports):
            print(f"result manifest: all {len(served)} reports served from "
                  f"cache, every node skipped")
        elif served:
            print(f"result manifest: {len(served)}/{len(result.reports)} "
                  f"reports served from cache: {', '.join(served)}")
        else:
            print("result manifest: no reports served (cold run)")
    print()
    print(format_profile(result))
    if args.profile_json:
        profile = result.to_dict()
        profile["jobs"] = jobs
        with open(args.profile_json, "w") as handle:
            json.dump(profile, handle, indent=2)
            handle.write("\n")
        print(f"pipeline profile written to {args.profile_json}")
    from repro.platform.sweepcache import shared_cache
    from repro.telemetry.report import format_cache_effectiveness
    stats = shared_cache().stats()
    store_stats = store.stats() if store is not None else None
    print(format_cache_effectiveness(
        stats.memory.hits, stats.memory.misses,
        stats.store.hits, stats.store.misses,
        bytes_read=store_stats.bytes_read if store_stats else 0,
        bytes_written=store_stats.bytes_written if store_stats else 0,
    ))
    if telemetry is not None:
        if args.trace:
            from repro.telemetry import write_chrome_trace
            written = write_chrome_trace(args.trace,
                                         telemetry.spans.records())
            print(f"\nspan trace: {written} spans written to {args.trace}\n"
                  f"(open in Perfetto / chrome://tracing, or summarize "
                  f"with: python -m repro telemetry-report "
                  f"--spans {args.trace})")
        if args.metrics_out:
            shared_cache().publish(telemetry)
            telemetry.metrics.write_json(args.metrics_out)
            print(f"metrics written to {args.metrics_out}")
    return 0


def _load_ledger_module():
    """Import :mod:`benchmarks.ledger`, tolerating a src-only sys.path.

    The ledger lives beside the benchmarks (it is their data model, not
    runtime code); when ``repro`` was imported from ``src`` alone, the
    repository root is appended so the module resolves in a dev checkout.
    """
    try:
        from benchmarks import ledger
        return ledger
    except ImportError:
        import pathlib
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        if not (repo_root / "benchmarks" / "ledger.py").exists():
            raise
        sys.path.insert(0, str(repo_root))
        from benchmarks import ledger
        return ledger


def cmd_bench_report(args: argparse.Namespace) -> int:
    """Report benchmark trends and regression-gate status from the ledger."""
    try:
        ledger = _load_ledger_module()
    except ImportError as error:
        print(f"bench ledger unavailable: {error}", file=sys.stderr)
        return 2

    path = args.ledger if args.ledger else ledger.default_ledger_path()
    entries = ledger.read_entries(path)
    if not entries:
        print(f"ledger {path} holds no entries; ingest BENCH_*.json runs "
              f"with: python tools/bench_gate.py ingest BENCH_foo.json",
              file=sys.stderr)
        return 2
    if args.bench:
        entries = [entry for entry in entries if entry.bench in args.bench]
        if not entries:
            print(f"ledger {path} holds no entries for {args.bench}",
                  file=sys.stderr)
            return 2
    print(ledger.format_trend_report(entries, window=args.window))
    if args.check:
        results = ledger.evaluate_all_gates(entries, window=args.window)
        if any(result.status == ledger.STATUS_REGRESSION
               for result in results):
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Harmonia (ISCA 2015) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared by every subcommand that evaluates sweep surfaces.
    cache_p = argparse.ArgumentParser(add_help=False)
    cache_p.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="persistent sweep-store directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro-harmonia)")
    cache_p.add_argument("--no-cache", action="store_true",
                         help="disable the persistent sweep store (the "
                              "in-process cache stays active)")

    sub.add_parser("list", help="list applications and kernels") \
        .set_defaults(func=cmd_list)

    run_p = sub.add_parser("run", help="run one application under a policy",
                           parents=[cache_p])
    run_p.add_argument("app", help="application name (see: list)")
    run_p.add_argument("--policy", choices=_POLICIES, default="harmonia")
    run_p.add_argument("--trace", metavar="PATH", default=None,
                       help="append a JSONL telemetry trace of the policy "
                            "run to PATH")
    run_p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write the run's metrics registry to PATH "
                            "as JSON")
    run_p.add_argument("--profile", action="store_true",
                       help="print the policy run's wall-time profile")
    run_p.set_defaults(func=cmd_run)

    report_p = sub.add_parser(
        "telemetry-report",
        help="summarize a JSONL telemetry trace (action mix, phases, "
             "residency, top kernels), a Chrome span trace, or a "
             "metrics export",
    )
    report_p.add_argument("trace", nargs="?", default=None,
                          help="path to a --trace JSONL event file")
    report_p.add_argument("--spans", metavar="PATH", default=None,
                          help="self-vs-total and critical-path report of "
                               "a Chrome span trace (reproduce --trace)")
    report_p.add_argument("--metrics", metavar="PATH", default=None,
                          help="summarize sweep-cache effectiveness from a "
                               "--metrics-out JSON export")
    report_p.add_argument("--prometheus", action="store_true",
                          help="print --metrics as Prometheus text "
                               "exposition instead")
    report_p.add_argument("--metrics-out", metavar="PATH", default=None,
                          help="write the Prometheus exposition of "
                               "--metrics to PATH")
    report_p.set_defaults(func=cmd_telemetry_report)

    eval_p = sub.add_parser("evaluate", help="the Figures 10-13 headline",
                            parents=[cache_p])
    eval_p.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="evaluate applications on up to N threads; "
                             "0 = one per core (results are identical "
                             "for any N)")
    eval_p.add_argument("--seeds", type=int, default=0, metavar="N",
                        help="also print 95%% confidence bands from N "
                             "Monte Carlo measurement-noise trials")
    eval_p.add_argument("--noise", type=float, default=0.05, metavar="F",
                        help="per-trial execution-time noise fraction "
                             "for --seeds (default: 0.05)")
    eval_p.set_defaults(func=cmd_evaluate)

    mc_p = sub.add_parser(
        "montecarlo",
        help="repeated-trial noise bands for one policy vs the baseline",
        parents=[cache_p],
    )
    mc_p.add_argument("apps", nargs="*", metavar="app",
                      help="application name(s); default: all fourteen")
    mc_p.add_argument("--policy", choices=_POLICIES, default="harmonia")
    mc_p.add_argument("--seeds", type=int, default=16, metavar="N",
                      help="number of Monte Carlo trial seeds (default: 16)")
    mc_p.add_argument("--noise", type=float, default=0.05, metavar="F",
                      help="per-trial execution-time noise fraction "
                           "(default: 0.05)")
    mc_p.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="evaluate applications on up to N threads; "
                           "0 = one per core")
    mc_p.set_defaults(func=cmd_montecarlo)

    fig_p = sub.add_parser("figure", help="regenerate one table/figure",
                           parents=[cache_p])
    fig_p.add_argument("name", help="e.g. fig10, table1, ext-thermal")
    fig_p.set_defaults(func=cmd_figure)

    sweep_p = sub.add_parser("sweep", help="design-space summary of kernels",
                             parents=[cache_p])
    sweep_p.add_argument("kernels", nargs="+", metavar="kernel",
                         help="qualified name(s), e.g. Sort.BottomScan")
    sweep_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="sweep kernels on up to N threads; "
                              "0 = one per core")
    sweep_p.set_defaults(func=cmd_sweep)

    repro_p = sub.add_parser(
        "reproduce", help="regenerate every table/figure report",
        parents=[cache_p],
    )
    repro_p.add_argument("--output", default="reports",
                         help="output directory (default: ./reports)")
    repro_p.add_argument("--ablations", action="store_true",
                         help="also run the six ablation studies")
    repro_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="total worker budget: experiment nodes and "
                              "their internal fan-outs share it; 0 = one "
                              "per core (reports are identical for any N)")
    repro_p.add_argument("--no-incremental", action="store_true",
                         help="ignore the result manifest and recompute "
                              "every experiment node")
    repro_p.add_argument("--profile-json", metavar="PATH", default=None,
                         help="write the per-node wall/CPU timings and the "
                              "critical path to PATH as JSON")
    repro_p.add_argument("--trace", metavar="PATH", default=None,
                         help="write a Chrome trace-event JSON of the run's "
                              "span tree to PATH (open in Perfetto)")
    repro_p.add_argument("--metrics-out", metavar="PATH", default=None,
                         help="write the aggregated metrics registry "
                              "(merged across all workers) to PATH as JSON")
    repro_p.set_defaults(func=cmd_reproduce)

    bench_p = sub.add_parser(
        "bench-report",
        help="benchmark trend ledger: history, baselines and gate status",
    )
    bench_p.add_argument("--ledger", metavar="PATH", default=None,
                         help="ledger JSONL file (default: "
                              "benchmarks/ledger.jsonl)")
    bench_p.add_argument("--bench", action="append", default=None,
                         metavar="NAME",
                         help="restrict to one benchmark (repeatable)")
    bench_p.add_argument("--window", type=int, default=5, metavar="N",
                         help="baseline window: median of up to N prior "
                              "entries (default: 5)")
    bench_p.add_argument("--check", action="store_true",
                         help="exit 1 when any gate reports a regression")
    bench_p.set_defaults(func=cmd_bench_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
