"""Cross-experiment cache of whole-grid sweep results.

The oracle (:mod:`repro.core.oracle`), the sensitivity measurement
(:mod:`repro.sensitivity.measurement`), the analysis sweeps
(:mod:`repro.analysis.sweep`) and the characterization experiment
(:mod:`repro.experiments.characterization`) each evaluate the same kernels
over the same ~450-point configuration grid. Before this cache existed,
every consumer re-ran its own sweep — the Figure 10-13 evaluation pipeline
evaluated each kernel's grid three or four times over.

A :class:`SweepCache` maps::

    (PlatformCalibration, KernelSpec, (cu_counts, compute_freqs, mem_freqs))
        -> BatchRunResult

All three key components are frozen, value-hashable dataclasses/tuples, so
keying is *by value*: two platforms built from the same calibration share
entries, and changing any calibration constant, kernel characteristic or
grid axis naturally misses — no explicit invalidation protocol is needed.

Only **deterministic** surfaces are cached. Noisy platforms still use the
cache: :meth:`repro.platform.hd7970.HardwarePlatform.grid_sweep` looks up
(or computes) the noise-free surface and applies the launch-keyed noise
*after* the lookup as a vectorized draw (cache-then-perturb, see
:mod:`repro.platform.noise`), so no particular noise realization is ever
frozen into an entry and every consumer's draws stay keyed by
``(seed, spec, iteration, config)``.

The cache is bounded (LRU) and thread-safe, because the parallel fan-out in
:mod:`repro.runtime.parallel` evaluates several applications' kernels
concurrently against the shared instance from :func:`shared_cache`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple

from repro.perf.batch import BatchRunResult


class SweepCache:
    """Bounded, thread-safe LRU cache of :class:`BatchRunResult` grids.

    Attributes:
        maxsize: maximum number of cached grids; each entry holds a dozen
            float arrays over ~450 configs (a few tens of KB), so the
            default comfortably covers every kernel x calibration pair the
            repro evaluates.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, BatchRunResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], BatchRunResult]
    ) -> BatchRunResult:
        """Return the cached grid for ``key``, computing it on a miss.

        ``compute`` runs outside the lock so a slow sweep does not block
        concurrent lookups of other kernels; if two threads race on the
        same key, both compute and the second result wins (results are
        deterministic, so the duplicates are identical).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry
            self._misses += 1
        result = compute()
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return result

    def get(self, key: Hashable) -> Optional[BatchRunResult]:
        """The cached grid for ``key``, or None (counts as hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
            return entry

    def clear(self) -> None:
        """Drop every cached grid (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` since construction."""
        with self._lock:
            return self._hits, self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never used)."""
        hits, misses = self.stats
        lookups = hits + misses
        return hits / lookups if lookups > 0 else 0.0


_SHARED = SweepCache()


def shared_cache() -> SweepCache:
    """The process-wide sweep cache shared by all consumers."""
    return _SHARED
