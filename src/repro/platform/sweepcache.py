"""Cross-experiment cache of whole-grid sweep results.

The oracle (:mod:`repro.core.oracle`), the sensitivity measurement
(:mod:`repro.sensitivity.measurement`), the analysis sweeps
(:mod:`repro.analysis.sweep`) and the characterization experiment
(:mod:`repro.experiments.characterization`) each evaluate the same kernels
over the same ~450-point configuration grid. Before this cache existed,
every consumer re-ran its own sweep — the Figure 10-13 evaluation pipeline
evaluated each kernel's grid three or four times over.

A :class:`SweepCache` maps::

    (PlatformCalibration, KernelSpec, (cu_counts, compute_freqs, mem_freqs))
        -> BatchRunResult

All three key components are frozen, value-hashable dataclasses/tuples, so
keying is *by value*: two platforms built from the same calibration share
entries, and changing any calibration constant, kernel characteristic or
grid axis naturally misses — no explicit invalidation protocol is needed.

The cache is a **two-tier hierarchy**: the in-memory LRU fronts an
optional disk-backed content-addressed store
(:class:`~repro.platform.store.SweepStore`). A memory miss consults the
store before computing, and a computed surface is written through, so a
second *process* (another CLI invocation, a CI shard) warm-starts from the
first one's surfaces. The store is attached via :meth:`attach_store`
(the CLI does this from ``--cache-dir`` / ``$REPRO_CACHE_DIR``) and the
same value-keying applies: the store digests the full key content, so no
stale record is ever addressed.

Only **deterministic** surfaces are cached, in either tier. Noisy
platforms still use the cache:
:meth:`repro.platform.hd7970.HardwarePlatform.grid_sweep` looks up (or
computes) the noise-free surface and applies the launch-keyed noise
*after* the lookup as a vectorized draw (cache-then-perturb, see
:mod:`repro.platform.noise`), so no particular noise realization is ever
frozen into an entry and every consumer's draws stay keyed by
``(seed, spec, iteration, config)``.

The cache is bounded (LRU) and thread-safe, because the parallel fan-out
in :mod:`repro.runtime.parallel` evaluates several applications' kernels
concurrently against the shared instance from :func:`shared_cache`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, NamedTuple, Optional

from repro.perf.batch import BatchRunResult


class TierStats(NamedTuple):
    """``(hits, misses)`` of one cache tier."""

    hits: int
    misses: int


class CacheStats(NamedTuple):
    """Per-tier lookup statistics of a :class:`SweepCache`.

    ``memory`` counts every lookup; ``store`` counts only the memory
    misses that went on to consult an attached store (both zero when no
    store was ever attached).
    """

    memory: TierStats
    store: TierStats

    @property
    def lookups(self) -> int:
        """Total lookups against the cache."""
        return self.memory.hits + self.memory.misses

    @property
    def served(self) -> int:
        """Lookups answered without recomputing (either tier)."""
        return self.memory.hits + self.store.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without recompute (0 when unused)."""
        return self.served / self.lookups if self.lookups else 0.0


class SweepCache:
    """Bounded, thread-safe LRU of :class:`BatchRunResult` grids, with an
    optional persistent second tier.

    Attributes:
        maxsize: maximum number of cached grids; each entry holds a dozen
            float arrays over ~450 configs (a few tens of KB), so the
            default comfortably covers every kernel x calibration pair the
            repro evaluates.
    """

    def __init__(self, maxsize: int = 256, store=None,
                 mmap_loads: bool = True):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        #: serve store reads as zero-copy memory maps of the record
        #: files (eager fallback inside the store when a record cannot
        #: be mapped); evicting such an entry copies it on demote via
        #: its ``release_mmap`` hook so live references stay valid
        self.mmap_loads = mmap_loads
        self._entries: "OrderedDict[Hashable, BatchRunResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._store = store
        self._hits = 0
        self._misses = 0
        self._store_hits = 0
        self._store_misses = 0
        # Single-flight: one in-flight marker per key being computed, so
        # concurrent lookups of the same key wait for the leader instead
        # of duplicating the compute.
        self._inflight: dict = {}

    # --- the persistent tier ---------------------------------------------------

    @property
    def store(self):
        """The attached :class:`~repro.platform.store.SweepStore` (or None).

        Exposed because the store also persists non-sweep record kinds
        for other producers — e.g. the event-driven validation surfaces
        (:data:`~repro.platform.store.EVENTSIM_KIND`), which the batched
        and scalar event simulators write interchangeably (their results
        are bitwise-identical, so records hit regardless of the engine
        that produced them).
        """
        return self._store

    def attach_store(self, store) -> None:
        """Put a persistent store behind the in-memory tier."""
        self._store = store

    def detach_store(self) -> None:
        """Run memory-only again (existing entries stay)."""
        self._store = None

    # --- lookups ---------------------------------------------------------------

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], BatchRunResult]
    ) -> BatchRunResult:
        """Return the cached grid for ``key``, computing it on a miss.

        Lookup order: memory tier, then the attached store (a store hit
        is promoted into memory), then ``compute`` — whose result is
        inserted into memory and written through to the store. Store
        reads and writes run outside the lock, like ``compute``: a slow
        disk does not block concurrent lookups of other kernels.

        Misses are **single-flight**: when two threads race on one key,
        the first becomes the leader and computes; the rest wait and are
        then served from memory as ordinary hits. Besides not wasting a
        duplicate grid evaluation, this keeps the hit/miss counters
        exactly scheduling-independent — a ``--jobs N`` run reports the
        same counts as the serial run, which the cross-worker metric
        aggregation tests rely on.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._misses += 1
                    event = threading.Event()
                    self._inflight[key] = event
                    break
            # Another thread is computing this key: wait, then re-check
            # (the leader may have failed — then this thread leads).
            waiter.wait()
        try:
            # The whole miss path is one "fill" span: store probe,
            # compute, write-through. Which caller leads a *shared* fill
            # is scheduling-dependent, so traces are compared with fill
            # subtrees detached (tree_signature(..., detach=...)) —
            # everything inside the fill is deterministic.
            from repro.telemetry.spans import ambient_telemetry
            with ambient_telemetry().span("sweep_cache.fill"):
                store = self._store
                if store is not None:
                    entry = store.load_batch(key, mmap=self.mmap_loads)
                    with self._lock:
                        if entry is not None:
                            self._store_hits += 1
                        else:
                            self._store_misses += 1
                    if entry is not None:
                        self._insert(key, entry)
                        return entry
                result = compute()
                self._insert(key, result)
                if store is not None:
                    store.save_batch(key, result)
                return result
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()

    def _insert(self, key: Hashable, result: BatchRunResult) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                _, evicted = self._entries.popitem(last=False)
                self._demote(evicted)

    @staticmethod
    def _demote(entry: BatchRunResult) -> None:
        """Copy-on-demote: a map-backed entry leaving the cache copies
        its surfaces into RAM and closes its maps (live references to
        the entry keep working on identical values)."""
        release = getattr(entry, "release_mmap", None)
        if release is not None:
            release()

    def get(self, key: Hashable) -> Optional[BatchRunResult]:
        """The cached grid for ``key``, or None (counts as hit/miss).

        Consults both tiers but never computes; a store hit is promoted
        into the memory tier.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry
            self._misses += 1
        store = self._store
        if store is None:
            return None
        entry = store.load_batch(key, mmap=self.mmap_loads)
        with self._lock:
            if entry is not None:
                self._store_hits += 1
            else:
                self._store_misses += 1
        if entry is not None:
            self._insert(key, entry)
        return entry

    def clear(self) -> None:
        """Drop every in-memory grid (statistics and the store are kept).

        Map-backed entries are demoted (copied to RAM, maps closed) so
        references held outside the cache stay valid."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            self._demote(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # --- statistics ------------------------------------------------------------

    def stats(self) -> CacheStats:
        """Per-tier ``(hits, misses)`` since construction."""
        with self._lock:
            return CacheStats(
                memory=TierStats(self._hits, self._misses),
                store=TierStats(self._store_hits, self._store_misses),
            )

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without recompute (0 when unused)."""
        return self.stats().hit_rate

    def publish(self, telemetry) -> None:
        """Export the per-tier counts as telemetry counters.

        Sets ``sweep_cache_hits_total`` / ``sweep_cache_misses_total``
        (labelled by tier) from the current totals; call once, at the
        end of a run, before exporting the metrics registry.
        """
        stats = self.stats()
        hits = telemetry.metrics.counter(
            "sweep_cache_hits_total", "sweep cache lookups served, per tier",
        )
        misses = telemetry.metrics.counter(
            "sweep_cache_misses_total", "sweep cache lookup misses, per tier",
        )
        for tier, tier_stats in (("memory", stats.memory),
                                 ("store", stats.store)):
            if tier_stats.hits:
                hits.inc(tier_stats.hits, tier=tier)
            if tier_stats.misses:
                misses.inc(tier_stats.misses, tier=tier)


_SHARED = SweepCache()


def shared_cache() -> SweepCache:
    """The process-wide sweep cache shared by all consumers."""
    return _SHARED
