"""The simulated HD7970 test bed.

:mod:`repro.platform.calibration` holds every tunable constant of the
substrate in one place, with the paper figure each constant is calibrated
against. :mod:`repro.platform.hd7970` exposes the facade the rest of the
library (controllers, sweeps, benchmarks) talks to:
``HardwarePlatform.run_kernel(spec, config) -> KernelRunResult``.
"""

from repro.platform.calibration import (
    PlatformCalibration,
    default_calibration,
    pitcairn_calibration,
)
from repro.platform.hd7970 import (
    HardwarePlatform,
    make_hd7970_platform,
    make_pitcairn_platform,
)

__all__ = [
    "PlatformCalibration",
    "default_calibration",
    "pitcairn_calibration",
    "HardwarePlatform",
    "make_hd7970_platform",
    "make_pitcairn_platform",
]
