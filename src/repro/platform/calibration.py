"""Calibration constants for the simulated HD7970 test bed.

Every free parameter of the substrate lives here, together with the paper
evidence it is calibrated against:

* **GPU chip power** — at the boost configuration with a compute-saturating
  workload the chip draws ~155 W (typical HD7970 under compute load;
  the board's PowerTune limit is 250 W). Split ~70% CU dynamic, ~15%
  leakage, ~15% uncore.
* **Memory power** — at 1375 MHz under full streaming traffic the GDDR5 +
  PHY subsystem draws ~55 W, making memory a major consumer of card power
  for memory-intensive workloads (Figure 1). The frequency-proportional
  share (~34 W at max) gives the ~10% board-power swing of Figure 5 when
  traffic is negligible.
* **OtherPwr** — ~30 W constant: fan pinned at max RPM + regulators
  (Section 6).
* **GDDR5 latency** — ~350 ns loaded at 1375 MHz, growing to ~500 ns at
  475 MHz; makes low-occupancy kernels latency- rather than
  bandwidth-bound (Figure 7).
* **Clock-domain crossing** — sized to feed 264 GB/s at a 925 MHz compute
  clock, so reducing the compute clock below DPM2 throttles effective
  bandwidth for L2-miss-heavy kernels (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError
from repro.gpu.architecture import GpuArchitecture, HD7970, PITCAIRN
from repro.gpu.clocks import ClockDomainModel
from repro.gpu.dvfs import HD7970_DVFS_TABLE
from repro.memory.gddr5 import Gddr5Timing, HD7970_GDDR5_TIMING
from repro.memory.power import MemoryPowerModel
from repro.power.gpu_power import GpuPowerModel
from repro.units import MHZ


@dataclass(frozen=True)
class PlatformCalibration:
    """A complete set of substrate constants."""

    arch: GpuArchitecture
    gddr5_timing: Gddr5Timing
    #: compute clock at which the L2->MC crossing just feeds peak DRAM BW
    crossing_saturating_f_cu: float
    #: effective switched capacitance per CU (F)
    cu_capacitance: float
    #: per-CU leakage at nominal voltage (W)
    cu_leakage_nominal: float
    #: uncore effective capacitance (F)
    uncore_capacitance: float
    #: uncore leakage at nominal voltage (W)
    uncore_leakage_nominal: float
    #: voltage the leakage constants are quoted at (V)
    v_nominal: float
    #: DRAM background power: frequency-independent part (W)
    mem_background_idle: float
    #: DRAM background power: frequency-proportional part at max (W)
    mem_background_slope: float
    #: PHY/PLL power: frequency-independent part (W)
    mem_pll_phy_idle: float
    #: PHY/PLL power: frequency-proportional part at max (W)
    mem_pll_phy_slope: float
    #: activation/pre-charge energy per 64 B burst (J)
    mem_activate_energy: float
    #: read/write energy per byte at max bus frequency (J/B)
    mem_rw_energy_per_byte: float
    #: read/write energy penalty at min bus frequency (fraction)
    mem_rw_low_freq_penalty: float
    #: termination energy per byte (J/B)
    mem_termination_energy_per_byte: float
    #: constant rest-of-card power (W)
    other_power: float
    #: enable memory bus voltage scaling (the Section 7.2 what-if; the
    #: paper's platform and the default model keep the bus voltage fixed)
    memory_voltage_scaling: bool = False

    def __post_init__(self) -> None:
        if self.crossing_saturating_f_cu <= 0:
            raise CalibrationError("crossing_saturating_f_cu must be positive")

    def gpu_power_model(self) -> GpuPowerModel:
        """Build the GPU chip power model from these constants."""
        return GpuPowerModel(
            dvfs=self.arch.dvfs_table,
            cu_capacitance=self.cu_capacitance,
            cu_leakage_nominal=self.cu_leakage_nominal,
            uncore_capacitance=self.uncore_capacitance,
            uncore_leakage_nominal=self.uncore_leakage_nominal,
            v_nominal=self.v_nominal,
        )

    def memory_power_model(self) -> MemoryPowerModel:
        """Build the GDDR5 + PHY power model from these constants."""
        return MemoryPowerModel(
            f_mem_max=max(self.arch.memory_bus_frequencies),
            background_idle=self.mem_background_idle,
            background_slope=self.mem_background_slope,
            pll_phy_idle=self.mem_pll_phy_idle,
            pll_phy_slope=self.mem_pll_phy_slope,
            activate_energy=self.mem_activate_energy,
            read_write_energy_per_byte=self.mem_rw_energy_per_byte,
            read_write_low_freq_penalty=self.mem_rw_low_freq_penalty,
            termination_energy_per_byte=self.mem_termination_energy_per_byte,
            burst_bytes=self.gddr5_timing.burst_bytes,
            voltage_scaling=self.memory_voltage_scaling,
        )

    def clock_domain_model(self) -> ClockDomainModel:
        """Build the L2 -> MC crossing model from these constants."""
        return ClockDomainModel.calibrated_for(
            self.arch, saturating_f_cu=self.crossing_saturating_f_cu
        )


def default_calibration() -> PlatformCalibration:
    """The calibration used for all paper-reproduction experiments."""
    return PlatformCalibration(
        arch=HD7970,
        gddr5_timing=HD7970_GDDR5_TIMING,
        crossing_saturating_f_cu=925 * MHZ,
        cu_capacitance=2.5e-9,
        cu_leakage_nominal=0.45,
        uncore_capacitance=1.4e-8,
        uncore_leakage_nominal=3.5,
        v_nominal=1.19,
        mem_background_idle=3.0,
        mem_background_slope=12.0,
        mem_pll_phy_idle=2.0,
        mem_pll_phy_slope=14.0,
        mem_activate_energy=1.5e-9,
        mem_rw_energy_per_byte=40.0e-12,
        mem_rw_low_freq_penalty=0.15,
        mem_termination_energy_per_byte=30.0e-12,
        other_power=14.0,
    )


def pitcairn_calibration() -> PlatformCalibration:
    """Calibration for the Pitcairn-class portability platform.

    Per-CU constants carry over (same GCN compute unit); memory-subsystem
    power scales with the channel count (4 of the HD7970's 6 controllers)
    and the uncore shrinks with the smaller L2 and fabric.
    """
    base = default_calibration()
    channel_scale = 4.0 / 6.0
    return PlatformCalibration(
        arch=PITCAIRN,
        gddr5_timing=base.gddr5_timing,
        crossing_saturating_f_cu=base.crossing_saturating_f_cu,
        cu_capacitance=base.cu_capacitance,
        cu_leakage_nominal=base.cu_leakage_nominal,
        uncore_capacitance=base.uncore_capacitance * 0.75,
        uncore_leakage_nominal=base.uncore_leakage_nominal * 0.75,
        v_nominal=base.v_nominal,
        mem_background_idle=base.mem_background_idle * channel_scale,
        mem_background_slope=base.mem_background_slope * channel_scale,
        mem_pll_phy_idle=base.mem_pll_phy_idle * channel_scale,
        mem_pll_phy_slope=base.mem_pll_phy_slope * channel_scale,
        mem_activate_energy=base.mem_activate_energy,
        mem_rw_energy_per_byte=base.mem_rw_energy_per_byte,
        mem_rw_low_freq_penalty=base.mem_rw_low_freq_penalty,
        mem_termination_energy_per_byte=base.mem_termination_energy_per_byte,
        other_power=base.other_power * 0.8,
    )
