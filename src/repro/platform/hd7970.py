"""The hardware-platform facade.

Everything above the substrate — sensitivity measurement, the Harmonia
controller, the oracle, the benchmarks — interacts with the simulated test
bed exclusively through :class:`HardwarePlatform`:

    result = platform.run_kernel(spec, config)

which is the software-visible contract a real rig offers (launch a kernel
at a configuration; read back time, counters, and DAQ power). An optional
run-to-run noise term models the measurement variance the paper averages
away by running each application multiple times (Section 6).
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.memory.controller import MemoryControllerModel
from repro.perf.batch import BatchRunResult
from repro.perf.kernelspec import KernelSpec
from repro.perf.model import PerformanceModel
from repro.perf.result import KernelRunResult
from repro.platform.calibration import (PlatformCalibration, default_calibration, pitcairn_calibration)
from repro.platform.sweepcache import SweepCache, shared_cache
from repro.power.board import BoardPowerModel


class HardwarePlatform:
    """A simulated HD7970 card: performance + power + measurement."""

    def __init__(self, calibration: Optional[PlatformCalibration] = None,
                 noise_std_fraction: float = 0.0, seed: int = 0):
        """
        Args:
            calibration: substrate constants; defaults to
                :func:`~repro.platform.calibration.default_calibration`.
            noise_std_fraction: run-to-run execution-time noise as a
                fraction of the launch time (0 disables noise).
            seed: RNG seed for reproducible noise.
        """
        self._cal = calibration or default_calibration()
        arch = self._cal.arch
        self._space = ConfigSpace(arch)
        controller = MemoryControllerModel(arch=arch, timing=self._cal.gddr5_timing)
        self._perf = PerformanceModel(
            arch=arch,
            controller=controller,
            clock_domains=self._cal.clock_domain_model(),
        )
        self._board = BoardPowerModel(
            gpu=self._cal.gpu_power_model(),
            memory=self._cal.memory_power_model(),
            other_power=self._cal.other_power,
        )
        if noise_std_fraction < 0:
            raise ValueError("noise_std_fraction must be non-negative")
        self._noise = noise_std_fraction
        self._rng = np.random.default_rng(seed)

    # --- accessors ------------------------------------------------------------

    @property
    def calibration(self) -> PlatformCalibration:
        """The substrate constants in use."""
        return self._cal

    @property
    def config_space(self) -> ConfigSpace:
        """The ~450-point hardware configuration grid."""
        return self._space

    @property
    def performance_model(self) -> PerformanceModel:
        """The underlying analytical performance model."""
        return self._perf

    @property
    def board_power_model(self) -> BoardPowerModel:
        """The underlying board power model."""
        return self._board

    @property
    def noise_std_fraction(self) -> float:
        """Run-to-run execution-time noise fraction (0 = deterministic)."""
        return self._noise

    @property
    def is_deterministic(self) -> bool:
        """True when launches are noise-free (batch path available)."""
        return self._noise == 0

    def baseline_config(self) -> HardwareConfig:
        """The shipping PowerTune operating point.

        Section 7: "Due to the consistent availability of thermal headroom,
        the baseline power management always runs at the boost frequency of
        1 GHz for all applications" — with all CUs and maximum memory bus.
        """
        return self._space.max_config()

    # --- main entry ------------------------------------------------------------

    def run_kernel(self, spec: KernelSpec, config: HardwareConfig) -> KernelRunResult:
        """Launch ``spec`` at ``config`` and measure it.

        Raises:
            ConfigurationError: if ``config`` is off the platform grid.
        """
        self._space.validate(config)
        output = self._perf.run(spec, config)

        time = output.time
        if self._noise > 0:
            time *= max(0.05, 1.0 + float(self._rng.normal(0.0, self._noise)))

        power = self._board.sample(
            config=config,
            counters=output.counters,
            achieved_bandwidth=output.achieved_bandwidth,
        )
        return KernelRunResult(
            kernel_name=spec.name,
            config=config,
            time=time,
            breakdown=output.breakdown,
            counters=output.counters,
            power=power,
            achieved_bandwidth=output.achieved_bandwidth,
            occupancy=output.occupancy.occupancy,
            bandwidth_limit=output.bandwidth_limit,
        )

    # --- batched entry ----------------------------------------------------------

    def run_kernel_batch(
        self,
        spec: KernelSpec,
        configs: Optional[Sequence[HardwareConfig]] = None,
    ) -> BatchRunResult:
        """Launch ``spec`` at many configurations in one vectorized pass.

        Equivalent to calling :meth:`run_kernel` once per configuration on
        a noise-free platform, but evaluated as NumPy array expressions
        over the configuration axis — one model evaluation for the whole
        grid instead of ~450 Python round trips.

        Args:
            spec: the kernel to evaluate.
            configs: configurations to evaluate, in order; defaults to the
                platform's full configuration grid.

        Raises:
            ConfigurationError: if a configuration is off the platform grid,
                or if the platform has measurement noise enabled — the
                batch path is deterministic by contract (each scalar launch
                draws a fresh noise sample from the platform RNG, which a
                vectorized pass cannot reproduce; see docs/performance.md).
        """
        if self._noise > 0:
            raise ConfigurationError(
                "run_kernel_batch requires a noise-free platform "
                f"(noise_std_fraction={self._noise}); use run_kernel for "
                "noisy measurements"
            )
        if configs is None:
            configs = tuple(self._space)
        else:
            configs = tuple(configs)
            for config in configs:
                self._space.validate(config)

        model = self._perf.run_batch(spec, configs)
        n_cu = np.array([c.n_cu for c in configs], dtype=np.float64)
        f_cu = np.array([c.f_cu for c in configs], dtype=np.float64)
        f_mem = np.array([c.f_mem for c in configs], dtype=np.float64)
        gpu_watts, mem_watts = self._board.sample_batch(
            n_cu=n_cu,
            f_cu=f_cu,
            f_mem=f_mem,
            counters=model.counters,
            achieved_bandwidth=model.achieved_bandwidth,
        )
        return BatchRunResult(
            kernel_name=spec.name,
            configs=configs,
            model=model,
            gpu_power=gpu_watts,
            memory_power=mem_watts,
            other_power=self._board.other_power,
        )

    def sweep_cache_key(self, spec: KernelSpec) -> Hashable:
        """The shared-cache key of this platform's full-grid sweep of
        ``spec``: calibration, kernel and grid axes, all by value."""
        return (
            self._cal,
            spec,
            (
                self._space.cu_counts,
                self._space.compute_frequencies,
                self._space.memory_frequencies,
            ),
        )

    def grid_sweep(
        self, spec: KernelSpec, cache: Optional[SweepCache] = None
    ) -> BatchRunResult:
        """Full-grid batch evaluation of ``spec`` through the sweep cache.

        All whole-grid consumers (oracle, sensitivity measurement,
        characterization, analysis sweeps) go through this entry so one
        kernel's 450-point surface is computed once per process and shared.

        Args:
            spec: the kernel to evaluate.
            cache: the cache to consult; defaults to the process-wide
                :func:`~repro.platform.sweepcache.shared_cache`.

        Raises:
            ConfigurationError: if the platform has noise enabled (noisy
                surfaces must not be cached — they would freeze one noise
                realization; see :meth:`run_kernel_batch`).
        """
        if cache is None:
            cache = shared_cache()
        return cache.get_or_compute(
            self.sweep_cache_key(spec),
            lambda: self.run_kernel_batch(spec),
        )


def make_hd7970_platform(noise_std_fraction: float = 0.0,
                         seed: int = 0,
                         memory_voltage_scaling: bool = False) -> HardwarePlatform:
    """Convenience constructor for the default-calibrated test bed.

    Args:
        noise_std_fraction: run-to-run execution-time noise fraction.
        seed: RNG seed for the noise.
        memory_voltage_scaling: enable the Section 7.2 what-if — scale the
            memory bus voltage with its frequency (the paper's platform
            could not; enabling it makes memory-side savings larger).
    """
    calibration = default_calibration()
    if memory_voltage_scaling:
        calibration = dataclasses.replace(
            calibration, memory_voltage_scaling=True
        )
    return HardwarePlatform(
        calibration=calibration,
        noise_std_fraction=noise_std_fraction,
        seed=seed,
    )


def make_pitcairn_platform(noise_std_fraction: float = 0.0,
                           seed: int = 0) -> HardwarePlatform:
    """The Pitcairn-class portability test bed (Section 4.3's claim).

    A smaller GCN sibling — 20 CUs, four GDDR5 channels, 154 GB/s peak —
    on which the full Section 4 pipeline (measure, train, bin) and the
    Harmonia controller run unchanged.
    """
    return HardwarePlatform(
        calibration=pitcairn_calibration(),
        noise_std_fraction=noise_std_fraction,
        seed=seed,
    )
