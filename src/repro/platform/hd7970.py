"""The hardware-platform facade.

Everything above the substrate — sensitivity measurement, the Harmonia
controller, the oracle, the benchmarks — interacts with the simulated test
bed exclusively through :class:`HardwarePlatform`:

    result = platform.run_kernel(spec, config)

which is the software-visible contract a real rig offers (launch a kernel
at a configuration; read back time, counters, and DAQ power). An optional
run-to-run noise term models the measurement variance the paper averages
away by running each application multiple times (Section 6). Noise is
**launch-keyed** (:mod:`repro.platform.noise`): a launch's multiplier is a
pure function of ``(seed, kernel spec, iteration, config)``, so noisy
evaluation is order-independent, batchable, and identical between the
scalar and vectorized paths.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.memory.controller import MemoryControllerModel
from repro.perf.batch import BatchRunResult
from repro.perf.kernelspec import KernelSpec
from repro.perf.model import PerformanceModel
from repro.perf.result import KernelRunResult
from repro.platform.calibration import (PlatformCalibration, default_calibration, pitcairn_calibration)
from repro.platform.noise import NOISE_FLOOR, LaunchKeyedNoise
from repro.platform.sweepcache import SweepCache, shared_cache
from repro.power.board import BoardPowerModel


class HardwarePlatform:
    """A simulated HD7970 card: performance + power + measurement."""

    def __init__(self, calibration: Optional[PlatformCalibration] = None,
                 noise_std_fraction: float = 0.0, seed: int = 0,
                 telemetry=None):
        """
        Args:
            calibration: substrate constants; defaults to
                :func:`~repro.platform.calibration.default_calibration`.
            noise_std_fraction: run-to-run execution-time noise as a
                fraction of the launch time (0 disables noise). Draws are
                launch-keyed: the same ``(seed, spec, iteration, config)``
                always yields the same multiplier.
            seed: key seed for the launch-keyed noise.
            telemetry: telemetry handle receiving the
                ``noise_floor_clips_total`` counter (disabled null handle
                by default).
        """
        self._cal = calibration or default_calibration()
        arch = self._cal.arch
        self._space = ConfigSpace(arch)
        controller = MemoryControllerModel(arch=arch, timing=self._cal.gddr5_timing)
        self._perf = PerformanceModel(
            arch=arch,
            controller=controller,
            clock_domains=self._cal.clock_domain_model(),
        )
        self._board = BoardPowerModel(
            gpu=self._cal.gpu_power_model(),
            memory=self._cal.memory_power_model(),
            other_power=self._cal.other_power,
        )
        if noise_std_fraction < 0:
            raise ValueError("noise_std_fraction must be non-negative")
        self._noise = noise_std_fraction
        self._seed = seed
        self._noise_model: Optional[LaunchKeyedNoise] = (
            LaunchKeyedNoise(noise_std_fraction, seed, len(self._space))
            if noise_std_fraction > 0 else None
        )
        # Imported here, not at module top: the telemetry package's
        # __init__ imports the runtime, which imports this module.
        from repro.telemetry.handle import coalesce
        self._telemetry = coalesce(telemetry)
        self._noise_clips = 0
        self._grid_index: Optional[dict] = None
        # Per-spec surface memo for the launch fast path: keyed by the
        # (cheaply hashable) KernelSpec alone, since calibration and grid
        # are fixed per platform instance. Entries are deterministic, so
        # a memoized reference can never go stale. Population is
        # double-checked under the lock so concurrent launch threads
        # produce exactly one grid_sweep (and one sweep-cache lookup)
        # per spec — keeping cache counters scheduling-independent.
        self._launch_surfaces: dict = {}
        self._launch_surfaces_lock = threading.Lock()

    # --- accessors ------------------------------------------------------------

    @property
    def calibration(self) -> PlatformCalibration:
        """The substrate constants in use."""
        return self._cal

    @property
    def config_space(self) -> ConfigSpace:
        """The ~450-point hardware configuration grid."""
        return self._space

    @property
    def performance_model(self) -> PerformanceModel:
        """The underlying analytical performance model."""
        return self._perf

    @property
    def board_power_model(self) -> BoardPowerModel:
        """The underlying board power model."""
        return self._board

    @property
    def noise_std_fraction(self) -> float:
        """Run-to-run execution-time noise fraction (0 = deterministic)."""
        return self._noise

    @property
    def noise_seed(self) -> int:
        """The seed keying the launch-keyed noise model."""
        return self._seed

    @property
    def noise_model(self) -> Optional[LaunchKeyedNoise]:
        """The launch-keyed noise model (None on a noise-free platform)."""
        return self._noise_model

    @property
    def noise_clip_count(self) -> int:
        """Launches whose noise draw hit the :data:`NOISE_FLOOR` clamp.

        The clamp (``max(0.05, 1 + draw)``) keeps launch times positive
        under heavy noise but truncates the fast tail of the distribution;
        this counter (and the ``noise_floor_clips_total`` telemetry
        counter) makes the truncation observable instead of silent.
        """
        return self._noise_clips

    @property
    def is_deterministic(self) -> bool:
        """True when launches are noise-free.

        Both paths work either way — with launch-keyed noise the batch
        path serves noisy platforms too — but noise-free platforms skip
        the draw entirely.
        """
        return self._noise == 0

    def _record_clips(self, spec: KernelSpec, count: int) -> None:
        """Account noise draws clipped at the floor (see noise_clip_count)."""
        if count <= 0:
            return
        self._noise_clips += count
        telemetry = self._telemetry
        if not telemetry.enabled:
            # Platforms are often built without telemetry; under a
            # traced run the ambient span's handle still collects the
            # clip counter, so aggregation stays exact under --jobs N.
            from repro.telemetry.spans import ambient_telemetry
            telemetry = ambient_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter(
                "noise_floor_clips_total",
                "noise draws clipped at the multiplier floor",
            ).inc(count, kernel=spec.name)

    def baseline_config(self) -> HardwareConfig:
        """The shipping PowerTune operating point.

        Section 7: "Due to the consistent availability of thermal headroom,
        the baseline power management always runs at the boost frequency of
        1 GHz for all applications" — with all CUs and maximum memory bus.
        """
        return self._space.max_config()

    # --- main entry ------------------------------------------------------------

    def run_kernel(self, spec: KernelSpec, config: HardwareConfig,
                   iteration: int = 0) -> KernelRunResult:
        """Launch ``spec`` at ``config`` and measure it.

        Args:
            spec: the kernel to launch.
            config: the hardware configuration to launch at.
            iteration: the application iteration of this launch — a key
                component of the noise draw, so repeated launches of the
                same kernel across iterations see independent noise while
                the *same* launch always sees the same multiplier. Ignored
                on a noise-free platform.

        Raises:
            ConfigurationError: if ``config`` is off the platform grid.
        """
        self._space.validate(config)
        output = self._perf.run(spec, config)

        time = output.time
        if self._noise > 0:
            multiplier, clipped = self._noise_model.multiplier_at(
                spec, iteration, self._space.index_of(config)
            )
            time *= multiplier
            if clipped:
                self._record_clips(spec, 1)

        power = self._board.sample(
            config=config,
            counters=output.counters,
            achieved_bandwidth=output.achieved_bandwidth,
        )
        return KernelRunResult(
            kernel_name=spec.name,
            config=config,
            time=time,
            breakdown=output.breakdown,
            counters=output.counters,
            power=power,
            achieved_bandwidth=output.achieved_bandwidth,
            occupancy=output.occupancy.occupancy,
            bandwidth_limit=output.bandwidth_limit,
        )

    # --- batched entry ----------------------------------------------------------

    def run_kernel_batch(
        self,
        spec: KernelSpec,
        configs: Optional[Sequence[HardwareConfig]] = None,
        iteration: int = 0,
    ) -> BatchRunResult:
        """Launch ``spec`` at many configurations in one vectorized pass.

        Equivalent to calling :meth:`run_kernel` once per configuration,
        but evaluated as NumPy array expressions over the configuration
        axis — one model evaluation for the whole grid instead of ~450
        Python round trips. On a noisy platform the deterministic surface
        is evaluated once and the launch-keyed noise is applied as one
        vectorized draw over the configuration axis; each element is
        bitwise identical to the corresponding scalar launch.

        Args:
            spec: the kernel to evaluate.
            configs: configurations to evaluate, in order; defaults to the
                platform's full configuration grid.
            iteration: the application iteration keying the noise draws
                (ignored on a noise-free platform).

        Raises:
            ConfigurationError: if a configuration is off the platform grid.
        """
        batch = self._run_batch_clean(spec, configs)
        if self._noise > 0:
            batch = self._perturb(batch, spec, iteration)
        return batch

    def _run_batch_clean(
        self,
        spec: KernelSpec,
        configs: Optional[Sequence[HardwareConfig]] = None,
    ) -> BatchRunResult:
        """The deterministic (noise-free) batch surface."""
        if configs is None:
            configs = tuple(self._space)
        else:
            configs = tuple(configs)
            for config in configs:
                self._space.validate(config)

        model = self._perf.run_batch(spec, configs)
        n_cu = np.array([c.n_cu for c in configs], dtype=np.float64)
        f_cu = np.array([c.f_cu for c in configs], dtype=np.float64)
        f_mem = np.array([c.f_mem for c in configs], dtype=np.float64)
        gpu_watts, mem_watts = self._board.sample_batch(
            n_cu=n_cu,
            f_cu=f_cu,
            f_mem=f_mem,
            counters=model.counters,
            achieved_bandwidth=model.achieved_bandwidth,
        )
        return BatchRunResult(
            kernel_name=spec.name,
            configs=configs,
            model=model,
            gpu_power=gpu_watts,
            memory_power=mem_watts,
            other_power=self._board.other_power,
        )

    def _perturb(self, batch: BatchRunResult, spec: KernelSpec,
                 iteration: int) -> BatchRunResult:
        """Apply the launch-keyed noise to a clean batch surface."""
        multipliers, clipped = self._noise_model.multipliers_for(
            spec, iteration
        )
        if self._grid_index is None:
            self._grid_index = {c: i for i, c in enumerate(self._space)}
        lookup = self._grid_index
        indices = np.array(
            [lookup[c] for c in batch.configs], dtype=np.intp
        )
        self._record_clips(spec, int(np.count_nonzero(clipped[indices])))
        return batch.with_time_multipliers(multipliers[indices])

    def launch(self, spec: KernelSpec, config: HardwareConfig,
               iteration: int = 0,
               cache: Optional[SweepCache] = None) -> KernelRunResult:
        """Launch ``spec`` at ``config``, served from the cached grid
        surface when the platform is deterministic.

        Same observable contract as :meth:`run_kernel` — the batch and
        scalar paths are element-exact — but repeated launches of the
        same kernel (the kernel-boundary execution loop re-launches every
        spec each iteration) index one shared
        :meth:`grid_sweep` surface instead of re-running the model, and
        that surface comes from the two-tier sweep cache, so whole
        application runs are store-served across processes. Noisy
        platforms take the scalar path: a single launch needs one keyed
        draw, not a whole-grid perturbation.

        Args:
            spec: the kernel to launch.
            config: the hardware configuration to launch at.
            iteration: the application iteration of this launch (noise
                key; ignored on a noise-free platform).
            cache: the sweep cache to serve from; defaults to the
                process-wide shared cache.

        Raises:
            ConfigurationError: if ``config`` is off the platform grid.
        """
        if self._noise > 0:
            return self.run_kernel(spec, config, iteration=iteration)
        self._space.validate(config)
        if cache is not None:
            return self.grid_sweep(spec, cache=cache).result_at_config(config)
        return self.launch_surface(spec).result_at_config(config)

    def launch_surface(self, spec: KernelSpec) -> BatchRunResult:
        """The memoized deterministic launch surface of ``spec``.

        The clean full-grid surface that :meth:`launch` indexes on a
        deterministic platform, exposed for the batched session engine
        (:mod:`repro.runtime.session`): per-index results are the exact
        memoized objects scalar launches return, so serving lanes from
        this surface is identity-equal — not merely value-equal — to the
        scalar path. On a noisy platform this is the *clean* base
        surface; per-launch noise is applied by
        :meth:`noisy_result_from` (the same keyed draw
        :meth:`run_kernel` uses).

        Hot path: thousands of launches per application run. Memoized
        per (cheaply hashable) spec so repeated launches skip re-hashing
        the full (calibration, spec, axes) cache key; population is
        double-checked under a lock so concurrent callers produce
        exactly one sweep-cache lookup per spec.
        """
        surface = self._launch_surfaces.get(spec)
        if surface is None:
            with self._launch_surfaces_lock:
                surface = self._launch_surfaces.get(spec)
                if surface is None:
                    surface = self._clean_sweep(spec)
                    self._launch_surfaces[spec] = surface
        return surface

    def grid_index(self, config: HardwareConfig) -> int:
        """Position of ``config`` in grid iteration order (memoized).

        Same value as ``config_space.index_of`` served from a dict, for
        per-launch hot paths.

        Raises:
            ConfigurationError: if ``config`` is off the platform grid.
        """
        if self._grid_index is None:
            self._grid_index = {c: i for i, c in enumerate(self._space)}
        try:
            return self._grid_index[config]
        except KeyError:
            self._space.validate(config)  # raises with a precise message
            raise

    def noise_draws(self, spec: KernelSpec, iteration: int):
        """The full-grid ``(multipliers, clipped)`` draw vectors of one
        ``(spec, iteration)`` — read-only, memoized by the noise model.

        Exposed so the batched session engine can fetch one platform's
        draw stream once per lockstep step and index it per lane,
        instead of paying the memo lookup on every launch.

        Raises:
            ConfigurationError: on a noise-free platform (there is no
                draw stream to expose).
        """
        if self._noise <= 0:
            raise ConfigurationError("platform has no noise model")
        return self._noise_model.multipliers_for(spec, iteration)

    def noisy_result_from(self, base: KernelRunResult, spec: KernelSpec,
                          iteration: int, index: Optional[int] = None,
                          draws=None) -> KernelRunResult:
        """Apply the launch-keyed noise draw to one clean launch result.

        The batched session engine's per-launch noisy path: the same
        multiplier, floor-clip accounting and result values as
        :meth:`run_kernel` at this ``(spec, iteration, config)``, but
        starting from the memoized clean surface element instead of a
        fresh scalar model evaluation (the two are element-exact).

        Args:
            base: the clean surface element to perturb.
            spec: the launched kernel.
            iteration: the application iteration keying the draw.
            index: ``base``'s grid index, when the caller already knows
                it (skips the config-to-index lookup).
            draws: the ``(multipliers, clipped)`` vectors from
                :meth:`noise_draws`, when the caller batches launches of
                one ``(spec, iteration)`` (skips the memo lookup).
        """
        if index is None:
            index = self.grid_index(base.config)
        if draws is None:
            draws = self._noise_model.multipliers_for(spec, iteration)
        multipliers, clipped = draws
        if clipped[index]:
            self._record_clips(spec, 1)
        # Hot path: the frozen-dataclass __init__ pays one
        # ``object.__setattr__`` per field; cloning the instance dict and
        # overwriting ``time`` builds the same value-equal result at a
        # third of the cost.
        noisy = KernelRunResult.__new__(KernelRunResult)
        state = noisy.__dict__
        state.update(base.__dict__)
        state["time"] = base.time * float(multipliers[index])
        return noisy

    def sweep_cache_key(self, spec: KernelSpec) -> Hashable:
        """The shared-cache key of this platform's full-grid sweep of
        ``spec``: calibration, kernel and grid axes, all by value."""
        return (
            self._cal,
            spec,
            (
                self._space.cu_counts,
                self._space.compute_frequencies,
                self._space.memory_frequencies,
            ),
        )

    def grid_sweep(
        self, spec: KernelSpec, cache: Optional[SweepCache] = None,
        iteration: int = 0,
    ) -> BatchRunResult:
        """Full-grid batch evaluation of ``spec`` through the sweep cache.

        All whole-grid consumers (oracle, sensitivity measurement,
        characterization, analysis sweeps) go through this entry so one
        kernel's 450-point surface is computed once per process and shared.

        Only the *deterministic* surface is ever cached; on a noisy
        platform the launch-keyed noise is applied after the cache lookup
        as a vectorized draw (cache-then-perturb), so noisy consumers get
        both the cache's amortization and fresh, correctly keyed noise —
        no frozen realization can be served.

        Args:
            spec: the kernel to evaluate.
            cache: the cache to consult; defaults to the process-wide
                :func:`~repro.platform.sweepcache.shared_cache`.
            iteration: the application iteration keying the noise draws
                (ignored on a noise-free platform).
        """
        batch = self._clean_sweep(spec, cache=cache)
        if self._noise > 0:
            batch = self._perturb(batch, spec, iteration)
        return batch

    def _clean_sweep(self, spec: KernelSpec,
                     cache: Optional[SweepCache] = None) -> BatchRunResult:
        """The cached deterministic full-grid surface of ``spec``."""
        if cache is None:
            cache = shared_cache()

        def compute() -> BatchRunResult:
            # Only cache misses pay the full-grid evaluation; span it so
            # a traced run shows exactly which kernels were recomputed
            # and where that time went, even when this platform carries
            # no telemetry handle of its own.
            telemetry = self._telemetry
            if not telemetry.enabled:
                from repro.telemetry.spans import ambient_telemetry
                telemetry = ambient_telemetry()
            with telemetry.span("batch_sweep.compute", kernel=spec.name):
                return self._run_batch_clean(spec)

        return cache.get_or_compute(self.sweep_cache_key(spec), compute)


def make_hd7970_platform(noise_std_fraction: float = 0.0,
                         seed: int = 0,
                         memory_voltage_scaling: bool = False,
                         telemetry=None) -> HardwarePlatform:
    """Convenience constructor for the default-calibrated test bed.

    Args:
        noise_std_fraction: run-to-run execution-time noise fraction.
        seed: key seed for the launch-keyed noise.
        memory_voltage_scaling: enable the Section 7.2 what-if — scale the
            memory bus voltage with its frequency (the paper's platform
            could not; enabling it makes memory-side savings larger).
        telemetry: optional telemetry handle (noise-clip counter).
    """
    calibration = default_calibration()
    if memory_voltage_scaling:
        calibration = dataclasses.replace(
            calibration, memory_voltage_scaling=True
        )
    return HardwarePlatform(
        calibration=calibration,
        noise_std_fraction=noise_std_fraction,
        seed=seed,
        telemetry=telemetry,
    )


def make_pitcairn_platform(noise_std_fraction: float = 0.0,
                           seed: int = 0) -> HardwarePlatform:
    """The Pitcairn-class portability test bed (Section 4.3's claim).

    A smaller GCN sibling — 20 CUs, four GDDR5 channels, 154 GB/s peak —
    on which the full Section 4 pipeline (measure, train, bin) and the
    Harmonia controller run unchanged.
    """
    return HardwarePlatform(
        calibration=pitcairn_calibration(),
        noise_std_fraction=noise_std_fraction,
        seed=seed,
    )
