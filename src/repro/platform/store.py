"""Disk-backed, content-addressed store of deterministic sweep surfaces.

The in-memory sweep cache (:mod:`repro.platform.sweepcache`) amortizes
whole-grid surfaces *within* one process; this store amortizes them
*across* processes — ``reproduce``, ``evaluate``, each benchmark and each
CI shard warm-start from the surfaces the previous invocation computed.

Keys are **content-addressed**: a record's filename is the SHA-256 digest
of a canonical serialization of its key — the frozen
:class:`~repro.platform.calibration.PlatformCalibration`, the frozen
:class:`~repro.perf.kernelspec.KernelSpec`, and the grid axes, walked
field by field with floats rendered via :meth:`float.hex` so the encoding
is exact and stable across processes (Python's builtin ``hash()`` is
salted per process and useless here). Changing *any* calibration
constant, kernel characteristic, or grid axis changes the digest, so
invalidation is by value: stale records are simply never addressed again.

Records are single files holding the surface arrays plus one JSON
metadata header carrying the schema version, the digest (self-check),
and the config-invariant scalars encoded with ``float.hex`` for bitwise
round-trips. New records are written as a **raw npy container** (a
magic prefix, the JSON header, then length-prefixed named ``.npy``
members back to back) — the zip machinery of ``np.savez`` costs more
than the payload for the small records a cold ``reproduce`` writes by
the hundreds. Records written by older builds are ordinary ``.npz``
zip archives; readers sniff the leading magic bytes and serve both
formats, so a restored CI cache or an existing local store stays fully
servable. Both spellings share the ``.npz`` filename, keeping content
addresses and cache keys stable. Properties:

* **atomic** — writes go to a unique tempfile in the store directory and
  are published with :func:`os.replace`, so concurrent ``--jobs`` workers
  and parallel CI shards never observe a torn record; racing writers of
  the same key each publish a complete record and the last one wins
  (contents are deterministic, so the duplicates are identical);
* **self-validating** — corrupted, truncated or foreign-schema records
  are treated as misses: the caller recomputes and rewrites, the store
  never raises out of a read;
* **deterministic only** — exclusively noise-free surfaces are persisted
  (the cache-then-perturb contract keeps noise keyed on read).

Only the store *layout* is defined here; the two-tier lookup policy lives
in :class:`~repro.platform.sweepcache.SweepCache`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import itertools
import json
import os
import threading
import zipfile
from pathlib import Path
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.gpu.config import HardwareConfig
from repro.gpu.occupancy import OccupancyLimits, OccupancyResult
from repro.perf.batch import BatchCounters, BatchModelOutput, BatchRunResult

#: Bump whenever the record layout changes; older records then read as
#: misses and are transparently recomputed and rewritten.
STORE_SCHEMA_VERSION = 1

#: Record kind of full-grid :class:`BatchRunResult` surfaces.
GRID_KIND = "grid"

#: Record kind of experiment-pipeline result-manifest entries (the exact
#: formatted report text of one DAG node; see
#: :class:`repro.runtime.pipeline.ResultManifest`).
RESULT_KIND = "result"

#: Record kind of event-driven validation surfaces (one float64 ``time``
#: array per (calibration, spec, config-sample) key; producer:
#: :mod:`repro.experiments.ext_model_validation`). The record layout is
#: engine-agnostic — the batched and scalar event simulators are bitwise
#: equivalent, so surfaces written by either engine hit for both.
EVENTSIM_KIND = "eventsim"

#: Environment variable overriding the default store directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Minimum member payload worth memory-mapping; smaller members are read
#: eagerly (a map costs a syscall and a page of address space, and tiny
#: members fit in the buffer the zip read already filled).
MMAP_MIN_BYTES = 16 * 1024

#: Leading magic of raw-container records. Zip records written by older
#: builds start with ``PK\x03\x04`` instead; readers sniff and serve
#: both. The trailing newline keeps accidental text-mode corruption
#: detectable, like the npy magic it wraps.
_RAW_MAGIC = b"\x93RPROSTORE\x01\n"

#: Per-process sequence for unique tempfile names on the write path
#: (``<final>.<pid>.<seq>.tmp``): ``itertools.count`` is atomic under
#: the GIL, the pid separates concurrent processes, and uniqueness is
#: all the name must provide — atomicity comes from :func:`os.replace`.
_TMP_SEQ = itertools.count()

#: Row order of the stacked per-config float64 surfaces in a grid record.
_GRID_ARRAYS = (
    "time", "compute_time", "memory_time", "overlap_residue",
    "achieved_bandwidth", "gpu_power", "memory_power",
    "valu_busy", "mem_unit_busy", "mem_unit_stalled",
    "write_unit_stalled", "ic_activity", "cfg_f_cu", "cfg_f_mem",
)

#: Config-invariant scalars kept in the JSON metadata via ``float.hex``.
_GRID_SCALARS = (
    "launch_overhead", "other_power", "valu_utilization", "norm_vgpr",
    "norm_sgpr", "valu_insts_millions", "vfetch_insts_millions",
    "vwrite_insts_millions",
)


def resolve_store_dir(override: Optional[str] = None) -> Path:
    """The store directory: explicit override, else ``$REPRO_CACHE_DIR``,
    else ``~/.cache/repro-harmonia``."""
    if override:
        return Path(override).expanduser()
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-harmonia"


# --- canonical key serialization -------------------------------------------------


def canonical_encode(value: Any) -> str:
    """A stable, exact text rendering of a (nested) sweep-store key.

    Frozen dataclasses render as ``ClassName(field=..., ...)`` in field
    declaration order; floats render via :meth:`float.hex` (every bit
    pattern gets a distinct, platform-independent spelling — ``repr``
    round-trips too, but hex makes the exactness explicit); tuples/lists
    recurse. ``hash()`` is deliberately avoided: it is salted per process
    for strings and would not address the same record twice.

    Raises:
        TypeError: for values that have no canonical form (the key would
            silently collide otherwise).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ", ".join(
            f"{f.name}={canonical_encode(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, bool):  # before int: bool is an int subclass
        return "true" if value else "false"
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (tuple, list)):
        return "(" + ", ".join(canonical_encode(item) for item in value) + ")"
    if value is None:
        return "null"
    raise TypeError(
        f"cannot canonically encode {type(value).__name__!r} in a store key"
    )


#: Digests of recently fingerprinted (hashable) keys. Encoding a key
#: walks the whole calibration dataclass; a ``reproduce`` run addresses
#: a hundred-plus records under a handful of calibrations, so the memo
#: turns all but the first walk per key into a dict hit.
_DIGEST_MEMO: Dict[Any, str] = {}


def content_digest(key: Any) -> str:
    """Hex SHA-256 fingerprint of a key's canonical serialization."""
    try:
        cached = _DIGEST_MEMO.get(key)
    except TypeError:  # unhashable key (e.g. contains a list): no memo
        return hashlib.sha256(
            canonical_encode(key).encode("utf-8")).hexdigest()
    if cached is None:
        cached = hashlib.sha256(
            canonical_encode(key).encode("utf-8")).hexdigest()
        if len(_DIGEST_MEMO) >= 4096:
            _DIGEST_MEMO.clear()
        _DIGEST_MEMO[key] = cached
    return cached


# --- BatchRunResult <-> record ---------------------------------------------------


def batch_to_record(
    batch: BatchRunResult,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Serialize a deterministic grid surface to (arrays, metadata).

    Only the independent surfaces are stored; derived quantities
    (``card_power``, ``energy``, ``ed``/``ed2``) are recomputed by the
    :class:`BatchRunResult` constructor on load with the same float
    operations, so the round trip is bitwise identical.
    """
    counters = batch.counters
    columns = {
        "time": batch.time,
        "compute_time": batch.compute_time,
        "memory_time": batch.memory_time,
        "overlap_residue": batch.overlap_residue,
        "achieved_bandwidth": batch.achieved_bandwidth,
        "gpu_power": batch.gpu_power,
        "memory_power": batch.memory_power,
        "valu_busy": counters.valu_busy,
        "mem_unit_busy": counters.mem_unit_busy,
        "mem_unit_stalled": counters.mem_unit_stalled,
        "write_unit_stalled": counters.write_unit_stalled,
        "ic_activity": counters.ic_activity,
        "cfg_f_cu": np.array([c.f_cu for c in batch.configs],
                             dtype=np.float64),
        "cfg_f_mem": np.array([c.f_mem for c in batch.configs],
                              dtype=np.float64),
    }
    # One stacked 2D array instead of 14 npz members: each member costs
    # a zip entry plus a header parse on load, and record loads are the
    # warm-start hot path. np.stack copies values verbatim, so the
    # round trip stays bitwise.
    arrays: Dict[str, np.ndarray] = {
        "stack": np.stack([columns[name] for name in _GRID_ARRAYS]),
        "cfg_n_cu": np.array([c.n_cu for c in batch.configs], dtype=np.int64),
        "bandwidth_limit": np.array(batch.bandwidth_limit, dtype=str),
    }
    occupancy = batch.occupancy
    meta: Dict[str, Any] = {
        "kernel_name": batch.kernel_name,
        "scalars": {
            "launch_overhead": batch.launch_overhead.hex(),
            "other_power": batch.other_power.hex(),
            "valu_utilization": counters.valu_utilization.hex(),
            "norm_vgpr": counters.norm_vgpr.hex(),
            "norm_sgpr": counters.norm_sgpr.hex(),
            "valu_insts_millions": counters.valu_insts_millions.hex(),
            "vfetch_insts_millions": counters.vfetch_insts_millions.hex(),
            "vwrite_insts_millions": counters.vwrite_insts_millions.hex(),
        },
        "occupancy": {
            "waves_per_simd": occupancy.waves_per_simd,
            "limits": dataclasses.asdict(occupancy.limits),
        },
    }
    return arrays, meta


#: Reconstructed config tuples, keyed by the raw bytes of the config
#: columns. Every grid record of one platform shares the same ~450-point
#: grid, so one reconstruction serves all of a process's record loads.
_CONFIGS_MEMO: Dict[Tuple[bytes, bytes, bytes], Tuple[HardwareConfig, ...]] = {}


def _configs_from_arrays(
    n_cu: np.ndarray, f_cu: np.ndarray, f_mem: np.ndarray
) -> Tuple[HardwareConfig, ...]:
    memo_key = (n_cu.tobytes(), f_cu.tobytes(), f_mem.tobytes())
    configs = _CONFIGS_MEMO.get(memo_key)
    if configs is None:
        configs = tuple(
            HardwareConfig(n_cu=int(n), f_cu=float(f), f_mem=float(m))
            for n, f, m in zip(n_cu, f_cu, f_mem)
        )
        if len(_CONFIGS_MEMO) >= 64:
            _CONFIGS_MEMO.clear()
        _CONFIGS_MEMO[memo_key] = configs
    return configs


def batch_from_record(
    arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
) -> BatchRunResult:
    """Rebuild a :class:`BatchRunResult` from a loaded record.

    Raises:
        Exception: any malformation (missing arrays, length mismatches,
            bad scalar encodings) — the store turns it into a miss.
    """
    stack = arrays["stack"]
    if (stack.ndim != 2 or stack.shape[0] != len(_GRID_ARRAYS)
            or stack.dtype != np.float64):
        raise ValueError("malformed grid stack")
    n = int(stack.shape[1])
    columns = dict(zip(_GRID_ARRAYS, stack))
    if arrays["cfg_n_cu"].shape != (n,) or arrays["bandwidth_limit"].shape != (n,):
        raise ValueError("malformed grid record")

    scalars = {
        name: float.fromhex(meta["scalars"][name]) for name in _GRID_SCALARS
    }
    counters = BatchCounters(
        valu_busy=columns["valu_busy"],
        mem_unit_busy=columns["mem_unit_busy"],
        mem_unit_stalled=columns["mem_unit_stalled"],
        write_unit_stalled=columns["write_unit_stalled"],
        ic_activity=columns["ic_activity"],
        valu_utilization=scalars["valu_utilization"],
        norm_vgpr=scalars["norm_vgpr"],
        norm_sgpr=scalars["norm_sgpr"],
        valu_insts_millions=scalars["valu_insts_millions"],
        vfetch_insts_millions=scalars["vfetch_insts_millions"],
        vwrite_insts_millions=scalars["vwrite_insts_millions"],
    )
    occupancy = OccupancyResult(
        waves_per_simd=int(meta["occupancy"]["waves_per_simd"]),
        limits=OccupancyLimits(
            **{k: int(v) for k, v in meta["occupancy"]["limits"].items()}
        ),
    )
    model = BatchModelOutput(
        compute_time=columns["compute_time"],
        memory_time=columns["memory_time"],
        overlap_residue=columns["overlap_residue"],
        launch_overhead=scalars["launch_overhead"],
        time=columns["time"],
        achieved_bandwidth=columns["achieved_bandwidth"],
        occupancy=occupancy,
        bandwidth_limit=tuple(str(s) for s in arrays["bandwidth_limit"]),
        counters=counters,
    )
    configs = _configs_from_arrays(
        arrays["cfg_n_cu"], columns["cfg_f_cu"], columns["cfg_f_mem"]
    )
    return BatchRunResult(
        kernel_name=str(meta["kernel_name"]),
        configs=configs,
        model=model,
        gpu_power=columns["gpu_power"],
        memory_power=columns["memory_power"],
        other_power=scalars["other_power"],
    )


# --- zero-copy (memory-mapped) record reads --------------------------------------
#
# ``np.load(..., mmap_mode=...)`` silently ignores the mmap request for
# ``.npz`` archives and reads every member eagerly. But ``np.savez``
# writes members uncompressed (``ZIP_STORED``), so each member's ``.npy``
# payload sits contiguously in the archive file and can be mapped
# directly: find the payload through the member's zip *local* header
# (whose name/extra lengths are authoritative — the central directory's
# may differ), parse the npy header there, and hand the remaining bytes
# to :class:`numpy.memmap`. Pages then enter the process lazily from the
# OS page cache, shared across processes, instead of being copied into
# private heap buffers on every load.


def _write_raw_record(buf, meta: Dict[str, Any],
                      arrays: Dict[str, np.ndarray]) -> None:
    """Serialize one record into ``buf`` in the raw container format.

    Layout: ``_RAW_MAGIC``, 8-byte little-endian JSON header length, the
    JSON header, then per member an 8-byte name length, the UTF-8 name,
    and the standard ``.npy`` serialization of the array.
    """
    meta_bytes = json.dumps(meta).encode("utf-8")
    buf.write(_RAW_MAGIC)
    buf.write(len(meta_bytes).to_bytes(8, "little"))
    buf.write(meta_bytes)
    for name, array in arrays.items():
        name_bytes = name.encode("utf-8")
        buf.write(len(name_bytes).to_bytes(8, "little"))
        buf.write(name_bytes)
        np.lib.format.write_array(buf, np.asarray(array),
                                  allow_pickle=False)


def _read_raw_meta(fh) -> Dict[str, Any]:
    """The JSON header of a raw record; ``fh`` sits just past the magic."""
    meta_len = int.from_bytes(_read_exact(fh, 8), "little")
    return json.loads(_read_exact(fh, meta_len))


def _read_exact(fh, count: int) -> bytes:
    data = fh.read(count)
    if len(data) != count:
        raise ValueError("truncated raw record")
    return data


def _iter_raw_members(fh):
    """Yield ``(name, fh)`` pairs with ``fh`` positioned at each member's
    ``.npy`` serialization; the consumer must advance past the payload."""
    while True:
        head = fh.read(8)
        if not head:
            return
        if len(head) != 8:
            raise ValueError("truncated raw record")
        name_len = int.from_bytes(head, "little")
        yield _read_exact(fh, name_len).decode("utf-8"), fh


def _read_raw_record(fh) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Eagerly read one raw record; ``fh`` sits just past the magic."""
    meta = _read_raw_meta(fh)
    arrays: Dict[str, np.ndarray] = {}
    for name, member in _iter_raw_members(fh):
        arrays[name] = np.lib.format.read_array(member, allow_pickle=False)
    return arrays, meta


def _read_raw_record_mmap(
    path, fh
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any], int]:
    """Read a raw record, memory-mapping members worth mapping.

    Same contract as :func:`_read_record_mmap`'s zip path: large members
    become read-only :class:`numpy.memmap` views, small ones are read
    eagerly, and ``mapped`` counts the views served.
    """
    meta = _read_raw_meta(fh)
    arrays: Dict[str, np.ndarray] = {}
    mapped = 0
    for name, member in _iter_raw_members(fh):
        header_at = member.tell()
        version = np.lib.format.read_magic(member)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                member)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                member)
        else:
            raise ValueError(f"unsupported npy format version {version}")
        nbytes = int(dtype.itemsize) * int(np.prod(shape, dtype=np.int64))
        if nbytes >= MMAP_MIN_BYTES and not dtype.hasobject:
            arrays[name] = np.memmap(
                path, dtype=dtype, mode="r", offset=member.tell(),
                shape=shape, order="F" if fortran else "C")
            mapped += 1
            member.seek(nbytes, os.SEEK_CUR)
        else:
            member.seek(header_at)
            arrays[name] = np.lib.format.read_array(member,
                                                    allow_pickle=False)
    return arrays, meta, mapped


def _member_data_offset(raw, info: zipfile.ZipInfo) -> int:
    """File offset of a stored zip member's payload, via its local header."""
    raw.seek(info.header_offset)
    header = raw.read(30)
    if len(header) != 30 or header[:4] != b"PK\x03\x04":
        raise ValueError("malformed zip local header")
    name_len = int.from_bytes(header[26:28], "little")
    extra_len = int.from_bytes(header[28:30], "little")
    return info.header_offset + 30 + name_len + extra_len


def _npy_memmap(path, raw, data_offset: int) -> np.ndarray:
    """Map one embedded ``.npy`` payload read-only, without copying."""
    raw.seek(data_offset)
    version = np.lib.format.read_magic(raw)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
    else:
        raise ValueError(f"unsupported npy format version {version}")
    if dtype.hasobject:
        raise ValueError("object arrays cannot be memory-mapped")
    return np.memmap(path, dtype=dtype, mode="r", offset=raw.tell(),
                     shape=shape, order="F" if fortran else "C")


def _read_record(path) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Eagerly read one record in either container format.

    Sniffs the leading magic: raw-container records are parsed directly,
    anything else is handed to :func:`numpy.load` as a legacy ``.npz``
    zip archive. Raises on any torn, truncated or foreign layout — the
    caller accounts that as a miss.
    """
    with open(path, "rb") as fh:
        if fh.read(len(_RAW_MAGIC)) == _RAW_MAGIC:
            return _read_raw_record(fh)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["__meta__"][()]))
        arrays = {name: data[name] for name in data.files
                  if name != "__meta__"}
    return arrays, meta


def _read_record_mmap(
    path,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any], int]:
    """Read one record, memory-mapping large uncompressed members.

    Returns ``(arrays, meta, mapped)`` where ``mapped`` counts the
    members served as :class:`numpy.memmap` views; small, compressed or
    unmappable members are read eagerly like :func:`numpy.load` would.
    """
    with open(path, "rb") as fh:
        if fh.read(len(_RAW_MAGIC)) == _RAW_MAGIC:
            return _read_raw_record_mmap(path, fh)
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, Any] = {}
    mapped = 0
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            if (name != "__meta__"
                    and info.compress_type == zipfile.ZIP_STORED
                    and info.file_size >= MMAP_MIN_BYTES):
                try:
                    arrays[name] = _npy_memmap(
                        path, raw, _member_data_offset(raw, info)
                    )
                    mapped += 1
                    continue
                except Exception:
                    pass  # this member reads eagerly below
            value = np.lib.format.read_array(
                io.BytesIO(archive.read(info)), allow_pickle=False
            )
            if name == "__meta__":
                meta = json.loads(str(value[()]))
            else:
                arrays[name] = value
    return arrays, meta, mapped


def _materialize_batch(batch: BatchRunResult) -> None:
    """Copy a batch's array surfaces out of mapped file pages into RAM."""
    for name in ("time", "compute_time", "memory_time", "overlap_residue",
                 "achieved_bandwidth", "gpu_power", "memory_power",
                 "card_power", "energy"):
        value = getattr(batch, name)
        if isinstance(value, np.ndarray):
            setattr(batch, name, np.array(value))
    counters = batch.counters
    batch.counters = dataclasses.replace(
        counters,
        valu_busy=np.array(counters.valu_busy),
        mem_unit_busy=np.array(counters.mem_unit_busy),
        mem_unit_stalled=np.array(counters.mem_unit_stalled),
        write_unit_stalled=np.array(counters.write_unit_stalled),
        ic_activity=np.array(counters.ic_activity),
    )


def _attach_mmap_release(batch: BatchRunResult,
                         mapped: List[np.ndarray]) -> None:
    """Give a map-backed batch a ``release_mmap`` copy-on-demote hook.

    The sweep cache invokes the hook when it demotes (evicts) the entry:
    the batch's surfaces are copied into process memory first — callers
    holding the batch keep working on identical values — and the
    underlying maps are then closed so the file handles and address
    space are returned. A close is skipped (left to garbage collection)
    when external views of the map are still alive.
    """
    buffers = [mm._mmap for mm in mapped
               if getattr(mm, "_mmap", None) is not None]

    def release_mmap() -> None:
        _materialize_batch(batch)
        mapped.clear()
        while buffers:
            buffer = buffers.pop()
            try:
                buffer.close()
            except BufferError:
                pass
        batch.release_mmap = lambda: None

    batch.release_mmap = release_mmap


# --- the store -------------------------------------------------------------------


class StoreStats(NamedTuple):
    """Cumulative operation counts of one :class:`SweepStore`."""

    hits: int
    misses: int
    invalid_records: int
    bytes_read: int
    bytes_written: int
    #: records served zero-copy with memory-mapped array members
    mmap_hits: int = 0


class SweepStore:
    """Content-addressed ``.npz`` records under one directory.

    Args:
        root: the store directory (created on first use).
        telemetry: optional telemetry handle; live operations feed the
            ``sweep_store_hits_total`` / ``sweep_store_misses_total``
            counters (labelled by record kind), the ``sweep_store_bytes``
            counter (labelled by transfer direction) and the
            ``sweep_store.load`` / ``sweep_store.save`` profile spans.

    Raises:
        OSError: when the directory cannot be created — the only error
            that escapes; every read/write problem afterwards degrades to
            a miss or a skipped write.
    """

    def __init__(self, root, telemetry=None):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        from repro.telemetry.handle import coalesce
        self._telemetry = coalesce(telemetry)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._invalid = 0
        self._bytes_read = 0
        self._bytes_written = 0
        self._mmap_hits = 0

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    def set_telemetry(self, telemetry) -> None:
        """Attach (or detach, with None) a telemetry handle."""
        from repro.telemetry.handle import coalesce
        self._telemetry = coalesce(telemetry)

    def _tel(self):
        """The handle to record into: own if live, else the ambient one.

        A store constructed without telemetry still participates in a
        traced run (``reproduce --trace``): operations issued under an
        open span fall back to that span's handle, so store spans and
        counters land in the run's tree instead of vanishing.
        """
        telemetry = self._telemetry
        if telemetry.enabled:
            return telemetry
        from repro.telemetry.spans import ambient_telemetry
        return ambient_telemetry()

    def stats(self) -> StoreStats:
        """Cumulative hit/miss/byte counts since construction."""
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                invalid_records=self._invalid,
                bytes_read=self._bytes_read,
                bytes_written=self._bytes_written,
                mmap_hits=self._mmap_hits,
            )

    def path_for(self, kind: str, key: Any) -> Path:
        """The record file a (kind, key) pair addresses."""
        return self._root / f"{kind}-{content_digest((kind, key))}.npz"

    # --- generic records ---------------------------------------------------------

    def save_record(self, kind: str, key: Any,
                    arrays: Dict[str, np.ndarray],
                    meta: Optional[Dict[str, Any]] = None) -> bool:
        """Atomically persist one record; False when the write failed.

        The record lands under its content digest via tempfile +
        :func:`os.replace`, so readers only ever see complete records.
        Write failures (full/read-only disk) are swallowed: the store is
        an accelerator, never a correctness dependency.
        """
        digest = content_digest((kind, key))
        final = self._root / f"{kind}-{digest}.npz"
        record_meta = dict(meta or ())
        record_meta["schema"] = STORE_SCHEMA_VERSION
        record_meta["kind"] = kind
        record_meta["digest"] = digest
        telemetry = self._tel()
        tmp = None
        try:
            with telemetry.span("sweep_store.save", kind=kind):
                buf = io.BytesIO()
                _write_raw_record(buf, record_meta, arrays)
                written = buf.tell()
                tmp = f"{final}.{os.getpid()}.{next(_TMP_SEQ)}.tmp"
                with open(tmp, "wb") as fh:
                    fh.write(buf.getbuffer())
                os.replace(tmp, final)
                tmp = None
        except Exception:
            return False
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        with self._lock:
            self._bytes_written += written
        telemetry.metrics.counter(
            "sweep_store_bytes", "bytes moved through the sweep store",
        ).inc(written, direction="write")
        return True

    def load_record(
        self, kind: str, key: Any
    ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any]]]:
        """Load one record, or None on a miss.

        Missing files, torn/corrupted/truncated records, foreign schema
        versions and digest mismatches all count as misses — the caller
        recomputes and rewrites.
        """
        digest = content_digest((kind, key))
        path = self._root / f"{kind}-{digest}.npz"
        arrays: Optional[Dict[str, np.ndarray]] = None
        meta: Dict[str, Any] = {}
        invalid = False
        size = 0
        telemetry = self._tel()
        try:
            with telemetry.span("sweep_store.load", kind=kind):
                size = os.stat(path).st_size
                arrays, meta = _read_record(path)
                if (meta.get("schema") != STORE_SCHEMA_VERSION
                        or meta.get("kind") != kind
                        or meta.get("digest") != digest):
                    arrays = None
                    raise ValueError("foreign or mismatched record")
        except FileNotFoundError:
            pass
        except Exception:
            invalid = True
        return self._account_load(kind, arrays, meta, invalid, size)

    def _account_load(self, kind, arrays, meta, invalid, size):
        hit = arrays is not None
        with self._lock:
            if hit:
                self._hits += 1
                self._bytes_read += size
            else:
                self._misses += 1
                if invalid:
                    self._invalid += 1
        metrics = self._tel().metrics
        if hit:
            metrics.counter(
                "sweep_store_hits_total", "sweep store records served",
            ).inc(kind=kind)
            metrics.counter(
                "sweep_store_bytes", "bytes moved through the sweep store",
            ).inc(size, direction="read")
            return arrays, meta
        metrics.counter(
            "sweep_store_misses_total", "sweep store lookups not served",
        ).inc(kind=kind)
        return None

    def load_record_mmap(
        self, kind: str, key: Any
    ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any]]]:
        """Load one record with large array members memory-mapped.

        Same contract as :meth:`load_record`, but members big enough to
        be worth it are served as read-only :class:`numpy.memmap` views
        of the record file — zero-copy: the bytes stay in the OS page
        cache and are never duplicated into private buffers. Any
        structural obstacle (compressed members, foreign layout, a
        filesystem that refuses to map) falls back to the eager reader,
        so callers never observe a behavioural difference.
        """
        digest = content_digest((kind, key))
        path = self._root / f"{kind}-{digest}.npz"
        telemetry = self._tel()
        try:
            with telemetry.span("sweep_store.load", kind=kind):
                size = os.stat(path).st_size
                arrays, meta, mapped = _read_record_mmap(path)
                if (meta.get("schema") != STORE_SCHEMA_VERSION
                        or meta.get("kind") != kind
                        or meta.get("digest") != digest):
                    raise ValueError("foreign or mismatched record")
        except FileNotFoundError:
            return self._account_load(kind, None, {}, False, 0)
        except Exception:
            # Eager fallback: anything the zero-copy reader cannot
            # serve (including genuinely invalid records, which the
            # eager path accounts as such).
            return self.load_record(kind, key)
        if mapped:
            with self._lock:
                self._mmap_hits += 1
            telemetry.metrics.counter(
                "sweep_store_mmap_hits_total",
                "sweep store records served zero-copy via mmap",
            ).inc(kind=kind)
        return self._account_load(kind, arrays, meta, False, size)

    def get_or_compute_arrays(
        self, kind: str, key: Any,
        compute: Callable[[], Dict[str, np.ndarray]],
        meta: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, np.ndarray]:
        """Serve a generic array record, computing and persisting on miss."""
        loaded = self.load_record(kind, key)
        if loaded is not None:
            return loaded[0]
        arrays = compute()
        self.save_record(kind, key, arrays, meta=meta)
        return arrays

    # --- grid surfaces -----------------------------------------------------------

    def save_batch(self, key: Any, batch: BatchRunResult) -> bool:
        """Persist one deterministic full-grid surface."""
        arrays, meta = batch_to_record(batch)
        return self.save_record(GRID_KIND, key, arrays, meta=meta)

    def load_batch(self, key: Any,
                   mmap: bool = False) -> Optional[BatchRunResult]:
        """Load one grid surface, or None on any kind of miss.

        Args:
            key: the grid's content-address key.
            mmap: serve the surface arrays as zero-copy memory maps of
                the record file (with eager fallback). The returned
                batch then carries a ``release_mmap`` copy-on-demote
                hook the sweep cache invokes on eviction.
        """
        loaded = (self.load_record_mmap(GRID_KIND, key) if mmap
                  else self.load_record(GRID_KIND, key))
        if loaded is None:
            return None
        try:
            batch = batch_from_record(*loaded)
            mapped = [array for array in loaded[0].values()
                      if isinstance(array, np.memmap)]
            if mapped:
                _attach_mmap_release(batch, mapped)
            return batch
        except Exception:
            # Structurally valid npz, semantically broken record: demote
            # the accounted hit to an invalid-record miss.
            with self._lock:
                self._hits -= 1
                self._misses += 1
                self._invalid += 1
            return None
