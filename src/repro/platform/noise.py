"""Stateless, launch-keyed measurement noise.

The platform used to draw run-to-run noise from one sequential
``np.random.default_rng`` stream, so a launch's multiplier depended on how
many launches happened before it — scalar and batched evaluation could
never agree, noisy surfaces could not be cached, and ``--jobs`` fan-out
reordered the draws. :class:`LaunchKeyedNoise` replaces that stream with a
counter-based derivation: the multiplier of a launch is a pure function of

    (platform seed, kernel spec, iteration, grid index of the config)

via ``np.random.SeedSequence`` -> ``np.random.Philox``. One Philox stream
is keyed per ``(seed, spec, iteration)`` and yields a normal draw for every
grid position in one vectorized call; a scalar launch simply indexes that
vector. The same launch therefore always sees the same multiplier — under
any execution order, interleaving, thread count, or batch/scalar split —
and scalar and batched noise are bitwise identical by construction.

Multipliers are clamped at :data:`NOISE_FLOOR`: a Gaussian draw can push
``1 + draw`` arbitrarily close to (or below) zero, and a non-positive
launch time breaks every downstream metric (energy, ED², performance).
The floor caps the modelled speed-up at 20x, far outside the run-to-run
variance the paper averages away; clips are reported so heavy-noise
studies can see when the tail is being truncated.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from typing import Tuple

import numpy as np

from repro.perf.kernelspec import KernelSpec

#: Lower bound on the noise multiplier: a launch is never reported more
#: than 20x faster than the model time, and never non-positive.
NOISE_FLOOR = 0.05


def spec_entropy(spec: KernelSpec) -> int:
    """A stable 128-bit integer key of a kernel spec's *values*.

    Built from a canonical field-by-field rendering hashed with BLAKE2b,
    so it is reproducible across processes and Python hash randomization
    (unlike ``hash(spec)``), and any changed characteristic — including a
    phase-evolved copy of the same kernel — keys a different noise stream.
    """
    payload = "|".join(
        f"{field.name}={getattr(spec, field.name)!r}"
        for field in dataclasses.fields(spec)
    )
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=16).digest()
    return int.from_bytes(digest, "little")


class LaunchKeyedNoise:
    """Order-independent execution-time noise over a configuration grid.

    Args:
        std_fraction: noise standard deviation as a fraction of the
            launch time (must be positive — a noise-free platform simply
            has no noise model).
        seed: the platform seed, the outermost key component.
        grid_size: number of configurations on the platform grid; each
            ``(seed, spec, iteration)`` stream yields one draw per grid
            position.
        memo_size: how many per-``(spec, iteration)`` multiplier vectors
            to keep (LRU). Memoization is a pure cache — every entry is
            recomputable from the key — so the bound only trades CPU for
            memory.
    """

    def __init__(self, std_fraction: float, seed: int, grid_size: int,
                 memo_size: int = 256):
        if std_fraction <= 0:
            raise ValueError("std_fraction must be positive")
        if grid_size <= 0:
            raise ValueError("grid_size must be positive")
        if memo_size <= 0:
            raise ValueError("memo_size must be positive")
        self._std = std_fraction
        self._seed = seed
        self._grid_size = grid_size
        self._memo_size = memo_size
        self._memo: "OrderedDict[Tuple[KernelSpec, int], Tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def std_fraction(self) -> float:
        """The noise standard deviation (fraction of launch time)."""
        return self._std

    @property
    def seed(self) -> int:
        """The platform seed keying every stream."""
        return self._seed

    @property
    def grid_size(self) -> int:
        """Draws generated per ``(seed, spec, iteration)`` stream."""
        return self._grid_size

    def _derive(self, spec: KernelSpec, iteration: int) -> Tuple[np.ndarray, np.ndarray]:
        sequence = np.random.SeedSequence(
            [self._seed, iteration, spec_entropy(spec)]
        )
        draws = np.random.Generator(np.random.Philox(sequence)).normal(
            0.0, self._std, size=self._grid_size
        )
        raw = 1.0 + draws
        multipliers = np.maximum(NOISE_FLOOR, raw)
        clipped = raw < NOISE_FLOOR
        multipliers.setflags(write=False)
        clipped.setflags(write=False)
        return multipliers, clipped

    def multipliers_for(self, spec: KernelSpec,
                        iteration: int) -> Tuple[np.ndarray, np.ndarray]:
        """All grid positions' multipliers for one ``(spec, iteration)``.

        Returns:
            ``(multipliers, clipped)`` — two read-only arrays of length
            ``grid_size``; ``clipped[i]`` marks draws that hit the
            :data:`NOISE_FLOOR` clamp.

        Raises:
            ValueError: if ``iteration`` is negative (the key must be a
                valid ``SeedSequence`` entropy word).
        """
        if iteration < 0:
            raise ValueError(f"iteration must be non-negative, got {iteration}")
        key = (spec, iteration)
        # Lock-free fast path: ``dict.get`` is atomic under the GIL and
        # entries are immutable once published. Served entries skip the
        # LRU recency update — eviction order becomes approximate, which
        # only matters once the memo overflows (every entry is pure and
        # recomputable), and the hit is a per-launch hot path.
        entry = self._memo.get(key)
        if entry is not None:
            return entry
        with self._lock:
            entry = self._memo.get(key)
            if entry is not None:
                return entry
            entry = self._derive(spec, iteration)
            self._memo[key] = entry
            while len(self._memo) > self._memo_size:
                self._memo.popitem(last=False)
            return entry

    def multiplier_at(self, spec: KernelSpec, iteration: int,
                      grid_index: int) -> Tuple[float, bool]:
        """One launch's ``(multiplier, clipped)`` — the scalar view.

        The value is literally an element of :meth:`multipliers_for`'s
        vector, so scalar and batched noise agree bitwise.
        """
        multipliers, clipped = self.multipliers_for(spec, iteration)
        return float(multipliers[grid_index]), bool(clipped[grid_index])
