"""Harmonia: balancing compute and memory power in high-performance GPUs.

A full reproduction of Paul, Huang, Arora and Yalamanchili's ISCA 2015
paper, built around a calibrated analytical model of the paper's test bed
(an AMD Radeon HD7970 with GDDR5 memory) since the evaluation requires
hardware measurement.

Quick start::

    from repro import (
        make_hd7970_platform, all_applications, train_predictors,
        HarmoniaPolicy, BaselinePolicy, ApplicationRunner,
    )

    platform = make_hd7970_platform()
    apps = all_applications()
    training = train_predictors(platform, apps)
    harmonia = HarmoniaPolicy(platform.config_space,
                              training.compute, training.bandwidth)
    runner = ApplicationRunner(platform)
    result = runner.run(apps[0], harmonia)
    print(result.metrics.ed2, result.metrics.avg_power)

Layer map (bottom-up):

* ``repro.gpu`` / ``repro.memory`` -- the HD7970 machine description and
  GDDR5 subsystem,
* ``repro.perf`` / ``repro.power`` -- analytical performance and power
  models,
* ``repro.platform`` -- the test-bed facade (``run_kernel``),
* ``repro.workloads`` -- the paper's 14 applications / 25 kernels,
* ``repro.sensitivity`` -- Section 4's measurement/training/prediction,
* ``repro.core`` -- Harmonia, the PowerTune baseline, the oracle, variants,
* ``repro.runtime`` / ``repro.analysis`` -- execution, metrics, sweeps,
* ``repro.telemetry`` -- decision events, metrics registry, profiling,
* ``repro.experiments`` -- one module per paper table/figure.
"""

from repro.analysis.evaluation import EvaluationHarness
from repro.core.baseline import BaselinePolicy
from repro.core.harmonia import ControllerStats, HarmoniaPolicy
from repro.core.oracle import OraclePolicy
from repro.core.variants import ComputeDvfsOnlyPolicy, make_cg_only_policy
from repro.gpu.architecture import HD7970, GpuArchitecture
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.perf.kernelspec import KernelSpec
from repro.platform.calibration import PlatformCalibration, default_calibration
from repro.platform.hd7970 import HardwarePlatform, make_hd7970_platform
from repro.runtime.metrics import RunMetrics, ed, ed2, geomean
from repro.runtime.simulator import ApplicationRunner, RunResult
from repro.sensitivity.predictor import (
    PAPER_BANDWIDTH_PREDICTOR,
    PAPER_COMPUTE_PREDICTOR,
    SensitivityPredictor,
    train_predictors,
)
from repro.telemetry import (
    NULL_TELEMETRY,
    JsonlSink,
    MetricsRegistry,
    Profiler,
    Telemetry,
    replay_trace,
)
from repro.workloads.application import Application
from repro.workloads.registry import (
    all_applications,
    application_names,
    get_application,
    get_kernel,
)

__version__ = "1.0.0"

__all__ = [
    "EvaluationHarness",
    "BaselinePolicy",
    "ControllerStats",
    "HarmoniaPolicy",
    "OraclePolicy",
    "ComputeDvfsOnlyPolicy",
    "make_cg_only_policy",
    "HD7970",
    "GpuArchitecture",
    "ConfigSpace",
    "HardwareConfig",
    "KernelSpec",
    "PlatformCalibration",
    "default_calibration",
    "HardwarePlatform",
    "make_hd7970_platform",
    "RunMetrics",
    "ed",
    "ed2",
    "geomean",
    "ApplicationRunner",
    "RunResult",
    "PAPER_BANDWIDTH_PREDICTOR",
    "PAPER_COMPUTE_PREDICTOR",
    "SensitivityPredictor",
    "train_predictors",
    "Telemetry",
    "NULL_TELEMETRY",
    "JsonlSink",
    "MetricsRegistry",
    "Profiler",
    "replay_trace",
    "Application",
    "all_applications",
    "application_names",
    "get_application",
    "get_kernel",
    "__version__",
]
