"""Off-chip GDDR5 memory subsystem model.

* :mod:`repro.memory.gddr5` — device/channel timing and latency,
* :mod:`repro.memory.controller` — controller efficiency and achievable
  bandwidth under memory-level-parallelism limits,
* :mod:`repro.memory.power` — the Section 2.4 power breakdown (background,
  activate/precharge, read-write, termination, PHY/PLL) and its dependence
  on bus frequency.
"""

from repro.memory.banks import (
    AccessPattern,
    BankTiming,
    REFERENCE_PATTERNS,
    pattern_for_efficiency,
    scheduling_efficiency,
)
from repro.memory.gddr5 import Gddr5Timing, HD7970_GDDR5_TIMING
from repro.memory.controller import BandwidthBreakdown, MemoryControllerModel
from repro.memory.power import MemoryPowerBreakdown, MemoryPowerModel

__all__ = [
    "AccessPattern",
    "BankTiming",
    "REFERENCE_PATTERNS",
    "pattern_for_efficiency",
    "scheduling_efficiency",
    "Gddr5Timing",
    "HD7970_GDDR5_TIMING",
    "BandwidthBreakdown",
    "MemoryControllerModel",
    "MemoryPowerBreakdown",
    "MemoryPowerModel",
]
