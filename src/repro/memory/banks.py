"""GDDR5 bank and row-buffer model: deriving controller efficiency.

The memory-controller model (:mod:`repro.memory.controller`) derates pin
bandwidth by an ``access_efficiency`` constant per kernel. This module
grounds those constants: given a description of a kernel's address
stream — row-buffer locality, read/write mix, bank spread — it computes
the scheduling efficiency a GDDR5 controller would achieve, from the
standard timing mechanics:

* a **row hit** costs only the burst transfer (CAS-to-CAS),
* a **row miss** forces precharge + activate before the burst, and banks
  can hide that latency from each other only as far as the stream spreads
  across banks (and tFAW limits the activate rate),
* **read/write turnarounds** idle the bus for a bus-turnaround penalty.

The model answers two questions: (i) what efficiency should a kernel
descriptor use (so the suite constants are auditable rather than free),
and (ii) how does efficiency respond to locality — the reason SPMV/BPT
(pointer-chasing, ~50%) sit so far below Stencil (streaming, ~85%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError


@dataclass(frozen=True)
class AccessPattern:
    """A kernel's DRAM address-stream characteristics.

    Attributes:
        row_hit_rate: fraction of accesses hitting an open row, in [0, 1].
        write_fraction: fraction of accesses that are writes, in [0, 1].
        bank_spread: fraction of the device's banks the stream keeps
            active concurrently, in (0, 1].
        burst_switch_rate: fraction of consecutive accesses that switch
            between reads and writes (bus turnarounds), in [0, 1]. Defaults
            to the uncorrelated estimate ``2 w (1 - w)``.
    """

    row_hit_rate: float
    write_fraction: float = 0.2
    bank_spread: float = 1.0
    burst_switch_rate: float = -1.0

    def __post_init__(self) -> None:
        if not 0 <= self.row_hit_rate <= 1:
            raise CalibrationError("row_hit_rate must be in [0, 1]")
        if not 0 <= self.write_fraction <= 1:
            raise CalibrationError("write_fraction must be in [0, 1]")
        if not 0 < self.bank_spread <= 1:
            raise CalibrationError("bank_spread must be in (0, 1]")
        if self.burst_switch_rate != -1.0 and not 0 <= self.burst_switch_rate <= 1:
            raise CalibrationError("burst_switch_rate must be in [0, 1]")

    @property
    def effective_switch_rate(self) -> float:
        """Turnaround rate (defaulted to the uncorrelated estimate)."""
        if self.burst_switch_rate >= 0:
            return self.burst_switch_rate
        w = self.write_fraction
        return 2.0 * w * (1.0 - w)


@dataclass(frozen=True)
class BankTiming:
    """GDDR5 bank timing in bus-clock cycles (command clock).

    Typical GDDR5 values at ~1.4 GHz command clock.
    """

    #: cycles to transfer one burst on the bus (BL8 on a DDR bus: 4)
    burst_cycles: float = 4.0
    #: row-cycle time: activate -> activate on the same bank (tRC)
    row_cycle: float = 60.0
    #: activate-to-read delay (tRCD) + precharge (tRP) exposed on a miss
    miss_penalty: float = 30.0
    #: bus idle cycles on a read<->write turnaround
    turnaround_cycles: float = 8.0
    #: four-activate window (tFAW) in cycles
    faw_cycles: float = 32.0
    #: number of banks per channel
    banks: int = 16
    #: scheduler write-batching factor: controllers drain writes in
    #: groups, so bus turnarounds happen once per batch rather than once
    #: per uncorrelated read/write switch
    turnaround_batch: float = 16.0

    def __post_init__(self) -> None:
        for name in ("burst_cycles", "row_cycle", "miss_penalty",
                     "turnaround_cycles", "faw_cycles", "turnaround_batch"):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")
        if self.banks < 1:
            raise CalibrationError("banks must be >= 1")


#: Representative GDDR5 timing.
DEFAULT_GDDR5_BANK_TIMING = BankTiming()


def scheduling_efficiency(pattern: AccessPattern,
                          timing: BankTiming = DEFAULT_GDDR5_BANK_TIMING) -> float:
    """Fraction of pin bandwidth a controller sustains for ``pattern``.

    Per-access bus occupancy is the burst itself plus the *exposed* share
    of the row-miss penalty plus turnaround idles:

    * each miss costs ``miss_penalty`` cycles, but concurrent banks hide
      it: with ``n`` banks active, up to ``n - 1`` other bursts can
      transfer during one bank's activate/precharge, so the exposed
      penalty divides by the bank-level parallelism;
    * the activate rate is additionally capped by tFAW (at most four
      activates per ``faw_cycles``), which binds for very miss-heavy
      streams;
    * turnarounds idle the bus outright.

    Returns:
        Efficiency in (0, 1].
    """
    miss_rate = 1.0 - pattern.row_hit_rate
    active_banks = max(1.0, pattern.bank_spread * timing.banks)

    # Exposed miss penalty after bank-level overlap.
    exposed_miss = timing.miss_penalty / active_banks
    # tFAW: four activates per window -> minimum cycles per activate.
    faw_floor = timing.faw_cycles / 4.0
    # The stream's average activate spacing is burst_cycles / miss_rate;
    # if tFAW demands more, the difference is exposed on the bus.
    if miss_rate > 0:
        spacing = timing.burst_cycles / miss_rate
        faw_exposed = max(0.0, faw_floor - spacing)
    else:
        faw_exposed = 0.0

    turnarounds = (pattern.effective_switch_rate
                   / timing.turnaround_batch)
    per_access = (
        timing.burst_cycles
        + miss_rate * (exposed_miss + faw_exposed)
        + turnarounds * timing.turnaround_cycles
    )
    return timing.burst_cycles / per_access


#: Named reference patterns with the efficiencies the workload suite uses.
REFERENCE_PATTERNS = {
    # Streaming, unit stride, deep prefetch: Stencil / DeviceMemory class.
    "streaming": AccessPattern(row_hit_rate=0.92, write_fraction=0.15,
                               bank_spread=1.0),
    # Regular but blocked: LUD / CoMD force kernels.
    "blocked": AccessPattern(row_hit_rate=0.80, write_fraction=0.2,
                             bank_spread=0.75),
    # Irregular gathers with some locality: SPMV / XSBench.
    "gather": AccessPattern(row_hit_rate=0.45, write_fraction=0.1,
                            bank_spread=0.5),
    # Pointer chasing with divergent lanes: BPT.
    "pointer_chase": AccessPattern(row_hit_rate=0.30, write_fraction=0.08,
                                   bank_spread=0.4),
}


def pattern_for_efficiency(efficiency: float,
                           timing: BankTiming = DEFAULT_GDDR5_BANK_TIMING,
                           write_fraction: float = 0.2,
                           bank_spread: float = 0.75) -> AccessPattern:
    """Invert the model: the row-hit rate that yields ``efficiency``.

    Used to audit the workload suite's ``access_efficiency`` constants:
    every constant must correspond to a physically realizable row-hit
    rate in [0, 1].

    Raises:
        CalibrationError: if no row-hit rate can achieve the efficiency
            under the given mix (efficiency out of the model's range).
    """
    if not 0 < efficiency <= 1:
        raise CalibrationError("efficiency must be in (0, 1]")
    lo, hi = 0.0, 1.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        pattern = AccessPattern(row_hit_rate=mid,
                                write_fraction=write_fraction,
                                bank_spread=bank_spread)
        if scheduling_efficiency(pattern, timing) < efficiency:
            lo = mid
        else:
            hi = mid
    pattern = AccessPattern(row_hit_rate=hi, write_fraction=write_fraction,
                            bank_spread=bank_spread)
    achieved = scheduling_efficiency(pattern, timing)
    if achieved < efficiency - 0.02:
        raise CalibrationError(
            f"efficiency {efficiency:.2f} unreachable under this mix "
            f"(max {achieved:.2f})"
        )
    return pattern
