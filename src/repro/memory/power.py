"""GDDR5 memory-subsystem power model (Section 2.4).

The paper decomposes DRAM power into **background**, **activation /
pre-charge**, **read-write**, and **termination** power, plus the PHY and
PLL on the GPU die that belong to the memory interface. Changing the memory
bus frequency affects each component differently:

* lowering bus frequency lowers background, PLL, controller and PHY power
  (they clock with the bus);
* it can *increase* read/write and termination **energy per bit** because of
  longer intervals between array accesses;
* bus **voltage is fixed** — the paper's platform (and ours) cannot scale
  memory voltage, so all scaling here is frequency-linear, which is why the
  paper notes the savings would be greater with voltage scaling.

The component constants live in :class:`MemoryPowerModel` and are calibrated
in :mod:`repro.platform.calibration` so that the Figure 1 breakdown and the
Figure 5 ~10% board-power swing are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError


@dataclass(frozen=True)
class MemoryPowerBreakdown:
    """Per-component memory power (W) at one operating point."""

    background: float
    pll_phy: float
    activate_precharge: float
    read_write: float
    termination: float

    @property
    def total(self) -> float:
        """Total memory-subsystem power (W)."""
        return (
            self.background
            + self.pll_phy
            + self.activate_precharge
            + self.read_write
            + self.termination
        )


@dataclass(frozen=True)
class MemoryPowerModel:
    """Parametric GDDR5 + PHY power model.

    All ``*_idle``/``*_slope`` pairs express a component as
    ``idle + slope * (f_mem / f_mem_max)`` — linear in bus frequency at
    fixed voltage. Traffic-driven components are energy-per-event times the
    achieved rate.

    Attributes:
        f_mem_max: the platform's maximum bus frequency (Hz).
        background_idle: frequency-independent DRAM background power (W).
        background_slope: frequency-dependent background power at max (W).
        pll_phy_idle: frequency-independent PHY/PLL power (W).
        pll_phy_slope: frequency-dependent PHY/PLL power at max (W).
        activate_energy: energy per DRAM burst access (J) for
            activation/pre-charge, amortized over the kernel's row locality.
        read_write_energy_per_byte: array + IO read/write energy (J/B) at
            the maximum bus frequency.
        read_write_low_freq_penalty: fractional increase of read/write
            energy per byte when the bus runs at its minimum frequency
            (longer intervals between array accesses, Section 2.4).
        termination_energy_per_byte: on-die termination energy (J/B).
        burst_bytes: bytes per DRAM access (for the activate-rate term).
    """

    f_mem_max: float
    background_idle: float
    background_slope: float
    pll_phy_idle: float
    pll_phy_slope: float
    activate_energy: float
    read_write_energy_per_byte: float
    read_write_low_freq_penalty: float
    termination_energy_per_byte: float
    burst_bytes: int
    #: bus voltage at the maximum frequency (V); used only when voltage
    #: scaling is enabled
    bus_voltage_max: float = 1.6
    #: bus voltage at the minimum usable frequency (V)
    bus_voltage_min: float = 1.35
    #: enable memory bus voltage scaling — the paper's platform (and the
    #: default model) cannot do this; Section 7.2 flags it as the obvious
    #: extension ("far more power savings ... if voltage scaling is
    #: applied while lowering bus speeds")
    voltage_scaling: bool = False

    def __post_init__(self) -> None:
        if self.bus_voltage_max <= 0 or self.bus_voltage_min <= 0:
            raise CalibrationError("bus voltages must be positive")
        if self.bus_voltage_min > self.bus_voltage_max:
            raise CalibrationError("bus_voltage_min must not exceed max")
        if self.f_mem_max <= 0:
            raise CalibrationError("f_mem_max must be positive")
        for name in (
            "background_idle",
            "background_slope",
            "pll_phy_idle",
            "pll_phy_slope",
            "activate_energy",
            "read_write_energy_per_byte",
            "termination_energy_per_byte",
        ):
            if getattr(self, name) < 0:
                raise CalibrationError(f"{name} must be non-negative")
        if not 0 <= self.read_write_low_freq_penalty < 1:
            raise CalibrationError("read_write_low_freq_penalty must be in [0, 1)")
        if self.burst_bytes <= 0:
            raise CalibrationError("burst_bytes must be positive")

    def breakdown(self, f_mem: float, achieved_bandwidth: float) -> MemoryPowerBreakdown:
        """Memory power breakdown at bus frequency ``f_mem`` (Hz) while the
        subsystem moves ``achieved_bandwidth`` bytes/second.

        Raises:
            CalibrationError: if the operating point is non-physical.
        """
        if f_mem <= 0 or f_mem > self.f_mem_max * 1.001:
            raise CalibrationError(
                f"bus frequency {f_mem:.3e} Hz outside (0, {self.f_mem_max:.3e}]"
            )
        if achieved_bandwidth < 0:
            raise CalibrationError("achieved bandwidth must be non-negative")

        ratio = f_mem / self.f_mem_max
        v_factor = self._voltage_factor(ratio)
        background = (self.background_idle
                      + self.background_slope * ratio * v_factor)
        pll_phy = self.pll_phy_idle + self.pll_phy_slope * ratio * v_factor

        access_rate = achieved_bandwidth / self.burst_bytes
        activate = self.activate_energy * access_rate * v_factor

        rw_energy = self.read_write_energy_per_byte * (
            1.0 + self.read_write_low_freq_penalty * (1.0 - ratio)
        )
        read_write = rw_energy * achieved_bandwidth * v_factor
        termination = (self.termination_energy_per_byte
                       * achieved_bandwidth * v_factor)

        return MemoryPowerBreakdown(
            background=background,
            pll_phy=pll_phy,
            activate_precharge=activate,
            read_write=read_write,
            termination=termination,
        )

    def bus_voltage(self, f_mem: float) -> float:
        """Bus voltage (V) at frequency ``f_mem``.

        Without voltage scaling the bus runs at ``bus_voltage_max``
        regardless of frequency (the paper's platform constraint). With
        scaling, voltage tracks frequency linearly between the endpoints.
        """
        if not self.voltage_scaling:
            return self.bus_voltage_max
        ratio = max(0.0, min(1.0, f_mem / self.f_mem_max))
        low_ratio = 0.345  # 475/1375: the lowest supported bus frequency
        span = max(1e-9, 1.0 - low_ratio)
        frac = max(0.0, (ratio - low_ratio) / span)
        return self.bus_voltage_min + frac * (
            self.bus_voltage_max - self.bus_voltage_min
        )

    def _voltage_factor(self, ratio: float) -> float:
        """V² derating of the voltage-dependent power components."""
        if not self.voltage_scaling:
            return 1.0
        voltage = self.bus_voltage(ratio * self.f_mem_max)
        return (voltage / self.bus_voltage_max) ** 2

    def total_power(self, f_mem: float, achieved_bandwidth: float) -> float:
        """Total memory-subsystem power (W); see :meth:`breakdown`."""
        return self.breakdown(f_mem, achieved_bandwidth).total

    # --- vectorized path ------------------------------------------------------

    def _voltage_factor_many(self, ratio: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_voltage_factor`, mirroring the scalar math."""
        if not self.voltage_scaling:
            return np.ones_like(ratio)
        f_mem = ratio * self.f_mem_max
        clamped = np.maximum(0.0, np.minimum(1.0, f_mem / self.f_mem_max))
        low_ratio = 0.345  # 475/1375: the lowest supported bus frequency
        span = max(1e-9, 1.0 - low_ratio)
        frac = np.maximum(0.0, (clamped - low_ratio) / span)
        voltage = self.bus_voltage_min + frac * (
            self.bus_voltage_max - self.bus_voltage_min
        )
        return (voltage / self.bus_voltage_max) ** 2

    def total_power_many(self, f_mem: np.ndarray,
                         achieved_bandwidth: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`total_power` over arrays of operating points.

        Every arithmetic step mirrors :meth:`breakdown` operation for
        operation so a batched grid sweep agrees with per-launch sampling.

        Raises:
            CalibrationError: if any operating point is non-physical.
        """
        f_mem = np.asarray(f_mem, dtype=np.float64)
        achieved_bandwidth = np.asarray(achieved_bandwidth, dtype=np.float64)
        if np.any(f_mem <= 0) or np.any(f_mem > self.f_mem_max * 1.001):
            raise CalibrationError(
                f"bus frequency outside (0, {self.f_mem_max:.3e}]"
            )
        if np.any(achieved_bandwidth < 0):
            raise CalibrationError("achieved bandwidth must be non-negative")

        ratio = f_mem / self.f_mem_max
        v_factor = self._voltage_factor_many(ratio)
        background = (self.background_idle
                      + self.background_slope * ratio * v_factor)
        pll_phy = self.pll_phy_idle + self.pll_phy_slope * ratio * v_factor

        access_rate = achieved_bandwidth / self.burst_bytes
        activate = self.activate_energy * access_rate * v_factor

        rw_energy = self.read_write_energy_per_byte * (
            1.0 + self.read_write_low_freq_penalty * (1.0 - ratio)
        )
        read_write = rw_energy * achieved_bandwidth * v_factor
        termination = (self.termination_energy_per_byte
                       * achieved_bandwidth * v_factor)
        return background + pll_phy + activate + read_write + termination
