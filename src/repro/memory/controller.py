"""Memory-controller model: achievable DRAM bandwidth.

The achievable bandwidth of a GDDR5 subsystem is the minimum of three
limits, each of which the paper's characterization exercises:

* **peak x efficiency** — the Equation-2 pin bandwidth derated by the
  controller's scheduling efficiency for the kernel's access pattern
  (row-buffer locality, read/write turnarounds, coalescing),
* **memory-level parallelism (MLP)** — Little's law: the system can only
  sustain ``outstanding bytes / latency``. Outstanding bytes scale with
  active CUs, resident wavefronts (occupancy!) and the kernel's per-wave
  request concurrency; latency comes from :class:`~repro.memory.gddr5.
  Gddr5Timing` and lengthens as the bus slows. Low-occupancy kernels are
  latency-bound here, which is exactly why ``Sort.BottomScan`` (30%
  occupancy) is insensitive to memory frequency (Figure 7),
* **the clock-domain crossing** — applied by the performance model using
  :class:`~repro.gpu.clocks.ClockDomainModel` (Figure 9).

This module computes the first two and reports a breakdown so analyses can
attribute which limit binds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import CalibrationError
from repro.gpu.architecture import GpuArchitecture
from repro.memory.gddr5 import Gddr5Timing


@dataclass(frozen=True)
class BandwidthBreakdown:
    """Achievable-bandwidth limits (B/s) and the binding limit."""

    peak: float
    efficiency_limited: float
    mlp_limited: float

    @property
    def achievable(self) -> float:
        """The bandwidth the subsystem can actually sustain."""
        return min(self.efficiency_limited, self.mlp_limited)

    @property
    def binding_limit(self) -> str:
        """``"efficiency"`` if pin bandwidth binds, else ``"mlp"``."""
        return "efficiency" if self.efficiency_limited <= self.mlp_limited else "mlp"


@dataclass(frozen=True)
class MemoryControllerModel:
    """Bandwidth model for one GPU's memory subsystem.

    Attributes:
        arch: the GPU machine description (pin bandwidth, CU geometry).
        timing: the GDDR5 latency model.
    """

    arch: GpuArchitecture
    timing: Gddr5Timing

    def achievable_bandwidth(
        self,
        f_mem: float,
        n_cu: int,
        waves_per_simd: int,
        outstanding_per_wave: float,
        access_efficiency: float,
    ) -> BandwidthBreakdown:
        """Compute the bandwidth limits for a kernel at a configuration.

        Args:
            f_mem: memory bus frequency (Hz).
            n_cu: active compute units.
            waves_per_simd: resident wavefronts per SIMD (occupancy result).
            outstanding_per_wave: average concurrent DRAM requests a
                resident wavefront keeps in flight (kernel MLP).
            access_efficiency: controller scheduling efficiency in (0, 1]
                for this kernel's access pattern.

        Returns:
            A :class:`BandwidthBreakdown`.

        Raises:
            CalibrationError: on out-of-range arguments.
        """
        if not 0 < access_efficiency <= 1:
            raise CalibrationError("access_efficiency must be in (0, 1]")
        if outstanding_per_wave <= 0:
            raise CalibrationError("outstanding_per_wave must be positive")
        if n_cu <= 0 or waves_per_simd <= 0:
            raise CalibrationError("n_cu and waves_per_simd must be positive")

        peak = self.arch.peak_memory_bandwidth(f_mem)
        efficiency_limited = peak * access_efficiency

        waves_per_cu = waves_per_simd * self.arch.simds_per_cu
        outstanding_bytes = (
            n_cu * waves_per_cu * outstanding_per_wave * self.timing.burst_bytes
        )
        latency = self.timing.access_latency(f_mem)
        mlp_limited = outstanding_bytes / latency

        return BandwidthBreakdown(
            peak=peak,
            efficiency_limited=efficiency_limited,
            mlp_limited=mlp_limited,
        )

    def achievable_bandwidth_many(
        self,
        f_mem: np.ndarray,
        n_cu: np.ndarray,
        waves_per_simd: int,
        outstanding_per_wave: float,
        access_efficiency: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`achievable_bandwidth` over config arrays.

        Args:
            f_mem: memory bus frequencies (Hz), one per configuration.
            n_cu: active compute units, one per configuration.
            waves_per_simd: resident wavefronts per SIMD (config-invariant).
            outstanding_per_wave: kernel MLP (config-invariant).
            access_efficiency: controller scheduling efficiency in (0, 1].

        Returns:
            ``(peak, efficiency_limited, mlp_limited)`` arrays (B/s). The
            arithmetic mirrors the scalar path operation for operation so
            batched sweeps agree with per-launch evaluation.
        """
        if not 0 < access_efficiency <= 1:
            raise CalibrationError("access_efficiency must be in (0, 1]")
        if outstanding_per_wave <= 0:
            raise CalibrationError("outstanding_per_wave must be positive")
        if waves_per_simd <= 0:
            raise CalibrationError("waves_per_simd must be positive")

        # Equation 2, as in GpuArchitecture.peak_memory_bandwidth.
        per_mc_bytes = self.arch.bus_width_bits_per_mc / 8.0
        peak = (f_mem * per_mc_bytes * self.arch.memory_controllers
                * self.arch.gddr5_transfer_rate)
        efficiency_limited = peak * access_efficiency

        waves_per_cu = waves_per_simd * self.arch.simds_per_cu
        outstanding_bytes = (
            n_cu * waves_per_cu * outstanding_per_wave * self.timing.burst_bytes
        )
        latency = self.timing.fixed_latency + self.timing.bus_cycles / f_mem
        mlp_limited = outstanding_bytes / latency
        return peak, efficiency_limited, mlp_limited
