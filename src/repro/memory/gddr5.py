"""GDDR5 device and channel timing.

The HD7970 pairs the GPU with 3 GB of GDDR5 over six 64-bit dual-channel
memory controllers (Section 2.2). For the performance model we need two
things from the DRAM:

* the **peak bandwidth** at a bus frequency (delegated to the architecture's
  Equation-2 implementation), and
* the **loaded access latency** seen by a miss request, which has a
  frequency-*independent* component (row activation, CAS, chip-internal
  array timing are specified in nanoseconds) and a frequency-*dependent*
  component (command/data transfer and controller queuing occur on the bus
  clock). Lower bus frequency therefore lengthens latency somewhat, but far
  less than proportionally — which is why latency-bound (low-occupancy)
  kernels are relatively insensitive to the memory frequency knob
  (Section 3.5, Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError
from repro.units import MHZ, NS


@dataclass(frozen=True)
class Gddr5Timing:
    """Latency parameters of a GDDR5 channel.

    Attributes:
        fixed_latency: frequency-independent access latency (s) — array
            timing (tRCD + tCL + tRP amortized) plus on-die interconnect.
        bus_cycles: command + data-transfer + queuing cycles spent on the
            memory bus clock per access.
        burst_bytes: bytes returned per access (one L2 line).
    """

    fixed_latency: float
    bus_cycles: float
    burst_bytes: int

    def __post_init__(self) -> None:
        if self.fixed_latency <= 0:
            raise CalibrationError("fixed_latency must be positive")
        if self.bus_cycles <= 0:
            raise CalibrationError("bus_cycles must be positive")
        if self.burst_bytes <= 0:
            raise CalibrationError("burst_bytes must be positive")

    def access_latency(self, f_mem: float) -> float:
        """Loaded latency (s) of one DRAM access at bus frequency ``f_mem``.

        ``latency = fixed + bus_cycles / f_mem``. At 1375 MHz the default
        timing yields ~350 ns of loaded latency, a typical figure for a
        heavily banked GDDR5 system under load; at 475 MHz it grows to
        ~520 ns.
        """
        if f_mem <= 0:
            raise CalibrationError("memory frequency must be positive")
        return self.fixed_latency + self.bus_cycles / f_mem


#: Calibrated loaded-latency timing for the HD7970's GDDR5 subsystem.
HD7970_GDDR5_TIMING = Gddr5Timing(
    fixed_latency=270 * NS,
    bus_cycles=110.0,
    burst_bytes=64,
)
