"""Exception hierarchy for the Harmonia reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything originating here with a single ``except`` clause while
still being able to discriminate on the specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid hardware configuration was requested.

    Raised when a requested tunable value is outside the platform's
    supported range or not on the platform's step grid (e.g. a CU count
    of 5 when the HD7970 only supports multiples of 4).
    """


class KernelSpecError(ReproError):
    """A kernel description is internally inconsistent.

    Examples: negative instruction counts, register usage above the
    physical register file size, a divergence fraction outside [0, 1].
    """


class CalibrationError(ReproError):
    """A calibration constant is out of its physically meaningful range."""


class PolicyError(ReproError):
    """A power-management policy was driven with inconsistent state.

    For example, asking the fine-grain tuner for a decision before any
    monitoring sample exists, or feeding a policy a kernel result from a
    configuration it did not request.
    """


class WorkloadError(ReproError):
    """An application or kernel lookup failed, or a phase schedule is bad."""


class AnalysisError(ReproError):
    """A sweep/analysis helper was used on inconsistent data."""


class TelemetryError(ReproError):
    """The telemetry subsystem was misused or fed an unreadable trace.

    Examples: registering one metric name as two different instrument
    types, loading a JSONL trace written under a different schema
    version, or a record naming an unknown event type.
    """
