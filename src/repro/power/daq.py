"""Simulated National Instruments DAQ power-measurement path.

The paper profiles power "using a National Instruments data acquisition
(DAQ) card (NI PCIe-6353), with a sampling frequency of 1 kHz" (Section 6).
This module reproduces that measurement path: a continuous power trace is
sampled at a fixed rate with optional sensor noise, and energy is recovered
by integrating the samples — which is how all the paper's energy numbers
were actually obtained.

Keeping the measurement path explicit lets tests verify that sampled energy
converges to analytic energy, and lets the benchmarks report numbers the
same way the paper's rig would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError


@dataclass(frozen=True)
class DaqTrace:
    """A sampled power trace.

    Attributes:
        sample_period: seconds between samples.
        samples: power readings (W), one per sample instant.
    """

    sample_period: float
    samples: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.sample_period <= 0:
            raise CalibrationError("sample_period must be positive")

    @property
    def duration(self) -> float:
        """Trace duration (s)."""
        return len(self.samples) * self.sample_period

    def energy(self) -> float:
        """Energy (J) by rectangle-rule integration of the samples."""
        return float(sum(self.samples)) * self.sample_period

    def average_power(self) -> float:
        """Mean power (W) over the trace."""
        if not self.samples:
            return 0.0
        return float(np.mean(self.samples))


class DaqCard:
    """A power meter sampling a piecewise-constant power signal.

    Args:
        sampling_frequency: samples per second (the paper's rig: 1000).
        noise_std: Gaussian sensor noise standard deviation (W).
        seed: RNG seed for reproducible noise.
    """

    def __init__(self, sampling_frequency: float = 1000.0,
                 noise_std: float = 0.0, seed: int = 0):
        if sampling_frequency <= 0:
            raise CalibrationError("sampling_frequency must be positive")
        if noise_std < 0:
            raise CalibrationError("noise_std must be non-negative")
        self._period = 1.0 / sampling_frequency
        self._noise_std = noise_std
        self._rng = np.random.default_rng(seed)

    @property
    def sample_period(self) -> float:
        """Seconds between samples."""
        return self._period

    def sample_segments(self, segments: Sequence[Tuple[float, float]]) -> DaqTrace:
        """Sample a piecewise-constant power signal.

        Args:
            segments: sequence of ``(duration_s, power_w)`` pieces, e.g.
                one piece per kernel launch.

        Returns:
            The sampled :class:`DaqTrace`. Sampling instants fall at
            ``k * period`` from the start of the signal; a segment shorter
            than one period may contribute zero samples (exactly as a real
            1 kHz rig under-samples microsecond kernels).
        """
        samples: List[float] = []
        boundaries: List[Tuple[float, float, float]] = []
        start = 0.0
        for duration, power in segments:
            if duration < 0:
                raise CalibrationError("segment duration must be non-negative")
            boundaries.append((start, start + duration, power))
            start += duration

        total = start
        n_samples = int(total / self._period)
        seg_idx = 0
        for k in range(n_samples):
            t = k * self._period
            while seg_idx < len(boundaries) - 1 and t >= boundaries[seg_idx][1]:
                seg_idx += 1
            power = boundaries[seg_idx][2] if boundaries else 0.0
            if self._noise_std > 0:
                power += float(self._rng.normal(0.0, self._noise_std))
            samples.append(max(0.0, power))
        return DaqTrace(sample_period=self._period, samples=tuple(samples))
