"""GPU chip power model.

``GPUPwr`` in the paper's terminology: the GPU compute units plus the
integrated memory controller, but not the DDR PHYs (Section 6). Modelled
as:

* **per-CU dynamic power** — classic ``C V^2 f`` scaled by an activity
  factor derived from how busy the vector pipelines are; inactive CUs are
  power-gated and contribute nothing (Section 6: "All inactive CUs are
  power gated"),
* **per-CU leakage** — a quadratic function of voltage for active CUs
  (power-gated CUs leak ~0),
* **uncore** — command processor, L2, fabric and the integrated memory
  controller; dynamic part on the compute clock/voltage plus leakage.

Voltage tracks frequency through the Table 1 DVFS curve (Section 6: "When
varying compute frequency, voltage is also scaled as noted in Table 1").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError
from repro.gpu.dvfs import GpuDvfsTable


@dataclass(frozen=True)
class GpuPowerModel:
    """Parametric GPU chip power model.

    Attributes:
        dvfs: the voltage/frequency curve.
        cu_capacitance: effective switched capacitance per CU (F).
        cu_leakage_nominal: leakage per active CU (W) at ``v_nominal``.
        uncore_capacitance: effective switched capacitance of the uncore (F).
        uncore_leakage_nominal: uncore leakage (W) at ``v_nominal``.
        v_nominal: voltage at which the leakage constants are specified (V).
        min_activity: activity floor for an active but idle CU (clock tree
            and scheduler switching never go to zero).
    """

    dvfs: GpuDvfsTable
    cu_capacitance: float
    cu_leakage_nominal: float
    uncore_capacitance: float
    uncore_leakage_nominal: float
    v_nominal: float
    min_activity: float = 0.08

    def __post_init__(self) -> None:
        for name in ("cu_capacitance", "cu_leakage_nominal",
                     "uncore_capacitance", "uncore_leakage_nominal"):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")
        if self.v_nominal <= 0:
            raise CalibrationError("v_nominal must be positive")
        if not 0 <= self.min_activity <= 1:
            raise CalibrationError("min_activity must be in [0, 1]")

    def _leakage(self, nominal_watts: float, voltage: float) -> float:
        """Leakage scales roughly quadratically with supply voltage."""
        return nominal_watts * (voltage / self.v_nominal) ** 2

    def activity_factor(self, valu_busy: float, valu_utilization: float,
                        mem_unit_busy: float) -> float:
        """Switching-activity factor in [min_activity, 1].

        Dominated by how often the vector ALUs issue (``VALUBusy``) and how
        many lanes are live (``VALUUtilization``); memory-unit activity
        contributes a smaller share (address generation, L1/LDS traffic).
        Counter inputs are on their 0-100 scale.
        """
        for name, value in (("valu_busy", valu_busy),
                            ("valu_utilization", valu_utilization),
                            ("mem_unit_busy", mem_unit_busy)):
            if not 0 <= value <= 100 + 1e-9:
                raise CalibrationError(f"{name}={value} outside [0, 100]")
        alu_share = (valu_busy / 100.0) * (0.4 + 0.6 * valu_utilization / 100.0)
        mem_share = 0.25 * (mem_unit_busy / 100.0)
        return min(1.0, max(self.min_activity, alu_share + mem_share))

    def chip_power(self, n_cu: int, f_cu: float, activity: float) -> float:
        """GPU chip power (W) at the given compute configuration.

        Args:
            n_cu: active (non-gated) compute units.
            f_cu: compute frequency (Hz); voltage follows the DVFS curve.
            activity: switching-activity factor in [0, 1].
        """
        if n_cu <= 0:
            raise CalibrationError("n_cu must be positive")
        if f_cu <= 0:
            raise CalibrationError("f_cu must be positive")
        if not 0 <= activity <= 1:
            raise CalibrationError("activity must be in [0, 1]")
        voltage = self.dvfs.voltage_at(f_cu)
        cu_dynamic = n_cu * self.cu_capacitance * f_cu * voltage ** 2 * activity
        cu_leak = n_cu * self._leakage(self.cu_leakage_nominal, voltage)
        uncore_dynamic = self.uncore_capacitance * f_cu * voltage ** 2 * max(
            activity, 0.3
        )
        uncore_leak = self._leakage(self.uncore_leakage_nominal, voltage)
        return cu_dynamic + cu_leak + uncore_dynamic + uncore_leak

    # --- vectorized path ------------------------------------------------------

    def activity_factor_many(self, valu_busy: np.ndarray,
                             valu_utilization: float,
                             mem_unit_busy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`activity_factor` over counter arrays.

        ``valu_utilization`` is configuration-invariant (it reflects branch
        divergence, not the operating point) and stays a scalar.
        """
        if not 0 <= valu_utilization <= 100 + 1e-9:
            raise CalibrationError(
                f"valu_utilization={valu_utilization} outside [0, 100]"
            )
        for name, values in (("valu_busy", valu_busy),
                             ("mem_unit_busy", mem_unit_busy)):
            if np.any(values < 0) or np.any(values > 100 + 1e-9):
                raise CalibrationError(f"{name} outside [0, 100]")
        alu_share = (valu_busy / 100.0) * (0.4 + 0.6 * valu_utilization / 100.0)
        mem_share = 0.25 * (mem_unit_busy / 100.0)
        return np.minimum(1.0, np.maximum(self.min_activity,
                                          alu_share + mem_share))

    def chip_power_many(self, n_cu: np.ndarray, f_cu: np.ndarray,
                        activity: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`chip_power` over configuration arrays.

        The arithmetic mirrors the scalar path operation for operation so
        batched sweeps agree with per-launch sampling.
        """
        if np.any(n_cu <= 0):
            raise CalibrationError("n_cu must be positive")
        if np.any(f_cu <= 0):
            raise CalibrationError("f_cu must be positive")
        if np.any(activity < 0) or np.any(activity > 1):
            raise CalibrationError("activity must be in [0, 1]")
        voltage = self.dvfs.voltage_at_many(f_cu)
        cu_dynamic = n_cu * self.cu_capacitance * f_cu * voltage ** 2 * activity
        cu_leak = n_cu * (self.cu_leakage_nominal
                          * (voltage / self.v_nominal) ** 2)
        uncore_dynamic = (self.uncore_capacitance * f_cu * voltage ** 2
                          * np.maximum(activity, 0.3))
        uncore_leak = (self.uncore_leakage_nominal
                       * (voltage / self.v_nominal) ** 2)
        return cu_dynamic + cu_leak + uncore_dynamic + uncore_leak
