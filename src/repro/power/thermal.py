"""Lumped RC thermal model of the GPU card.

Section 2.3: AMD PowerTune "adjusts power between the DPM0, DPM1 and DPM2
power states ... based on power and thermal headroom availability", and
only boosts "when there is headroom". On the paper's open test bed the
headroom never runs out (fan pinned at maximum), so the baseline sits in
boost permanently — but the paper's motivation (Section 1, insight 6) is
precisely that future tightly-integrated packages will *not* have that
luxury. This module supplies the thermal substrate for those constrained
scenarios:

* :class:`ThermalModel` — a first-order RC model: the die-to-ambient
  temperature rise follows ``dT/dt = (P * R - T) / (R * C)``,
* :class:`ThermalState` — integrates the model across launch segments,
* :class:`ThermalGovernor` — a policy wrapper that enforces the thermal
  cap on any inner policy by stepping the compute frequency down while
  hot, exactly how PowerTune sheds heat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CalibrationError, PolicyError
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.perf.result import KernelRunResult


@dataclass(frozen=True)
class ThermalModel:
    """First-order thermal RC network from die to ambient.

    Attributes:
        resistance: junction-to-ambient thermal resistance (°C/W).
        capacitance: lumped thermal capacitance (J/°C).
        ambient: ambient temperature (°C).
        t_max: junction temperature limit (°C).
    """

    resistance: float
    capacitance: float
    ambient: float = 35.0
    t_max: float = 95.0

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise CalibrationError("thermal resistance must be positive")
        if self.capacitance <= 0:
            raise CalibrationError("thermal capacitance must be positive")
        if self.t_max <= self.ambient:
            raise CalibrationError("t_max must exceed ambient")

    @property
    def time_constant(self) -> float:
        """The RC time constant (s)."""
        return self.resistance * self.capacitance

    def steady_state(self, power: float) -> float:
        """Equilibrium temperature (°C) at constant ``power`` (W)."""
        if power < 0:
            raise CalibrationError("power must be non-negative")
        return self.ambient + power * self.resistance

    def sustainable_power(self) -> float:
        """The power (W) whose steady state exactly hits ``t_max``."""
        return (self.t_max - self.ambient) / self.resistance

    def advance(self, temperature: float, power: float, dt: float) -> float:
        """Temperature after holding ``power`` for ``dt`` seconds.

        Exact solution of the first-order ODE (no integration error for
        piecewise-constant power).
        """
        if dt < 0:
            raise CalibrationError("dt must be non-negative")
        target = self.steady_state(power)
        decay = math.exp(-dt / self.time_constant)
        return target + (temperature - target) * decay


class ThermalState:
    """Integrates a :class:`ThermalModel` across run segments."""

    def __init__(self, model: ThermalModel,
                 initial_temperature: float = None):
        self._model = model
        self._temperature = (
            model.ambient if initial_temperature is None
            else initial_temperature
        )
        self._time_above_cap = 0.0
        self._total_time = 0.0
        self._peak = self._temperature

    @property
    def temperature(self) -> float:
        """Current junction temperature (°C)."""
        return self._temperature

    @property
    def peak_temperature(self) -> float:
        """Highest temperature seen (°C)."""
        return self._peak

    @property
    def headroom(self) -> float:
        """Degrees of headroom to the cap (negative when over)."""
        return self._model.t_max - self._temperature

    def fraction_above_cap(self) -> float:
        """Fraction of integrated time spent above the thermal cap."""
        if self._total_time <= 0:
            return 0.0
        return self._time_above_cap / self._total_time

    def apply(self, power: float, duration: float) -> float:
        """Integrate one (power, duration) segment; returns the new
        temperature. Over-cap time is charged at segment granularity."""
        self._temperature = self._model.advance(
            self._temperature, power, duration
        )
        self._peak = max(self._peak, self._temperature)
        self._total_time += duration
        if self._temperature > self._model.t_max:
            self._time_above_cap += duration
        return self._temperature


class ThermalGovernor:
    """Thermal enforcement layered over any power policy.

    PowerTune semantics: while the junction is within ``margin`` of the
    cap, the compute frequency of whatever configuration the inner policy
    requested is stepped down one DVFS grid step per shortfall degree
    band; with ample headroom the inner policy's choice passes through
    untouched. Harmonia "operates as a system software policy overlaid on
    top of the baseline power management system" (Section 5.1) — this
    wrapper is that baseline layer made explicit.
    """

    def __init__(self, inner, space: ConfigSpace, model: ThermalModel,
                 margin: float = 5.0):
        if margin < 0:
            raise PolicyError("margin must be non-negative")
        self._inner = inner
        self._space = space
        self._model = model
        self._margin = margin
        self._state = ThermalState(model)

    @property
    def name(self) -> str:
        """Policy name: inner name with a thermal tag."""
        return f"{self._inner.name}+thermal"

    @property
    def thermal_state(self) -> ThermalState:
        """The integrated thermal state (exposed for analysis)."""
        return self._state

    def reset(self) -> None:
        """Reset the inner policy and restart from ambient."""
        self._inner.reset()
        self._state = ThermalState(self._model)

    def config_for(self, context) -> HardwareConfig:
        """The inner policy's choice, throttled if headroom is short."""
        config = self._inner.config_for(context)
        headroom = self._state.headroom
        if headroom >= self._margin:
            return config
        # One grid step down per margin-band of missing headroom, to a
        # floor of the lowest compute frequency.
        shortfall = self._margin - headroom
        steps = max(1, int(math.ceil(shortfall / self._margin)))
        return self._space.step_f_cu(config, -steps)

    def observe(self, context, result: KernelRunResult) -> None:
        """Integrate the launch's heat and forward the observation."""
        self._state.apply(result.power.card, result.time)
        self._inner.observe(context, result)
