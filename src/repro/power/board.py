"""Board-level power aggregation (Section 6, Equation 4).

The paper measures total card power at the PCI-e connector and decomposes::

    MemPwr = GPUCardPwr - GPUPwr - OtherPwr        (Equation 4)

We build in the forward direction — component models produce ``GPUPwr`` and
``MemPwr``, ``OtherPwr`` is a constant (fan pinned at maximum RPM, voltage
regulators, trace losses) — and expose the same three-way decomposition a
measurement on the paper's rig would recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import CalibrationError
from repro.gpu.config import HardwareConfig
from repro.memory.power import MemoryPowerModel
from repro.perf.batch import BatchCounters
from repro.perf.counters import PerfCounters
from repro.perf.result import PowerSample
from repro.power.gpu_power import GpuPowerModel


@dataclass(frozen=True)
class BoardPowerModel:
    """Full-card power model.

    Attributes:
        gpu: the GPU chip power model.
        memory: the GDDR5 + PHY power model.
        other_power: constant rest-of-card power (W): fan at fixed maximum
            RPM, voltage regulators, discrete components (Section 6).
    """

    gpu: GpuPowerModel
    memory: MemoryPowerModel
    other_power: float

    def __post_init__(self) -> None:
        if self.other_power < 0:
            raise CalibrationError("other_power must be non-negative")

    def sample(
        self,
        config: HardwareConfig,
        counters: PerfCounters,
        achieved_bandwidth: float,
    ) -> PowerSample:
        """Average power of a kernel launch at ``config``.

        Args:
            config: the hardware configuration the launch ran at.
            counters: the launch's performance counters (activity inputs).
            achieved_bandwidth: achieved DRAM bandwidth (B/s).
        """
        activity = self.gpu.activity_factor(
            valu_busy=counters.valu_busy,
            valu_utilization=counters.valu_utilization,
            mem_unit_busy=counters.mem_unit_busy,
        )
        gpu_watts = self.gpu.chip_power(config.n_cu, config.f_cu, activity)
        mem_watts = self.memory.total_power(config.f_mem, achieved_bandwidth)
        return PowerSample(gpu=gpu_watts, memory=mem_watts, other=self.other_power)

    def sample_batch(
        self,
        n_cu: np.ndarray,
        f_cu: np.ndarray,
        f_mem: np.ndarray,
        counters: BatchCounters,
        achieved_bandwidth: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`sample` over a batch of configurations.

        Returns:
            ``(gpu_watts, mem_watts)`` arrays; ``other_power`` is constant
            and attached by the caller.
        """
        activity = self.gpu.activity_factor_many(
            valu_busy=counters.valu_busy,
            valu_utilization=counters.valu_utilization,
            mem_unit_busy=counters.mem_unit_busy,
        )
        gpu_watts = self.gpu.chip_power_many(n_cu, f_cu, activity)
        mem_watts = self.memory.total_power_many(f_mem, achieved_bandwidth)
        return gpu_watts, mem_watts
