"""Power models for the GPU chip, the board, and the measurement path.

* :mod:`repro.power.gpu_power` — per-CU dynamic + leakage + uncore power
  with power gating of inactive CUs,
* :mod:`repro.power.board` — the Section 6 measurement decomposition:
  ``GPUCardPwr = GPUPwr + MemPwr + OtherPwr`` (Equation 4 rearranged),
* :mod:`repro.power.daq` — a simulated National Instruments DAQ sampling a
  power trace at 1 kHz, as the paper's measurement rig does.
"""

from repro.power.gpu_power import GpuPowerModel
from repro.power.board import BoardPowerModel
from repro.power.daq import DaqCard, DaqTrace
from repro.power.thermal import ThermalGovernor, ThermalModel, ThermalState

__all__ = [
    "GpuPowerModel",
    "BoardPowerModel",
    "DaqCard",
    "DaqTrace",
    "ThermalGovernor",
    "ThermalModel",
    "ThermalState",
]
