"""Trace summarization: the ``repro telemetry-report`` backend.

Turns a loaded event stream into the views the paper's evaluation builds
by hand: the Figure 18 CG/FG action mix per kernel, the phase-change
timeline, the Figure 15/16 residency tables (via the replayed trace) and
the top kernels by run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.telemetry.events import (
    CGJump,
    ConfigApplied,
    FGConverged,
    FGRevert,
    FGStep,
    KernelLaunch,
    PhaseChange,
    TelemetryEvent,
)
from repro.telemetry.export import ReplayTrace
from repro.units import hz_to_mhz


@dataclass
class KernelActionMix:
    """Per-kernel controller-action tallies (the Figure 18 split)."""

    kernel: str
    launches: int = 0
    time_s: float = 0.0
    phase_changes: int = 0
    cg_jumps: int = 0
    fg_steps: int = 0
    fg_reverts: int = 0
    fg_converged: int = 0
    recalls: int = 0


@dataclass(frozen=True)
class TraceSummary:
    """Everything the telemetry report renders."""

    events: int
    launches: int
    total_time_s: float
    mix: Tuple[KernelActionMix, ...]
    #: (iteration, kernel, phase_index) per PhaseChange, in stream order
    phase_timeline: Tuple[Tuple[int, str, int], ...]
    trace: ReplayTrace

    def mix_for(self, kernel: str) -> KernelActionMix:
        """The action mix of one kernel (KeyError if absent)."""
        for row in self.mix:
            if row.kernel == kernel:
                return row
        raise KeyError(kernel)

    def totals(self) -> KernelActionMix:
        """Action tallies summed over all kernels."""
        total = KernelActionMix(kernel="TOTAL")
        for row in self.mix:
            total.launches += row.launches
            total.time_s += row.time_s
            total.phase_changes += row.phase_changes
            total.cg_jumps += row.cg_jumps
            total.fg_steps += row.fg_steps
            total.fg_reverts += row.fg_reverts
            total.fg_converged += row.fg_converged
            total.recalls += row.recalls
        return total


def summarize(events: Sequence[TelemetryEvent]) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary`."""
    mix: Dict[str, KernelActionMix] = {}
    timeline: List[Tuple[int, str, int]] = []

    def row(kernel: str) -> KernelActionMix:
        if kernel not in mix:
            mix[kernel] = KernelActionMix(kernel=kernel)
        return mix[kernel]

    for event in events:
        if isinstance(event, KernelLaunch):
            entry = row(event.kernel)
            entry.launches += 1
            entry.time_s += event.time_s
        elif isinstance(event, PhaseChange):
            row(event.kernel).phase_changes += 1
            timeline.append((event.iteration, event.kernel,
                             event.phase_index))
        elif isinstance(event, CGJump):
            row(event.kernel).cg_jumps += 1
        elif isinstance(event, FGStep):
            row(event.kernel).fg_steps += 1
        elif isinstance(event, FGRevert):
            row(event.kernel).fg_reverts += 1
        elif isinstance(event, FGConverged):
            row(event.kernel).fg_converged += 1
        elif isinstance(event, ConfigApplied):
            if event.source == "recall":
                row(event.kernel).recalls += 1

    trace = ReplayTrace.from_events(events)
    ordered = tuple(sorted(mix.values(), key=lambda r: r.kernel))
    return TraceSummary(
        events=len(events),
        launches=len(trace),
        total_time_s=sum(r.time_s for r in ordered),
        mix=ordered,
        phase_timeline=tuple(timeline),
        trace=trace,
    )


def _format_mix(summary: TraceSummary) -> str:
    rows = []
    for entry in list(summary.mix) + [summary.totals()]:
        rows.append((
            entry.kernel, str(entry.launches), str(entry.phase_changes),
            str(entry.cg_jumps), str(entry.fg_steps), str(entry.fg_reverts),
            str(entry.fg_converged), str(entry.recalls),
        ))
    return format_table(
        headers=("kernel", "launches", "phases", "CG jumps", "FG steps",
                 "FG reverts", "converged", "recalls"),
        rows=rows,
        title="Controller action mix per kernel (the Figure 18 CG/FG split)",
    )


def _format_timeline(summary: TraceSummary, limit: int = 20) -> str:
    if not summary.phase_timeline:
        return "Phase-change timeline: (no phase changes recorded)"
    rows = [(str(iteration), kernel, str(index))
            for iteration, kernel, index in summary.phase_timeline[:limit]]
    suffix = ""
    if len(summary.phase_timeline) > limit:
        suffix = (f"\n  ... {len(summary.phase_timeline) - limit} further "
                  "phase changes elided")
    return format_table(
        headers=("iteration", "kernel", "phase #"),
        rows=rows,
        title="Phase-change timeline",
    ) + suffix


def _format_residency(summary: TraceSummary) -> str:
    if len(summary.trace) == 0:
        return "Residency: (no KernelLaunch events in trace)"
    sections = []
    for label, table, fmt in (
        ("memory bus", summary.trace.f_mem_residency(),
         lambda v: f"{hz_to_mhz(v):.0f} MHz"),
        ("compute frequency", summary.trace.f_cu_residency(),
         lambda v: f"{hz_to_mhz(v):.0f} MHz"),
        ("active CUs", summary.trace.cu_residency(),
         lambda v: f"{v:.0f} CU"),
    ):
        rows = [(fmt(value), f"{fraction:.1%}")
                for value, fraction in sorted(table.fractions.items())]
        sections.append(format_table(
            headers=(label, "residency"),
            rows=rows,
            title=f"Residency: {label} (Figures 15/16)",
        ))
    return "\n\n".join(sections)


def _format_top_kernels(summary: TraceSummary, limit: int = 8) -> str:
    by_time = sorted(summary.mix, key=lambda r: r.time_s, reverse=True)
    total = summary.total_time_s or 1.0
    rows = [
        (entry.kernel, f"{entry.time_s * 1e3:.2f}",
         f"{entry.time_s / total:.1%}", str(entry.launches))
        for entry in by_time[:limit]
    ]
    return format_table(
        headers=("kernel", "time ms", "share", "launches"),
        rows=rows,
        title="Top kernels by run time",
    )


def format_report(summary: TraceSummary) -> str:
    """Render the full telemetry report."""
    header = (f"telemetry trace: {summary.events} events, "
              f"{summary.launches} launches, "
              f"{summary.total_time_s * 1e3:.2f} ms total run time")
    return "\n\n".join([
        header,
        _format_mix(summary),
        _format_timeline(summary),
        _format_residency(summary),
        _format_top_kernels(summary),
    ])


# --- sweep-cache effectiveness ---------------------------------------------------


def _counter_total(metrics: Dict, name: str, **labels: str) -> float:
    """Sum a counter's samples whose labels include ``labels``."""
    instrument = metrics.get(name)
    if not instrument:
        return 0.0
    total = 0.0
    for sample in instrument.get("samples", ()):
        sample_labels = sample.get("labels", {})
        if all(sample_labels.get(k) == v for k, v in labels.items()):
            total += sample.get("value", 0.0)
    return total


def format_cache_effectiveness(memory_hits: int, memory_misses: int,
                               store_hits: int, store_misses: int,
                               bytes_read: float = 0.0,
                               bytes_written: float = 0.0) -> str:
    """One line summarizing how well the two-tier sweep cache worked."""
    lookups = memory_hits + memory_misses
    served = memory_hits + store_hits
    rate = served / lookups if lookups else 0.0
    line = (f"sweep cache: {lookups} lookups, memory {memory_hits} hits / "
            f"{memory_misses} misses, store {store_hits} hits / "
            f"{store_misses} misses — {rate:.0%} served without recompute")
    if bytes_read or bytes_written:
        line += (f"; store I/O {bytes_read / 1024:.0f} KiB read, "
                 f"{bytes_written / 1024:.0f} KiB written")
    return line


def eventsim_engine_from_metrics(metrics: Dict) -> Optional[str]:
    """One line on how the event-driven validation surfaces were made
    (batched lockstep lanes vs scalar fork-fallback runs); None when the
    export holds neither eventsim series — e.g. the surfaces were all
    served from the sweep store and no engine ran at all."""
    lanes = _counter_total(metrics, "eventsim_batch_lanes_total")
    fallbacks = _counter_total(metrics, "eventsim_batch_fallback_total")
    if lanes == fallbacks == 0.0 and (
            "eventsim_batch_lanes_total" not in metrics
            and "eventsim_batch_fallback_total" not in metrics):
        return None
    return (f"eventsim: {int(lanes)} lanes via the batched lockstep "
            f"engine, {int(fallbacks)} scalar fork-fallback runs")


def cache_effectiveness_from_metrics(metrics: Dict) -> Optional[str]:
    """The cache-effectiveness line from an exported metrics registry
    (the JSON written by ``--metrics-out``); None when the export holds
    no sweep-cache series."""
    names = ("sweep_cache_hits_total", "sweep_cache_misses_total",
             "sweep_store_hits_total", "sweep_store_misses_total",
             "sweep_store_bytes")
    if not any(name in metrics for name in names):
        return None
    memory_hits = _counter_total(metrics, "sweep_cache_hits_total",
                                 tier="memory")
    memory_misses = _counter_total(metrics, "sweep_cache_misses_total",
                                   tier="memory")
    store_hits = _counter_total(metrics, "sweep_cache_hits_total",
                                tier="store")
    store_misses = _counter_total(metrics, "sweep_cache_misses_total",
                                  tier="store")
    if store_hits == store_misses == 0:
        # Fall back to the store's own live counters (e.g. a metrics
        # export taken before SweepCache.publish ran).
        store_hits = _counter_total(metrics, "sweep_store_hits_total")
        store_misses = _counter_total(metrics, "sweep_store_misses_total")
    return format_cache_effectiveness(
        int(memory_hits), int(memory_misses),
        int(store_hits), int(store_misses),
        bytes_read=_counter_total(metrics, "sweep_store_bytes",
                                  direction="read"),
        bytes_written=_counter_total(metrics, "sweep_store_bytes",
                                     direction="write"),
    )
