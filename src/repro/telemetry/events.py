"""Typed controller-decision events and their wire schema.

Every decision the two-level controller makes — a kernel launch completing,
a workload phase change, a coarse-grain jump, a fine-grain step or revert,
convergence, a configuration being applied — is describable as a small
frozen dataclass carrying the kernel name, the launch iteration, the
triggering launch's execution time, and the decision's payload (old/new
:class:`~repro.gpu.config.HardwareConfig`, sensitivity bins, ...).

Events serialize to flat JSON records (``to_record`` / ``event_from_record``)
tagged with the schema version, so traces written today stay loadable —
and loudly rejected, not silently misread, once the schema moves on.

Schema evolution rules (enforced by ``tools/check_event_schema.py``):

* adding/removing an event type or changing its fields requires bumping
  :data:`SCHEMA_VERSION` and recording the new event-type set in
  :data:`SCHEMA_MANIFEST`,
* every event type must be documented in ``docs/telemetry.md``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Type

from repro.errors import TelemetryError
from repro.gpu.config import HardwareConfig

#: Version tag written into every serialized record. Bump on any change to
#: the event-type set or to an event's fields.
SCHEMA_VERSION = 1

#: Keys of a serialized :class:`~repro.gpu.config.HardwareConfig`.
_CONFIG_KEYS = frozenset(("n_cu", "f_cu", "f_mem"))


def config_to_record(config: HardwareConfig) -> Dict[str, float]:
    """Serialize a hardware configuration to a plain mapping."""
    return {"n_cu": config.n_cu, "f_cu": config.f_cu, "f_mem": config.f_mem}


def config_from_record(record: Mapping[str, float]) -> HardwareConfig:
    """Rebuild a hardware configuration from its serialized mapping."""
    return HardwareConfig(
        n_cu=int(record["n_cu"]),
        f_cu=float(record["f_cu"]),
        f_mem=float(record["f_mem"]),
    )


@dataclass(frozen=True)
class TelemetryEvent:
    """Base event: every event names its kernel, iteration and timing.

    Attributes:
        kernel: qualified kernel name (e.g. ``"Sort.BottomScan"``).
        iteration: application iteration of the triggering launch.
        time_s: execution time (s) of the triggering launch.
    """

    kernel: str
    iteration: int
    time_s: float

    @property
    def event_type(self) -> str:
        """The wire name of this event (its class name)."""
        return type(self).__name__

    def to_record(self) -> Dict[str, Any]:
        """Serialize to a JSON-compatible record (schema-version tagged)."""
        record: Dict[str, Any] = {"v": SCHEMA_VERSION, "type": self.event_type}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, HardwareConfig):
                value = config_to_record(value)
            elif isinstance(value, tuple):
                value = list(value)
            record[field.name] = value
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "TelemetryEvent":
        """Rebuild an event of this type from its serialized record."""
        kwargs: Dict[str, Any] = {}
        for field in dataclasses.fields(cls):
            try:
                value = record[field.name]
            except KeyError:
                raise TelemetryError(
                    f"{cls.__name__} record missing field {field.name!r}"
                ) from None
            if isinstance(value, Mapping) and _CONFIG_KEYS <= set(value):
                value = config_from_record(value)
            elif isinstance(value, list):
                value = tuple(value)
            kwargs[field.name] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class KernelLaunch(TelemetryEvent):
    """One kernel launch completed (the replay/residency backbone)."""

    config: HardwareConfig
    power_w: float
    energy_j: float


@dataclass(frozen=True)
class PhaseChange(TelemetryEvent):
    """The phase detector declared a new workload phase."""

    #: config-invariant workload-identity vector of the new phase
    identity: Tuple[float, ...]
    #: ordinal of this phase within the kernel (1 = first phase)
    phase_index: int


@dataclass(frozen=True)
class CGJump(TelemetryEvent):
    """The coarse-grain block jumped all tunables (``SetCU_Freq_MemBW``)."""

    old_config: HardwareConfig
    new_config: HardwareConfig
    compute_bin: str
    bandwidth_bin: str
    compute_sensitivity: float
    bandwidth_sensitivity: float


@dataclass(frozen=True)
class FGStep(TelemetryEvent):
    """The fine-grain loop moved one tunable one grid step."""

    tunable: str
    direction: int
    old_config: HardwareConfig
    new_config: HardwareConfig
    compute_bin: str
    bandwidth_bin: str


@dataclass(frozen=True)
class FGRevert(TelemetryEvent):
    """A fine-grain move (or a CG jump under validation) was reverted."""

    #: the reverted tunable (``__cg__`` for a wholesale CG-jump revert)
    tunable: str
    old_config: HardwareConfig
    new_config: HardwareConfig


@dataclass(frozen=True)
class FGConverged(TelemetryEvent):
    """The fine-grain loop converged to its best state for this phase."""

    config: HardwareConfig


@dataclass(frozen=True)
class ConfigApplied(TelemetryEvent):
    """The controller changed a kernel's configuration for the next launch.

    ``source`` attributes the change: ``"cg"`` (coarse-grain jump),
    ``"fg"`` (fine-grain decision) or ``"recall"`` (phase-memory restore).
    """

    old_config: HardwareConfig
    new_config: HardwareConfig
    source: str


#: Wire name -> event class, the loader's dispatch table.
EVENT_TYPES: Dict[str, Type[TelemetryEvent]] = {
    cls.__name__: cls
    for cls in (
        KernelLaunch,
        PhaseChange,
        CGJump,
        FGStep,
        FGRevert,
        FGConverged,
        ConfigApplied,
    )
}

#: Frozen history of event-type sets per schema version. Adding an event
#: type without bumping :data:`SCHEMA_VERSION` (and appending here) is a
#: schema break that ``tools/check_event_schema.py`` rejects.
SCHEMA_MANIFEST: Dict[int, Tuple[str, ...]] = {
    1: (
        "CGJump",
        "ConfigApplied",
        "FGConverged",
        "FGRevert",
        "FGStep",
        "KernelLaunch",
        "PhaseChange",
    ),
}


def event_from_record(record: Mapping[str, Any]) -> TelemetryEvent:
    """Deserialize one record, validating schema version and event type.

    Raises:
        TelemetryError: on a version mismatch, an unknown event type, or
            a structurally invalid record.
    """
    version = record.get("v")
    if version != SCHEMA_VERSION:
        raise TelemetryError(
            f"trace record has schema version {version!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    type_name = record.get("type")
    event_cls = EVENT_TYPES.get(type_name)
    if event_cls is None:
        raise TelemetryError(f"unknown telemetry event type {type_name!r}")
    return event_cls.from_record(record)
