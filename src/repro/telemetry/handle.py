"""The injectable telemetry handle and its null-object default.

Instrumented components (the controller blocks, the runner, the CLI)
accept an optional handle and fall back to :data:`NULL_TELEMETRY`. The
null object reports ``enabled = False`` — hot paths guard event
construction behind that flag — and serves no-op metrics and profiler
stand-ins, so a component can also call straight through without
branching. Either way, with telemetry disabled the control decisions and
run outputs are bit-identical to an uninstrumented build.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import NULL_SECTION, Profiler
from repro.telemetry.spans import (
    NULL_SPAN_TRACKER,
    SpanHandle,
    SpanTracker,
)


class Telemetry:
    """A live telemetry handle: event sinks + metrics + profiler + spans.

    Args:
        sink: optional initial event sink (anything with ``write(event)``).
        metrics: metrics registry to use (fresh one by default).
        profiler: profiler to use (fresh one by default).
        spans: span tracker to use (fresh one by default); forked workers
            pass a shadow tracker sharing the parent's epoch.
    """

    enabled = True

    def __init__(self, sink: Optional[Any] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 profiler: Optional[Profiler] = None,
                 spans: Optional[SpanTracker] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler if profiler is not None else Profiler()
        self.spans = spans if spans is not None else SpanTracker()
        self._sinks: List[Any] = [sink] if sink is not None else []

    @property
    def sinks(self) -> tuple:
        """The attached event sinks."""
        return tuple(self._sinks)

    def add_sink(self, sink: Any) -> None:
        """Attach another event sink."""
        self._sinks.append(sink)

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver one event to every sink."""
        for sink in self._sinks:
            sink.write(event)

    def emit_all(self, events: Iterable[TelemetryEvent]) -> None:
        """Deliver a batch of events in order."""
        for event in events:
            self.emit(event)

    def time(self, name: str):
        """Context manager timing a profiler section."""
        return self.profiler.section(name)

    def span(self, name: str, **labels: Any) -> SpanHandle:
        """Context manager opening a hierarchical span (plus profiler
        section of the same name, so profile and span totals agree).

        The open span becomes the ambient parent for spans entered
        below it on the same thread (see
        :func:`~repro.telemetry.spans.capture_span_context` for how
        fan-out carries it across workers).
        """
        return SpanHandle(self, self.spans, name, labels)

    def close(self) -> None:
        """Close every sink that supports closing."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _NullMetric:
    """No-op counter/gauge/histogram stand-in."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass


_NULL_METRIC = _NullMetric()


class _NullRegistry:
    """Registry stand-in handing out the shared no-op instrument."""

    __slots__ = ()

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "",
                  buckets: Any = None) -> _NullMetric:
        return _NULL_METRIC


class _NullProfiler:
    """Profiler stand-in reusing the shared no-op section."""

    __slots__ = ()

    def section(self, name: str):
        return NULL_SECTION

    def record(self, name: str, elapsed_s: float) -> None:
        pass

    def stats(self) -> dict:
        return {}

    def report(self) -> str:
        return "profiler: disabled"


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    A single shared instance (:data:`NULL_TELEMETRY`) is the default for
    every instrumented component, keeping the uninstrumented hot path to
    one attribute check.
    """

    enabled = False

    metrics = _NullRegistry()
    profiler = _NullProfiler()
    spans = NULL_SPAN_TRACKER

    def emit(self, event: Any) -> None:
        pass

    def emit_all(self, events: Iterable[Any]) -> None:
        pass

    def time(self, name: str):
        return NULL_SECTION

    def span(self, name: str, **labels: Any):
        return NULL_SECTION

    def add_sink(self, sink: Any) -> None:
        # Silent no-op: the null handle is shared process-wide and must
        # stay inert.
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTelemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The process-wide disabled handle (default for all components).
NULL_TELEMETRY = NullTelemetry()


def coalesce(telemetry: Optional[Any]) -> Any:
    """``telemetry`` if given, else the shared null handle."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
