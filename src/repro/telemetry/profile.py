"""Wall-time profiling hooks for the simulator and policy hot paths.

A :class:`Profiler` accumulates per-section wall time behind lightweight
context managers (``with profiler.section("fg.propose"): ...``) or the
:meth:`Profiler.profiled` decorator. The report answers "where did this
run's wall time go" — launch model vs monitoring vs CG prediction vs FG
search — which is the measurement substrate every perf PR needs.

The null path (:data:`NULL_PROFILER`) reuses one no-op context manager so
instrumented code pays a single attribute lookup when profiling is off.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class SectionStat:
    """Accumulated wall time of one profiled section."""

    name: str
    count: int
    total_s: float

    @property
    def mean_s(self) -> float:
        """Mean wall time per entry (0 for an un-entered section)."""
        return self.total_s / self.count if self.count else 0.0


class _Section:
    """One timed entry into a named section (re-entrant via new instances)."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.record(self._name, time.perf_counter() - self._start)


class _NullSection:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The shared no-op section (allocation-free disabled path).
NULL_SECTION = _NullSection()


class Profiler:
    """Accumulates per-section counts and wall time."""

    def __init__(self) -> None:
        # name -> [count, total_seconds]; a plain list keeps the hot
        # record() path to two float ops.
        self._stats: Dict[str, List[float]] = {}

    def section(self, name: str) -> _Section:
        """A context manager timing one entry into ``name``."""
        return _Section(self, name)

    def record(self, name: str, elapsed_s: float) -> None:
        """Fold one timed entry into the section's totals."""
        stat = self._stats.get(name)
        if stat is None:
            self._stats[name] = [1, elapsed_s]
        else:
            stat[0] += 1
            stat[1] += elapsed_s

    def profiled(self, name: str) -> Callable:
        """Decorator timing every call of the wrapped function."""
        def decorate(func: Callable) -> Callable:
            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                start = time.perf_counter()
                try:
                    return func(*args, **kwargs)
                finally:
                    self.record(name, time.perf_counter() - start)
            return wrapper
        return decorate

    def stats(self) -> Dict[str, SectionStat]:
        """All sections' accumulated statistics."""
        return {
            name: SectionStat(name=name, count=int(count), total_s=total)
            for name, (count, total) in self._stats.items()
        }

    def reset(self) -> None:
        """Forget all sections."""
        self._stats.clear()

    def report(self) -> str:
        """Per-section wall-time breakdown, largest share first."""
        stats = sorted(self.stats().values(),
                       key=lambda s: s.total_s, reverse=True)
        if not stats:
            return "profiler: no sections recorded"
        grand_total = sum(s.total_s for s in stats)
        lines = [f"{'section':<24s} {'calls':>8s} {'total s':>10s} "
                 f"{'mean us':>10s} {'share':>7s}"]
        for stat in stats:
            share = stat.total_s / grand_total if grand_total > 0 else 0.0
            lines.append(
                f"{stat.name:<24s} {stat.count:>8d} {stat.total_s:>10.4f} "
                f"{stat.mean_s * 1e6:>10.1f} {share:>6.1%}"
            )
        return "\n".join(lines)
