"""Wall-time profiling hooks for the simulator and policy hot paths.

A :class:`Profiler` accumulates per-section wall time behind lightweight
context managers (``with profiler.section("fg.propose"): ...``) or the
:meth:`Profiler.profiled` decorator. The report answers "where did this
run's wall time go" — launch model vs monitoring vs CG prediction vs FG
search — which is the measurement substrate every perf PR needs.

Sections nest: each thread keeps its **own** stack of open sections
(``threading.local``), so concurrent pipeline nodes timing the same
names never interleave into one flat chain, and a section's *self* time
(total minus directly nested children on the same thread) is accounted
correctly under parallel fan-out. Accumulation itself is behind one
lock, so many worker threads can record into one shared profiler.

The null path (:data:`NULL_PROFILER`) reuses one no-op context manager so
instrumented code pays a single attribute lookup when profiling is off.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class SectionStat:
    """Accumulated wall time of one profiled section."""

    name: str
    count: int
    total_s: float
    child_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean wall time per entry (0 for an un-entered section)."""
        return self.total_s / self.count if self.count else 0.0

    @property
    def self_s(self) -> float:
        """Wall time excluding directly nested sections."""
        return max(0.0, self.total_s - self.child_s)


class _Section:
    """One timed entry into a named section (re-entrant via new instances)."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        # One child-time accumulator per open section, on this thread's
        # private stack.
        self._profiler._stack().append(0.0)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._profiler._stack()
        child_s = stack.pop()
        if stack:
            stack[-1] += elapsed
        self._profiler.record(self._name, elapsed, child_s)


class _NullSection:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The shared no-op section (allocation-free disabled path).
NULL_SECTION = _NullSection()


class Profiler:
    """Accumulates per-section counts and wall time (thread-safe)."""

    def __init__(self) -> None:
        # name -> [count, total_seconds, child_seconds]; a plain list
        # keeps the hot record() path to a few float ops.
        self._stats: Dict[str, List[float]] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[float]:
        """This thread's stack of open-section child accumulators."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def section(self, name: str) -> _Section:
        """A context manager timing one entry into ``name``."""
        return _Section(self, name)

    def record(self, name: str, elapsed_s: float,
               child_s: float = 0.0) -> None:
        """Fold one timed entry into the section's totals."""
        with self._lock:
            stat = self._stats.get(name)
            if stat is None:
                self._stats[name] = [1, elapsed_s, child_s]
            else:
                stat[0] += 1
                stat[1] += elapsed_s
                stat[2] += child_s

    def profiled(self, name: str) -> Callable:
        """Decorator timing every call of the wrapped function."""
        def decorate(func: Callable) -> Callable:
            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with _Section(self, name):
                    return func(*args, **kwargs)
            return wrapper
        return decorate

    def stats(self) -> Dict[str, SectionStat]:
        """All sections' accumulated statistics."""
        with self._lock:
            return {
                name: SectionStat(name=name, count=int(count),
                                  total_s=total, child_s=child)
                for name, (count, total, child) in self._stats.items()
            }

    def reset(self) -> None:
        """Forget all sections."""
        with self._lock:
            self._stats.clear()

    def report(self) -> str:
        """Per-section wall-time breakdown, largest share first."""
        stats = sorted(self.stats().values(),
                       key=lambda s: s.total_s, reverse=True)
        if not stats:
            return "profiler: no sections recorded"
        # Shares are of summed *self* time: nested sections would double
        # count their parents if shares were taken over totals.
        grand_self = sum(s.self_s for s in stats)
        lines = [f"{'section':<24s} {'calls':>8s} {'total s':>10s} "
                 f"{'self s':>10s} {'mean us':>10s} {'share':>7s}"]
        for stat in stats:
            share = stat.self_s / grand_self if grand_self > 0 else 0.0
            lines.append(
                f"{stat.name:<24s} {stat.count:>8d} {stat.total_s:>10.4f} "
                f"{stat.self_s:>10.4f} {stat.mean_s * 1e6:>10.1f} "
                f"{share:>6.1%}"
            )
        return "\n".join(lines)
