"""Structured telemetry for the Harmonia runtime.

Five pieces, composable through one injectable handle:

* :mod:`repro.telemetry.events` — typed controller-decision events
  (``KernelLaunch``, ``PhaseChange``, ``CGJump``, ``FGStep``, ...) with a
  versioned JSON wire schema,
* :mod:`repro.telemetry.metrics` — a labelled counter/gauge/histogram
  registry (``cg_actions_total{kernel=...}``, ``launch_time_seconds``),
* :mod:`repro.telemetry.export` — append-only JSONL sink, loader, and a
  replay view compatible with :class:`~repro.runtime.trace.RunTrace`,
* :mod:`repro.telemetry.profile` — wall-time profiling hooks for the
  simulator and policy hot paths,
* :mod:`repro.telemetry.spans` — hierarchical spans with ambient context
  propagation across thread/process fan-out, Chrome trace-event export
  (Perfetto-loadable) and a self-vs-total critical-path report.

Instrumented components accept a :class:`Telemetry` handle and default to
:data:`NULL_TELEMETRY`, whose operations are no-ops — with telemetry
disabled, control decisions and experiment outputs are bit-identical to
an uninstrumented build.
"""

from repro.telemetry.events import (
    SCHEMA_VERSION,
    CGJump,
    ConfigApplied,
    EVENT_TYPES,
    FGConverged,
    FGRevert,
    FGStep,
    KernelLaunch,
    PhaseChange,
    TelemetryEvent,
    event_from_record,
)
from repro.telemetry.export import (
    InMemorySink,
    JsonlSink,
    ReplayTrace,
    export_trace,
    load_events,
    replay_trace,
)
from repro.telemetry.handle import NULL_TELEMETRY, NullTelemetry, Telemetry, coalesce
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.profile import Profiler, SectionStat
from repro.telemetry.spans import (
    SPAN_SCHEMA_VERSION,
    SpanRecord,
    SpanTracker,
    aggregate_spans,
    ambient_telemetry,
    capture_span_context,
    format_span_report,
    load_chrome_trace,
    span_tree,
    tree_signature,
    use_span_context,
    write_chrome_trace,
)

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "TelemetryEvent",
    "KernelLaunch",
    "PhaseChange",
    "CGJump",
    "FGStep",
    "FGRevert",
    "FGConverged",
    "ConfigApplied",
    "event_from_record",
    "JsonlSink",
    "InMemorySink",
    "ReplayTrace",
    "replay_trace",
    "load_events",
    "export_trace",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "coalesce",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Profiler",
    "SectionStat",
    "SPAN_SCHEMA_VERSION",
    "SpanRecord",
    "SpanTracker",
    "aggregate_spans",
    "ambient_telemetry",
    "capture_span_context",
    "format_span_report",
    "load_chrome_trace",
    "span_tree",
    "tree_signature",
    "use_span_context",
    "write_chrome_trace",
]
