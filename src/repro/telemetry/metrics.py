"""Labelled counters, gauges and histograms.

A small Prometheus-flavoured metrics vocabulary for the controller and
runtime: monotonically increasing **counters** (``cg_actions_total``,
``fg_dither_events_total``), point-in-time **gauges**, and bucketed
**histograms** (``launch_time_seconds``). Every instrument supports
key=value labels; each distinct label set is its own time series.

Instruments are obtained from a :class:`MetricsRegistry`, which is the
unit of export — ``as_dict`` for JSON emission (the CLI's
``--metrics-out``) and ``render_text`` for a human-readable dump.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TelemetryError

#: Internal key for one label set: sorted (name, value) pairs.
_LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets, tuned for kernel-launch times (seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class _Instrument:
    """Shared naming/labelling machinery of all instrument kinds."""

    kind = "instrument"

    def __init__(self, name: str, help: str = ""):
        if not name or not name.replace("_", "a").isalnum():
            raise TelemetryError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._series: Dict[_LabelKey, Any] = {}

    def labelsets(self) -> List[Dict[str, str]]:
        """Every label set observed so far, as plain dicts."""
        return [dict(key) for key in self._series]


class Counter(_Instrument):
    """A monotonically increasing count per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Increase the series selected by ``labels`` by ``amount``."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current count of one series (0 if never incremented)."""
        return self._series.get(_label_key(labels), 0.0)

    def samples(self) -> List[Dict[str, Any]]:
        """All series as ``{"labels": ..., "value": ...}`` rows."""
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Gauge(_Instrument):
    """A point-in-time value per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Set the series selected by ``labels``."""
        self._series[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> Optional[float]:
        """Current value of one series (None if never set)."""
        return self._series.get(_label_key(labels))

    def samples(self) -> List[Dict[str, Any]]:
        """All series as ``{"labels": ..., "value": ...}`` rows."""
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Bucketed value distribution per label set.

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    tail. Bucket counts are per-bucket (not cumulative); the exporter
    cumulates when a Prometheus-style view is wanted.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise TelemetryError(f"histogram {name!r} needs >= 1 bucket")
        if len(set(bounds)) != len(bounds):
            raise TelemetryError(f"histogram {name!r} has duplicate buckets")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the series selected by ``labels``."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.buckets))
            self._series[key] = series
        index = len(self.buckets)  # +Inf by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        series.counts[index] += 1
        series.sum += value
        series.count += 1

    def count(self, **labels: Any) -> int:
        """Observation count of one series."""
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def total(self, **labels: Any) -> float:
        """Sum of all observed values of one series."""
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def bucket_counts(self, **labels: Any) -> Tuple[int, ...]:
        """Per-bucket counts (last entry is the +Inf bucket)."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return tuple([0] * (len(self.buckets) + 1))
        return tuple(series.counts)

    def samples(self) -> List[Dict[str, Any]]:
        """All series with buckets, sum and count."""
        return [
            {
                "labels": dict(key),
                "buckets": list(zip(list(self.buckets) + ["+Inf"],
                                    series.counts)),
                "sum": series.sum,
                "count": series.count,
            }
            for key, series in sorted(self._series.items())
        ]


class MetricsRegistry:
    """Creates and owns named instruments (one registry per run)."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def instruments(self) -> Mapping[str, _Instrument]:
        """All registered instruments by name."""
        return dict(self._instruments)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible dump of every instrument and series."""
        return {
            name: {
                "type": instrument.kind,
                "help": instrument.help,
                "samples": instrument.samples(),
            }
            for name, instrument in sorted(self._instruments.items())
        }

    def write_json(self, path) -> None:
        """Write :meth:`as_dict` to ``path`` as pretty-printed JSON."""
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render_text(self) -> str:
        """Human-readable exposition of all series."""
        lines: List[str] = []
        for name, instrument in sorted(self._instruments.items()):
            lines.append(f"# {instrument.kind} {name}"
                         + (f" — {instrument.help}" if instrument.help else ""))
            for sample in instrument.samples():
                labels = ",".join(f"{k}={v}" for k, v in
                                  sorted(sample["labels"].items()))
                label_text = "{" + labels + "}" if labels else ""
                if instrument.kind == "histogram":
                    lines.append(f"{name}{label_text} count={sample['count']} "
                                 f"sum={sample['sum']:.6g}")
                else:
                    lines.append(f"{name}{label_text} {sample['value']:g}")
        return "\n".join(lines)
