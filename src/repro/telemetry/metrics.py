"""Labelled counters, gauges and histograms.

A small Prometheus-flavoured metrics vocabulary for the controller and
runtime: monotonically increasing **counters** (``cg_actions_total``,
``fg_dither_events_total``), point-in-time **gauges**, and bucketed
**histograms** (``launch_time_seconds``). Every instrument supports
key=value labels; each distinct label set is its own time series.

Instruments are obtained from a :class:`MetricsRegistry`, which is the
unit of export — ``as_dict`` for JSON emission (the CLI's
``--metrics-out``), ``render_text`` for a human-readable dump, and
``render_prometheus`` for the standard text exposition format.

Registries are **mergeable**: ``as_dict`` doubles as a snapshot wire
format that :meth:`MetricsRegistry.merge` folds back in — counters and
histogram buckets add, gauges last-write-win. That is how per-worker
registries built in forked processes (which share nothing with the
parent) are carried back over the process boundary and aggregated, so
``sweep_store_*`` and cache-effectiveness counters are correct under
``--jobs N`` exactly as under a serial run. All mutation is behind
per-instrument locks, so thread fan-out can record into one shared
registry directly.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TelemetryError

#: Internal key for one label set: sorted (name, value) pairs.
_LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets, tuned for kernel-launch times (seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class _Instrument:
    """Shared naming/labelling machinery of all instrument kinds."""

    kind = "instrument"

    def __init__(self, name: str, help: str = ""):
        if not name or not name.replace("_", "a").isalnum():
            raise TelemetryError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._series: Dict[_LabelKey, Any] = {}
        self._lock = threading.Lock()

    def labelsets(self) -> List[Dict[str, str]]:
        """Every label set observed so far, as plain dicts."""
        with self._lock:
            return [dict(key) for key in self._series]

    def merge_samples(self, samples: Sequence[Mapping[str, Any]]) -> None:
        """Fold an ``as_dict`` sample list into this instrument."""
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing count per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Increase the series selected by ``labels`` by ``amount``."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current count of one series (0 if never incremented)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def samples(self) -> List[Dict[str, Any]]:
        """All series as ``{"labels": ..., "value": ...}`` rows."""
        with self._lock:
            return [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]

    def merge_samples(self, samples: Sequence[Mapping[str, Any]]) -> None:
        """Add another registry's counts into this counter."""
        with self._lock:
            for sample in samples:
                key = _label_key(sample["labels"])
                amount = float(sample["value"])
                if amount < 0:
                    raise TelemetryError(
                        f"counter {self.name!r} snapshot has negative "
                        f"value {amount}"
                    )
                self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(_Instrument):
    """A point-in-time value per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Set the series selected by ``labels``."""
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> Optional[float]:
        """Current value of one series (None if never set)."""
        with self._lock:
            return self._series.get(_label_key(labels))

    def samples(self) -> List[Dict[str, Any]]:
        """All series as ``{"labels": ..., "value": ...}`` rows."""
        with self._lock:
            return [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]

    def merge_samples(self, samples: Sequence[Mapping[str, Any]]) -> None:
        """Adopt another registry's gauge values (last write wins)."""
        with self._lock:
            for sample in samples:
                self._series[_label_key(sample["labels"])] = float(
                    sample["value"]
                )


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Bucketed value distribution per label set.

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    tail. Bucket counts are per-bucket (not cumulative); the exporter
    cumulates when a Prometheus-style view is wanted.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise TelemetryError(f"histogram {name!r} needs >= 1 bucket")
        if len(set(bounds)) != len(bounds):
            raise TelemetryError(f"histogram {name!r} has duplicate buckets")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the series selected by ``labels``."""
        key = _label_key(labels)
        index = len(self.buckets)  # +Inf by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def count(self, **labels: Any) -> int:
        """Observation count of one series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def total(self, **labels: Any) -> float:
        """Sum of all observed values of one series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.sum if series is not None else 0.0

    def bucket_counts(self, **labels: Any) -> Tuple[int, ...]:
        """Per-bucket counts (last entry is the +Inf bucket)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return tuple([0] * (len(self.buckets) + 1))
            return tuple(series.counts)

    def samples(self) -> List[Dict[str, Any]]:
        """All series with buckets, sum and count."""
        with self._lock:
            return [
                {
                    "labels": dict(key),
                    "buckets": list(zip(list(self.buckets) + ["+Inf"],
                                        series.counts)),
                    "sum": series.sum,
                    "count": series.count,
                }
                for key, series in sorted(self._series.items())
            ]

    def merge_samples(self, samples: Sequence[Mapping[str, Any]]) -> None:
        """Add another registry's bucket counts into this histogram.

        Raises:
            TelemetryError: when the snapshot's bucket bounds differ
                from this histogram's — silently misfiling counts would
                corrupt the distribution.
        """
        expected = [float(b) for b in self.buckets]
        with self._lock:
            for sample in samples:
                bounds = [b for b, _ in sample["buckets"]]
                finite = [float(b) for b in bounds[:-1]]
                if finite != expected:
                    raise TelemetryError(
                        f"histogram {self.name!r} snapshot has buckets "
                        f"{finite}, expected {expected}"
                    )
                key = _label_key(sample["labels"])
                series = self._series.get(key)
                if series is None:
                    series = _HistogramSeries(len(self.buckets))
                    self._series[key] = series
                for index, (_, bucket_count) in enumerate(sample["buckets"]):
                    series.counts[index] += int(bucket_count)
                series.sum += float(sample["sum"])
                series.count += int(sample["count"])


class MetricsRegistry:
    """Creates and owns named instruments (one registry per run)."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def instruments(self) -> Mapping[str, _Instrument]:
        """All registered instruments by name."""
        with self._lock:
            return dict(self._instruments)

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold an ``as_dict``-shaped snapshot into this registry.

        Counters and histogram buckets add; gauges take the snapshot's
        value. Instruments absent here are created on the fly (a
        histogram adopts the snapshot's bucket bounds), so merging a
        worker registry into a fresh parent works without
        pre-registration.

        Raises:
            TelemetryError: on a kind clash with an existing instrument,
                an unknown kind, or histogram bucket-bound mismatch.
        """
        for name, entry in sorted(snapshot.items()):
            kind = entry.get("type")
            help = entry.get("help", "")
            samples = entry.get("samples", [])
            if kind == "counter":
                instrument = self.counter(name, help)
            elif kind == "gauge":
                instrument = self.gauge(name, help)
            elif kind == "histogram":
                if samples:
                    bounds = [float(b) for b, _ in
                              samples[0]["buckets"][:-1]]
                else:
                    bounds = list(DEFAULT_TIME_BUCKETS)
                instrument = self.histogram(name, help, buckets=bounds)
            else:
                raise TelemetryError(
                    f"snapshot metric {name!r} has unknown kind {kind!r}"
                )
            instrument.merge_samples(samples)

    @classmethod
    def from_dict(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """A fresh registry rebuilt from an ``as_dict`` snapshot."""
        registry = cls()
        registry.merge(snapshot)
        return registry

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible dump of every instrument and series."""
        return {
            name: {
                "type": instrument.kind,
                "help": instrument.help,
                "samples": instrument.samples(),
            }
            for name, instrument in sorted(self.instruments().items())
        }

    def write_json(self, path) -> None:
        """Write :meth:`as_dict` to ``path`` as pretty-printed JSON."""
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render_text(self) -> str:
        """Human-readable exposition of all series."""
        lines: List[str] = []
        for name, instrument in sorted(self.instruments().items()):
            lines.append(f"# {instrument.kind} {name}"
                         + (f" — {instrument.help}" if instrument.help else ""))
            for sample in instrument.samples():
                labels = ",".join(f"{k}={v}" for k, v in
                                  sorted(sample["labels"].items()))
                label_text = "{" + labels + "}" if labels else ""
                if instrument.kind == "histogram":
                    lines.append(f"{name}{label_text} count={sample['count']} "
                                 f"sum={sample['sum']:.6g}")
                else:
                    lines.append(f"{name}{label_text} {sample['value']:g}")
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4).

        Counters and gauges emit one line per series; histograms emit
        cumulative ``_bucket{le=...}`` series plus ``_sum`` and
        ``_count``, matching what a scrape endpoint would serve.
        """
        lines: List[str] = []
        for name, instrument in sorted(self.instruments().items()):
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for sample in instrument.samples():
                if instrument.kind == "histogram":
                    cumulative = 0
                    for bound, bucket_count in sample["buckets"]:
                        cumulative += bucket_count
                        le = "+Inf" if bound == "+Inf" else _prom_number(bound)
                        labels = dict(sample["labels"], le=le)
                        lines.append(f"{name}_bucket{_prom_labels(labels)} "
                                     f"{cumulative}")
                    lines.append(f"{name}_sum{_prom_labels(sample['labels'])} "
                                 f"{_prom_number(sample['sum'])}")
                    lines.append(
                        f"{name}_count{_prom_labels(sample['labels'])} "
                        f"{sample['count']}"
                    )
                else:
                    lines.append(f"{name}{_prom_labels(sample['labels'])} "
                                 f"{_prom_number(sample['value'])}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_number(value: Any) -> str:
    """A float/int in Prometheus exposition syntax (no trailing .0)."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _prom_labels(labels: Mapping[str, Any]) -> str:
    """``{k="v",...}`` with escaped values; empty string for no labels."""
    if not labels:
        return ""
    parts = []
    for key, value in sorted(labels.items()):
        escaped = (str(value).replace("\\", r"\\")
                   .replace("\n", r"\n").replace('"', r'\"'))
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"
