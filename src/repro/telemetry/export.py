"""JSONL trace export, loading and replay.

The wire format is one JSON object per line, each tagged with the schema
version and event type (see :mod:`repro.telemetry.events`). The sink is
append-only — a crashed run leaves a readable prefix — and the loader
rebuilds typed events, from which :func:`replay_trace` reconstructs a
:class:`~repro.runtime.trace.RunTrace`-compatible view: the Figure 15/16
residency tables and total-time accounting work on a replayed trace
exactly as on a live one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Union

from repro.errors import TelemetryError
from repro.gpu.config import HardwareConfig
from repro.runtime.trace import RunTrace
from repro.telemetry.events import (
    KernelLaunch,
    TelemetryEvent,
    event_from_record,
)


class JsonlSink:
    """Append-only JSONL event sink.

    Args:
        path: file to append records to (created if missing).
    """

    def __init__(self, path):
        self._path = str(path)
        self._file = open(path, "a")
        self._count = 0

    @property
    def path(self) -> str:
        """The file being appended to."""
        return self._path

    @property
    def count(self) -> int:
        """Records written through this sink instance."""
        return self._count

    def write(self, event: TelemetryEvent) -> None:
        """Append one event as a JSON line."""
        if self._file is None:
            raise TelemetryError(f"sink {self._path!r} is closed")
        self._file.write(json.dumps(event.to_record(), sort_keys=True) + "\n")
        self._count += 1

    def flush(self) -> None:
        """Flush buffered lines to disk."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Flush, fsync and close the underlying file (idempotent).

        The fsync makes the trace durable at close: a machine crash
        right after a clean run cannot lose buffered tail records. A
        crash *mid*-run can still truncate the final line — the loader
        tolerates exactly that (see :func:`load_records`).
        """
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InMemorySink:
    """Event sink keeping events in a list (tests, summarization)."""

    def __init__(self) -> None:
        self.events: List[TelemetryEvent] = []

    def write(self, event: TelemetryEvent) -> None:
        """Append one event."""
        self.events.append(event)


def load_records(path) -> Iterator[dict]:
    """Yield raw JSON records from a JSONL trace file.

    A truncated **final** line — the footprint of a writer that crashed
    mid-append — is silently dropped, so the readable prefix of a
    crashed run replays cleanly. Malformed JSON anywhere *before* the
    final line is still an error: that is corruption, not truncation.
    """
    with open(path) as handle:
        lines = [(number, line.strip())
                 for number, line in enumerate(handle, start=1)
                 if line.strip()]
    for position, (line_number, line) in enumerate(lines):
        try:
            yield json.loads(line)
        except json.JSONDecodeError as error:
            if position == len(lines) - 1:
                return  # truncated tail of a crashed writer
            raise TelemetryError(
                f"{path}:{line_number}: not valid JSON ({error})"
            ) from None


def load_events(path) -> List[TelemetryEvent]:
    """Load and type every event of a JSONL trace file.

    Raises:
        TelemetryError: on malformed JSON, an unknown event type, or a
            schema-version mismatch.
    """
    return [event_from_record(record) for record in load_records(path)]


@dataclass(frozen=True)
class _ReplayPower:
    """Replayed power sample (only card power survives serialization)."""

    card: float


@dataclass(frozen=True)
class ReplayRecord:
    """One replayed launch — duck-types ``LaunchRecord`` for analysis."""

    iteration: int
    kernel_name: str
    config: HardwareConfig
    time: float
    power: _ReplayPower


class ReplayTrace(RunTrace):
    """A ``RunTrace`` rebuilt from serialized ``KernelLaunch`` events.

    Inherits all residency/time accounting unchanged; only record
    construction differs (replayed records carry the serialized subset
    of a launch result, not full counters).
    """

    @classmethod
    def from_events(cls, events: Iterable[TelemetryEvent]) -> "ReplayTrace":
        """Build a trace view from the ``KernelLaunch`` events in order."""
        trace = cls()
        for event in events:
            if isinstance(event, KernelLaunch):
                trace.append(ReplayRecord(
                    iteration=event.iteration,
                    kernel_name=event.kernel,
                    config=event.config,
                    time=event.time_s,
                    power=_ReplayPower(card=event.power_w),
                ))
        return trace


def replay_trace(source: Union[str, Iterable[TelemetryEvent]]) -> ReplayTrace:
    """Reconstruct a trace view from a JSONL path or an event sequence."""
    if isinstance(source, (str, os.PathLike)):
        source = load_events(source)
    return ReplayTrace.from_events(source)


def export_trace(trace: RunTrace, sink) -> int:
    """Write a completed run trace as ``KernelLaunch`` events.

    Uses :meth:`~repro.runtime.trace.RunTrace.to_dicts` so the exporter
    and the trace agree on the per-launch schema.

    Returns:
        The number of events written.
    """
    count = 0
    for row in trace.to_dicts():
        sink.write(KernelLaunch(
            kernel=row["kernel"],
            iteration=row["iteration"],
            time_s=row["time_s"],
            config=HardwareConfig(
                n_cu=row["config"]["n_cu"],
                f_cu=row["config"]["f_cu"],
                f_mem=row["config"]["f_mem"],
            ),
            power_w=row["power_w"],
            energy_j=row["energy_j"],
        ))
        count += 1
    return count
