"""Hierarchical wall-time spans with cross-worker context propagation.

A span is one timed region of the run — a pipeline node, a sweep-store
load, a batch-sweep compute, a Monte Carlo rollout — carrying a unique
id, its parent's id, the recording process/thread, and free-form labels.
Spans from every worker land in one :class:`SpanTracker`, so the whole
``reproduce`` run renders as a single tree even when work fanned out
over threads *and* processes.

Context propagation is ambient: entering a span (via
:meth:`~repro.telemetry.handle.Telemetry.span`) installs a
:class:`SpanContext` in a :data:`contextvars.ContextVar`; child spans
opened anywhere below it — including inside components that were never
handed a telemetry object, via :func:`ambient_telemetry` — attach as
children. Thread pools do **not** inherit context automatically, so
:func:`~repro.runtime.parallel.fan_out` captures the submitting
thread's context with :func:`capture_span_context` and re-installs it
in each worker with :func:`use_span_context`. Process pools cannot
share a tracker at all; ``fan_out_processes`` instead builds a shadow
tracker in each child (same epoch, parented on the submitting span) and
merges the returned records, so timestamps and the tree line up.

Exports are Chrome trace-event JSON (``ph: "X"`` complete events,
microsecond timestamps — load the file in Perfetto or
``chrome://tracing``) plus a self-vs-total text report with the
heaviest span chain as a critical path.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TelemetryError

#: Version of the span wire schema (Chrome trace ``args`` payload).
SPAN_SCHEMA_VERSION = 1

#: Append-only history of the span fields per schema version. The lint
#: (``tools/check_event_schema.py``) compares the current version's entry
#: against the live dataclass, so a field change without a version bump
#: fails CI.
SPAN_SCHEMA_MANIFEST: Dict[int, Tuple[str, ...]] = {
    1: (
        "end_s",
        "labels",
        "name",
        "parent_id",
        "pid",
        "span_id",
        "start_s",
        "tid",
    ),
}

#: Bits reserved for the per-process span counter; ids are
#: ``(pid << _COUNTER_BITS) + counter`` so ids allocated in forked
#: workers never collide with the parent's.
_COUNTER_BITS = 24

#: Process-global id counter. Global, not per-tracker: one pool worker
#: serves many items, each under a fresh shadow tracker — per-tracker
#: counters would restart and hand the same ``(pid, n)`` id to spans of
#: different items, corrupting the merged tree. A fork copies the
#: current value, which is fine: the child's pid term already separates
#: its ids from every other process's.
_ID_LOCK = threading.Lock()
_NEXT_ID = 0


def _allocate_span_id() -> int:
    global _NEXT_ID
    with _ID_LOCK:
        _NEXT_ID += 1
        return (os.getpid() << _COUNTER_BITS) + _NEXT_ID


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    Timestamps are seconds relative to the owning tracker's epoch (a
    ``time.perf_counter`` origin), not wall-clock time: ``perf_counter``
    is system-wide monotonic on Linux, so records from forked workers
    that share the parent's epoch align on one timeline.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: float
    pid: int
    tid: int
    labels: Tuple[Tuple[str, str], ...]

    @property
    def duration_s(self) -> float:
        """Wall time spent inside the span."""
        return self.end_s - self.start_s

    def label_dict(self) -> Dict[str, str]:
        """The labels as a plain dict."""
        return dict(self.labels)


def span_fields() -> Tuple[str, ...]:
    """The current :class:`SpanRecord` field names, sorted."""
    return tuple(sorted(field.name for field in fields(SpanRecord)))


def _freeze_labels(labels: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class SpanTracker:
    """Collects completed spans and allocates process-unique span ids.

    Args:
        epoch: ``time.perf_counter`` origin for timestamps; defaults to
            "now". Shadow trackers in forked workers are built with the
            parent's epoch so their records merge onto one timeline.
        root_parent: parent id assigned to spans opened with no ambient
            parent — a shadow tracker sets this to the submitting span's
            id, which is how a child process's subtree re-attaches.
    """

    def __init__(self, epoch: Optional[float] = None,
                 root_parent: Optional[int] = None):
        self.epoch = time.perf_counter() if epoch is None else float(epoch)
        self.root_parent = root_parent
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []

    def allocate_id(self) -> int:
        """A new span id, unique across trackers and forked processes."""
        return _allocate_span_id()

    def add(self, record: SpanRecord) -> None:
        """Record one completed span."""
        with self._lock:
            self._records.append(record)

    def extend(self, records: Sequence[SpanRecord]) -> None:
        """Merge completed spans from another tracker (worker results)."""
        with self._lock:
            self._records.extend(records)

    def records(self) -> List[SpanRecord]:
        """All completed spans, in completion order."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


@dataclass(frozen=True)
class SpanContext:
    """The ambient "current span" seen by code below an open span."""

    telemetry: Any
    tracker: SpanTracker
    span_id: Optional[int]


_CURRENT_SPAN: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro_current_span", default=None
)


def capture_span_context() -> Optional[SpanContext]:
    """The calling thread's span context (None outside any span).

    Thread pools do not inherit :mod:`contextvars` state from the
    submitting thread — capture here, re-install in the worker with
    :func:`use_span_context`.
    """
    return _CURRENT_SPAN.get()


@contextlib.contextmanager
def use_span_context(context: Optional[SpanContext]) -> Iterator[None]:
    """Install a captured span context for the duration of the block.

    ``None`` is accepted and leaves the ambient context untouched, so
    callers can pass :func:`capture_span_context`'s result through
    unconditionally.
    """
    if context is None:
        yield
        return
    token = _CURRENT_SPAN.set(context)
    try:
        yield
    finally:
        _CURRENT_SPAN.reset(token)


def ambient_telemetry() -> Any:
    """The telemetry handle of the enclosing span, or the null handle.

    Lets deep components (the platform's batch-sweep compute, the sweep
    cache) emit spans during a traced run without every constructor in
    between growing a ``telemetry`` parameter.
    """
    context = _CURRENT_SPAN.get()
    if context is not None:
        return context.telemetry
    from repro.telemetry.handle import NULL_TELEMETRY
    return NULL_TELEMETRY


class SpanHandle:
    """Context manager for one open span (created by ``Telemetry.span``).

    Entering starts the clock, installs the ambient context, and opens a
    same-named profiler section (so ``--profile`` totals and span totals
    agree); exiting records the :class:`SpanRecord`.
    """

    __slots__ = ("_telemetry", "_tracker", "_name", "_labels", "_span_id",
                 "_parent_id", "_start", "_token", "_section")

    def __init__(self, telemetry: Any, tracker: SpanTracker, name: str,
                 labels: Mapping[str, Any]):
        self._telemetry = telemetry
        self._tracker = tracker
        self._name = name
        self._labels = _freeze_labels(labels)
        self._span_id = 0
        self._parent_id: Optional[int] = None
        self._start = 0.0
        self._token = None
        self._section = None

    @property
    def span_id(self) -> int:
        """The id allocated for this span (0 before entry)."""
        return self._span_id

    def __enter__(self) -> "SpanHandle":
        tracker = self._tracker
        context = _CURRENT_SPAN.get()
        if context is not None and context.tracker is tracker:
            self._parent_id = context.span_id
        else:
            # No ambient parent in *this* tracker: a root span, or —
            # in a forked worker whose inherited context still points at
            # the parent process's tracker — a child of root_parent.
            self._parent_id = tracker.root_parent
        self._span_id = tracker.allocate_id()
        self._token = _CURRENT_SPAN.set(
            SpanContext(self._telemetry, tracker, self._span_id)
        )
        self._section = self._telemetry.profiler.section(self._name)
        self._section.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        self._section.__exit__(exc_type, exc, tb)
        _CURRENT_SPAN.reset(self._token)
        epoch = self._tracker.epoch
        self._tracker.add(SpanRecord(
            name=self._name,
            span_id=self._span_id,
            parent_id=self._parent_id,
            start_s=self._start - epoch,
            end_s=end - epoch,
            pid=os.getpid(),
            tid=threading.get_ident(),
            labels=self._labels,
        ))


class _NullSpanTracker:
    """Tracker stand-in for the null handle: records nothing."""

    __slots__ = ()

    epoch = 0.0
    root_parent = None

    def allocate_id(self) -> int:
        return 0

    def add(self, record: SpanRecord) -> None:
        pass

    def extend(self, records: Sequence[SpanRecord]) -> None:
        pass

    def records(self) -> List[SpanRecord]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared inert tracker served by :class:`NullTelemetry`.
NULL_SPAN_TRACKER = _NullSpanTracker()


# ---------------------------------------------------------------------------
# Chrome trace-event export / import


def chrome_trace_events(records: Sequence[SpanRecord]) -> List[dict]:
    """The records as Chrome trace-event dicts (``ph: "X"``, µs units)."""
    events: List[dict] = []
    for pid in sorted({record.pid for record in records}):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"repro pid {pid}"},
        })
    for record in records:
        args: Dict[str, Any] = {
            "schema": SPAN_SCHEMA_VERSION,
            "span_id": record.span_id,
            "parent_id": record.parent_id,
        }
        args.update(record.label_dict())
        events.append({
            "name": record.name,
            "cat": "span",
            "ph": "X",
            "ts": record.start_s * 1e6,
            "dur": record.duration_s * 1e6,
            "pid": record.pid,
            "tid": record.tid,
            "args": args,
        })
    return events


def write_chrome_trace(path, records: Sequence[SpanRecord]) -> int:
    """Write records as one Chrome trace-event JSON file.

    The file is a single ``{"traceEvents": [...]}`` object, loadable in
    Perfetto (ui.perfetto.dev) or ``chrome://tracing``. Flushed and
    fsynced before returning, so a crash after this call cannot leave a
    torn trace.

    Returns:
        The number of span events written (metadata events excluded).
    """
    payload = {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
        "otherData": {"span_schema": SPAN_SCHEMA_VERSION},
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    return len(records)


def load_chrome_trace(path) -> List[SpanRecord]:
    """Rebuild :class:`SpanRecord` rows from a Chrome trace JSON file.

    Raises:
        TelemetryError: when the file is not a trace-event JSON object
            or a span event misses its id payload.
    """
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise TelemetryError(
                f"{path}: not valid Chrome trace JSON ({error})"
            ) from None
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise TelemetryError(f"{path}: missing traceEvents array")
    records: List[SpanRecord] = []
    for event in payload["traceEvents"]:
        if event.get("ph") != "X" or event.get("cat") != "span":
            continue
        args = dict(event.get("args") or {})
        if "span_id" not in args:
            raise TelemetryError(
                f"{path}: span event {event.get('name')!r} has no span_id"
            )
        span_id = int(args.pop("span_id"))
        parent_raw = args.pop("parent_id", None)
        args.pop("schema", None)
        start_s = float(event["ts"]) / 1e6
        records.append(SpanRecord(
            name=str(event["name"]),
            span_id=span_id,
            parent_id=None if parent_raw is None else int(parent_raw),
            start_s=start_s,
            end_s=start_s + float(event.get("dur", 0.0)) / 1e6,
            pid=int(event.get("pid", 0)),
            tid=int(event.get("tid", 0)),
            labels=_freeze_labels(args),
        ))
    return records


# ---------------------------------------------------------------------------
# Tree building, canonical signatures, aggregation, reporting


@dataclass
class SpanNode:
    """One span plus its resolved children (a span-tree vertex)."""

    record: SpanRecord
    children: List["SpanNode"]


def span_tree(records: Sequence[SpanRecord],
              detach: Sequence[str] = ()) -> List[SpanNode]:
    """Resolve parent ids into a forest (roots sorted by start time).

    A record whose parent id is unknown (None, or pointing at a span
    that was never recorded — e.g. a crashed worker) becomes a root.

    ``detach`` names spans to force into roots (their subtrees stay
    intact). Use it to drop scheduling-dependent *attribution* from a
    tree: a single-flight cache fill (``sweep_cache.fill``) is led by
    whichever concurrent caller got there first, so its parent varies
    between equally-correct runs while everything inside it does not.
    """
    detached = set(detach)
    nodes = {record.span_id: SpanNode(record, []) for record in records}
    roots: List[SpanNode] = []
    for record in records:
        node = nodes[record.span_id]
        parent = (nodes.get(record.parent_id)
                  if record.parent_id is not None else None)
        if parent is None or parent is node or record.name in detached:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.record.start_s)
    roots.sort(key=lambda root: root.record.start_s)
    return roots


def _node_signature(node: SpanNode):
    return (
        node.record.name,
        node.record.labels,
        tuple(sorted(_node_signature(child) for child in node.children)),
    )


def tree_signature(records: Sequence[SpanRecord],
                   detach: Sequence[str] = ()):
    """A canonical, order-independent signature of the span forest.

    Only names, labels and parent/child structure enter the signature —
    ids, timestamps, pids and tids do not — so two runs of the same
    workload produce equal signatures regardless of worker scheduling,
    ``--jobs`` value, or thread/process placement.

    When the workload contains single-flight shared work (see
    :func:`span_tree`), pass its span name in ``detach`` to sign the
    forest with those subtrees re-rooted; with attribution factored out
    the signature is again jobs-invariant.
    """
    return tuple(sorted(_node_signature(root)
                        for root in span_tree(records, detach=detach)))


@dataclass(frozen=True)
class SpanAggregate:
    """Accumulated totals of one span name."""

    name: str
    count: int
    total_s: float
    self_s: float

    @property
    def mean_s(self) -> float:
        """Mean wall time per span."""
        return self.total_s / self.count if self.count else 0.0


def aggregate_spans(records: Sequence[SpanRecord]) -> Dict[str, SpanAggregate]:
    """Per-name totals with self time (total minus direct children).

    ``self_s`` answers "where was time actually spent": a pipeline node
    whose total is all store loads has near-zero self time.
    """
    totals: Dict[str, List[float]] = {}
    child_time: Dict[int, float] = {}
    for record in records:
        if record.parent_id is not None:
            child_time[record.parent_id] = (
                child_time.get(record.parent_id, 0.0) + record.duration_s
            )
    for record in records:
        entry = totals.setdefault(record.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record.duration_s
        entry[2] += max(0.0, record.duration_s
                        - child_time.get(record.span_id, 0.0))
    return {
        name: SpanAggregate(name=name, count=int(count),
                            total_s=total, self_s=self_s)
        for name, (count, total, self_s) in totals.items()
    }


def critical_path(records: Sequence[SpanRecord]) -> List[SpanRecord]:
    """The heaviest root-to-leaf chain (each step the slowest child)."""
    roots = span_tree(records)
    if not roots:
        return []
    node = max(roots, key=lambda root: root.record.duration_s)
    chain = [node.record]
    while node.children:
        node = max(node.children, key=lambda child: child.record.duration_s)
        chain.append(node.record)
    return chain


def format_span_report(records: Sequence[SpanRecord]) -> str:
    """Self-vs-total span breakdown plus the critical path, as text."""
    if not records:
        return "spans: none recorded"
    aggregates = sorted(aggregate_spans(records).values(),
                        key=lambda a: a.self_s, reverse=True)
    grand_self = sum(a.self_s for a in aggregates)
    workers = {(record.pid, record.tid) for record in records}
    processes = {record.pid for record in records}
    lines = [
        f"spans: {len(records)} across {len(processes)} process(es), "
        f"{len(workers)} worker(s)",
        "",
        f"{'span':<28s} {'count':>7s} {'total s':>10s} {'self s':>10s} "
        f"{'self %':>7s}",
    ]
    for aggregate in aggregates:
        share = aggregate.self_s / grand_self if grand_self > 0 else 0.0
        lines.append(
            f"{aggregate.name:<28s} {aggregate.count:>7d} "
            f"{aggregate.total_s:>10.4f} {aggregate.self_s:>10.4f} "
            f"{share:>6.1%}"
        )
    chain = critical_path(records)
    lines.append("")
    lines.append("critical path (heaviest chain):")
    for depth, record in enumerate(chain):
        label_text = ",".join(f"{k}={v}" for k, v in record.labels)
        suffix = f" [{label_text}]" if label_text else ""
        lines.append(f"{'  ' * depth}{record.name}{suffix} "
                     f"{record.duration_s:.4f}s")
    return "\n".join(lines)
