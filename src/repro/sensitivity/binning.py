"""Sensitivity binning (Section 5.2).

"Sensitivity is computed for each tunable ... and binned into three bins of
high, medium, and low. ... In our case, the three bins are set to <30%,
30%-70%, and >70%."

Each bin maps to a fraction of the tunable's range the CG block targets —
"the change in actual values of the hardware tunables is proportional to
the sensitivity value". A LOW-sensitivity tunable is dropped near its
minimum, MED to mid-range, HIGH is left at maximum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PolicyError


class Bin(enum.Enum):
    """A sensitivity bin."""

    LOW = "low"
    MED = "med"
    HIGH = "high"


@dataclass(frozen=True)
class SensitivityBins:
    """Binning thresholds and the per-bin tunable-range targets.

    Attributes:
        low_edge: sensitivities strictly below this are LOW.
        high_edge: sensitivities strictly above this are HIGH.
        low_target: fraction of the tunable's range set for a LOW bin.
        med_target: fraction of the tunable's range set for a MED bin.
        high_target: fraction of the tunable's range set for a HIGH bin.
    """

    low_edge: float = 0.30
    high_edge: float = 0.70
    low_target: float = 0.0
    med_target: float = 0.5
    high_target: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.low_edge <= self.high_edge:
            raise PolicyError("bin edges must satisfy 0 <= low <= high")
        for name in ("low_target", "med_target", "high_target"):
            if not 0 <= getattr(self, name) <= 1:
                raise PolicyError(f"{name} must be in [0, 1]")

    def classify(self, sensitivity: float) -> Bin:
        """Bin a sensitivity value.

        Values are clamped into [0, 1] first: a measured *negative*
        sensitivity (performance improves as the tunable shrinks — the
        BPT cache-thrashing case) is as LOW as it gets, and super-linear
        scaling saturates at HIGH.
        """
        clamped = max(0.0, min(1.0, sensitivity))
        if clamped < self.low_edge:
            return Bin.LOW
        if clamped > self.high_edge:
            return Bin.HIGH
        return Bin.MED

    def target_fraction(self, bin_: Bin) -> float:
        """Tunable-range fraction the CG block sets for ``bin_``."""
        if bin_ is Bin.LOW:
            return self.low_target
        if bin_ is Bin.MED:
            return self.med_target
        return self.high_target


#: The paper's binning: <30% LOW, 30-70% MED, >70% HIGH.
PAPER_BINS = SensitivityBins()
