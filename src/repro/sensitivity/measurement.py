"""Measured performance sensitivities (Section 4.1).

"CU sensitivity is computed as the ratio of: i) relative change in
execution times, to ii) relative change in number of active CUs. CU
frequency and memory bandwidth are set to their maximum possible values in
the hardware so that they are not the limiting factors. Sensitivities to
CU frequency and memory bandwidth are similarly computed. Finally, the
sensitivity to the number of CUs and CU frequency are aggregated into a
single compute throughput sensitivity metric."

Concretely we use the normalized endpoint form

    S = (P_hi - P_lo) / P_hi  /  ((x_hi - x_lo) / x_hi)

with performance ``P = 1/T``. For a kernel that scales perfectly with the
tunable (``P`` proportional to ``x``) this gives 1; for one that does not
scale at all it gives 0; a kernel that runs *faster* when the tunable
shrinks (the BPT cache-thrashing case) yields a negative value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.gpu.config import HardwareConfig
from repro.perf.kernelspec import KernelSpec
from repro.platform.hd7970 import HardwarePlatform


@dataclass(frozen=True)
class SensitivityMeasurement:
    """Measured sensitivities of one kernel."""

    kernel_name: str
    #: sensitivity to the number of active CUs (freq/BW at max)
    cu: float
    #: sensitivity to compute frequency (CUs/BW at max)
    f_cu: float
    #: sensitivity to memory bandwidth (compute at max)
    bandwidth: float
    #: aggregated compute-throughput sensitivity (CUs and frequency
    #: scaled together, Section 4.1's aggregation)
    compute: float


def sensitivity_between(time_lo: float, time_hi: float,
                        x_lo: float, x_hi: float) -> float:
    """Endpoint sensitivity from times at a low/high tunable setting.

    Args:
        time_lo: execution time at the low tunable value.
        time_hi: execution time at the high tunable value.
        x_lo: the low tunable value.
        x_hi: the high tunable value.

    Raises:
        AnalysisError: if times or tunable values are non-positive, or the
            tunable endpoints coincide.
    """
    if time_lo <= 0 or time_hi <= 0:
        raise AnalysisError("execution times must be positive")
    if x_lo <= 0 or x_hi <= 0:
        raise AnalysisError("tunable values must be positive")
    if x_hi == x_lo:
        raise AnalysisError("tunable endpoints must differ")
    perf_lo, perf_hi = 1.0 / time_lo, 1.0 / time_hi
    d_perf = (perf_hi - perf_lo) / perf_hi
    d_x = (x_hi - x_lo) / x_hi
    return d_perf / d_x


def measure_sensitivities(platform: HardwarePlatform,
                          spec: KernelSpec) -> SensitivityMeasurement:
    """Measure all per-tunable sensitivities of ``spec`` on ``platform``.

    Each tunable is swept from its minimum to its maximum grid value while
    the other tunables are pinned at maximum (Section 4.1), and the
    aggregate compute-throughput sensitivity scales CUs and frequency
    together.
    """
    space = platform.config_space
    top = space.max_config()

    # The corner launches are grid points of the kernel's full sweep
    # surface, which other consumers (oracle, characterization, analysis
    # sweeps) need anyway — read them off the shared cached batch
    # evaluation instead of re-launching. Noisy platforms read the same
    # surface: launch-keyed noise is applied after the cache lookup, so
    # each corner sees exactly the draw a per-launch call would.
    surface = platform.grid_sweep(spec)

    def run_time(config: HardwareConfig) -> float:
        return surface.time_at(config)

    t_top = run_time(top)

    # CU sensitivity: min vs max CU count at max frequency and bandwidth.
    cu_lo = space.cu_counts[0]
    t_cu_lo = run_time(top.replace(n_cu=cu_lo))
    cu_sens = sensitivity_between(t_cu_lo, t_top, cu_lo, space.cu_counts[-1])

    # Compute-frequency sensitivity.
    f_lo = space.compute_frequencies[0]
    t_f_lo = run_time(top.replace(f_cu=f_lo))
    f_sens = sensitivity_between(t_f_lo, t_top, f_lo, space.compute_frequencies[-1])

    # Memory-bandwidth sensitivity (bandwidth is proportional to bus freq).
    m_lo = space.memory_frequencies[0]
    t_m_lo = run_time(top.replace(f_mem=m_lo))
    bw_sens = sensitivity_between(t_m_lo, t_top, m_lo, space.memory_frequencies[-1])

    # Aggregate compute-throughput sensitivity (Section 4.1 aggregates the
    # CU-count and CU-frequency sensitivities into one metric): the mean of
    # the two per-tunable sensitivities. Scaling their product instead
    # would skew every kernel high — a 10x joint throughput swing slows
    # almost anything — and wash out the low-sensitivity end the
    # predictor's intercept needs.
    compute_sens = 0.5 * (cu_sens + f_sens)

    return SensitivityMeasurement(
        kernel_name=spec.name,
        cu=cu_sens,
        f_cu=f_sens,
        bandwidth=bw_sens,
        compute=compute_sens,
    )
