"""Online sensitivity predictors (Sections 4.3 and 5.2, Table 3).

A :class:`SensitivityPredictor` evaluates a linear model over a
performance-counter sample, exactly as Harmonia's monitoring block does at
every kernel boundary. Two provenances are supported:

* **paper coefficients** — the published Table 3 weights, shipped verbatim
  as :data:`PAPER_COMPUTE_PREDICTOR` and :data:`PAPER_BANDWIDTH_PREDICTOR`,
* **retrained coefficients** — :func:`train_predictors` reruns the
  Section 4 pipeline (sweep, average, regress) against *this* substrate,
  which is what the simulated evaluation uses (the paper's weights encode
  the real silicon's counter scales).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.perf.counters import PerfCounters
from repro.platform.hd7970 import HardwarePlatform
from repro.sensitivity.dataset import SensitivityDataset, build_dataset
from repro.sensitivity.regression import LinearModel, fit_linear_model, pearson
from repro.workloads.application import Application

#: Feature subsets of the two Table 3 models.
BANDWIDTH_FEATURES: Tuple[str, ...] = (
    "VALUUtilization",
    "WriteUnitStalled",
    "MemUnitBusy",
    "MemUnitStalled",
    "icActivity",
    "NormVGPR",
    "NormSGPR",
)
COMPUTE_FEATURES: Tuple[str, ...] = (
    "CtoMIntensity",
    "NormVGPR",
    "NormSGPR",
)


@dataclass(frozen=True)
class SensitivityPredictor:
    """A linear sensitivity model over performance-counter features."""

    model: LinearModel
    #: which sensitivity this predicts ("compute" or "bandwidth")
    kind: str

    def predict(self, counters: PerfCounters) -> float:
        """Predicted sensitivity for a counter sample, clamped to [0, 1].

        The clamp mirrors the paper's use: sensitivities feed the
        HIGH/MED/LOW bins, which saturate outside [0, 1] anyway.
        """
        return self.predict_features(counters.as_feature_dict())

    def predict_features(self, features: Mapping[str, float]) -> float:
        """Clamped prediction from a raw feature mapping (used by the
        monitoring block, which smooths features across iterations)."""
        raw = self.model.predict(features)
        return max(0.0, min(1.0, raw))

    def predict_raw(self, counters: PerfCounters) -> float:
        """Unclamped model output (useful for error analysis)."""
        return self.model.predict(counters.as_feature_dict())


def _paper_model(intercept: float, coefficients: Mapping[str, float],
                 correlation: float) -> LinearModel:
    return LinearModel(
        feature_names=tuple(coefficients),
        intercept=intercept,
        coefficients=dict(coefficients),
        correlation=correlation,
    )


#: Table 3, bandwidth-sensitivity column (correlation 0.96, Section 4.3).
PAPER_BANDWIDTH_PREDICTOR = SensitivityPredictor(
    model=_paper_model(
        intercept=-0.42,
        coefficients={
            "VALUUtilization": 0.003,
            "WriteUnitStalled": 0.011,
            "MemUnitBusy": 0.01,
            "MemUnitStalled": -0.004,
            "icActivity": 1.003,
            "NormVGPR": 1.158,
            "NormSGPR": -0.731,
        },
        correlation=0.96,
    ),
    kind="bandwidth",
)

#: Table 3, compute-sensitivity column (correlation 0.91, Section 4.3).
PAPER_COMPUTE_PREDICTOR = SensitivityPredictor(
    model=_paper_model(
        intercept=0.06,
        coefficients={
            "CtoMIntensity": 0.007,
            "NormVGPR": 0.452,
            "NormSGPR": 0.024,
        },
        correlation=0.91,
    ),
    kind="compute",
)


@dataclass(frozen=True)
class TrainingReport:
    """Everything the Section 4 pipeline produced."""

    dataset: SensitivityDataset
    compute: SensitivityPredictor
    bandwidth: SensitivityPredictor

    @property
    def compute_correlation(self) -> float:
        """Fit correlation of the compute model (paper: 0.91)."""
        return self.compute.model.correlation

    @property
    def bandwidth_correlation(self) -> float:
        """Fit correlation of the bandwidth model (paper: 0.96)."""
        return self.bandwidth.model.correlation

    def prediction_errors(self) -> Tuple[float, float]:
        """(bandwidth, compute) mean absolute prediction error over the
        training kernels — the Section 7.2 numbers (3.03% / 5.71%)."""
        bw_err = 0.0
        comp_err = 0.0
        n = len(self.dataset)
        if n == 0:
            raise AnalysisError("empty dataset")
        for row, bw_t, comp_t in zip(self.dataset.rows,
                                     self.dataset.bandwidth_targets,
                                     self.dataset.compute_targets):
            bw_p = self.bandwidth.model.predict(row)
            comp_p = self.compute.model.predict(row)
            bw_err += abs(bw_p - max(0.0, min(1.0, bw_t)))
            comp_err += abs(comp_p - max(0.0, min(1.0, comp_t)))
        return bw_err / n, comp_err / n


def train_predictors(
    platform: HardwarePlatform,
    applications: Sequence[Application],
    config_stride: int = 16,
    jobs: int = 1,
) -> TrainingReport:
    """Run the full Section 4 pipeline against the given workloads.

    Args:
        platform: the test bed to measure on.
        applications: the training applications.
        config_stride: configuration subsampling for counter averaging.
        jobs: thread fan-out for the per-kernel measurement pipelines
            (see :func:`~repro.sensitivity.dataset.build_dataset`).

    Returns:
        A :class:`TrainingReport` with the dataset and both fitted
        predictors (the Table 3 feature subsets, refit to this substrate).
    """
    dataset = build_dataset(platform, applications,
                            config_stride=config_stride, jobs=jobs)
    bw_model = fit_linear_model(
        dataset.rows, dataset.bandwidth_targets, BANDWIDTH_FEATURES
    )
    comp_model = fit_linear_model(
        dataset.rows, dataset.compute_targets, COMPUTE_FEATURES
    )
    return TrainingReport(
        dataset=dataset,
        compute=SensitivityPredictor(model=comp_model, kind="compute"),
        bandwidth=SensitivityPredictor(model=bw_model, kind="bandwidth"),
    )
