"""Sensitivity measurement, training, and prediction (Section 4).

* :mod:`repro.sensitivity.measurement` — measured sensitivities of
  execution time to each hardware tunable (Section 4.1's methodology),
* :mod:`repro.sensitivity.dataset` — training-set construction from
  counters averaged across configurations (Section 4.2),
* :mod:`repro.sensitivity.regression` — plain least-squares linear
  regression with correlation reporting (Section 4.3),
* :mod:`repro.sensitivity.predictor` — the online predictors, including
  the paper's published Table 3 coefficients,
* :mod:`repro.sensitivity.binning` — HIGH/MED/LOW binning at the paper's
  30% / 70% boundaries (Section 5.2).
"""

from repro.sensitivity.binning import Bin, SensitivityBins, PAPER_BINS
from repro.sensitivity.measurement import (
    SensitivityMeasurement,
    measure_sensitivities,
    sensitivity_between,
)
from repro.sensitivity.dataset import SensitivityDataset, build_dataset
from repro.sensitivity.regression import LinearModel, fit_linear_model, pearson
from repro.sensitivity.predictor import (
    PAPER_BANDWIDTH_PREDICTOR,
    PAPER_COMPUTE_PREDICTOR,
    SensitivityPredictor,
    train_predictors,
    TrainingReport,
)

__all__ = [
    "Bin",
    "SensitivityBins",
    "PAPER_BINS",
    "SensitivityMeasurement",
    "measure_sensitivities",
    "sensitivity_between",
    "SensitivityDataset",
    "build_dataset",
    "LinearModel",
    "fit_linear_model",
    "pearson",
    "PAPER_BANDWIDTH_PREDICTOR",
    "PAPER_COMPUTE_PREDICTOR",
    "SensitivityPredictor",
    "train_predictors",
    "TrainingReport",
]
