"""Plain least-squares linear regression (Section 4.3).

The paper fits its sensitivity predictors with ordinary linear regression
over a small set of counters and reports correlation coefficients of 0.91
(compute) and 0.96 (bandwidth). We implement the same machinery with
``numpy.linalg.lstsq`` — no external ML dependencies — and report Pearson
correlation between predictions and measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError


def pearson(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length vectors.

    Raises:
        AnalysisError: on mismatched lengths or fewer than two points.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.shape != y.shape:
        raise AnalysisError("vectors must have the same length")
    if x.size < 2:
        raise AnalysisError("correlation needs at least two points")
    sx = float(np.std(x))
    sy = float(np.std(y))
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


@dataclass(frozen=True)
class LinearModel:
    """A fitted linear model ``y = intercept + sum(coef[f] * x[f])``.

    Attributes:
        feature_names: ordered names of the model's input features.
        intercept: the fitted intercept.
        coefficients: per-feature fitted weights, keyed by feature name.
        correlation: Pearson correlation of fit vs. training targets.
    """

    feature_names: Tuple[str, ...]
    intercept: float
    coefficients: Mapping[str, float]
    correlation: float

    def predict(self, features: Mapping[str, float]) -> float:
        """Evaluate the model on a feature mapping.

        Raises:
            AnalysisError: if a required feature is missing.
        """
        total = self.intercept
        for name in self.feature_names:
            if name not in features:
                raise AnalysisError(f"missing feature {name!r}")
            total += self.coefficients[name] * features[name]
        return total

    def coefficient_rows(self) -> Tuple[Tuple[str, float], ...]:
        """(name, value) rows including the intercept — the Table 3 shape."""
        rows = [("Intercept", self.intercept)]
        rows.extend((name, self.coefficients[name]) for name in self.feature_names)
        return tuple(rows)


def fit_linear_model(
    rows: Sequence[Mapping[str, float]],
    targets: Sequence[float],
    feature_names: Sequence[str],
) -> LinearModel:
    """Fit a least-squares linear model over the named features.

    Args:
        rows: feature mappings, one per training point.
        targets: the measured sensitivities, one per training point.
        feature_names: which features to use (the Table 3 subsets).

    Raises:
        AnalysisError: on empty/mismatched data or missing features.
    """
    if not rows:
        raise AnalysisError("no training rows")
    if len(rows) != len(targets):
        raise AnalysisError("rows and targets must have the same length")
    if not feature_names:
        raise AnalysisError("no features selected")

    matrix = np.ones((len(rows), len(feature_names) + 1), dtype=float)
    for i, row in enumerate(rows):
        for j, name in enumerate(feature_names):
            if name not in row:
                raise AnalysisError(f"row {i} missing feature {name!r}")
            matrix[i, j + 1] = row[name]
    y = np.asarray(targets, dtype=float)

    solution, *_ = np.linalg.lstsq(matrix, y, rcond=None)
    intercept = float(solution[0])
    coefficients = {
        name: float(solution[j + 1]) for j, name in enumerate(feature_names)
    }
    predictions = matrix @ solution
    corr = pearson(predictions.tolist(), y.tolist())
    return LinearModel(
        feature_names=tuple(feature_names),
        intercept=intercept,
        coefficients=coefficients,
        correlation=corr,
    )
