"""Training-set construction (Section 4.2).

The paper records 50+ counters per kernel per configuration (25 kernels x
450 configurations = 11250 vectors), then exploits the observation that
"for the same kernel ... across multiple hardware configurations, there are
generally only small variations around the nominal values" by replacing
each counter with its **average across all hardware configurations** of
that kernel, reducing the set to ~2000 points. Each averaged vector is
paired with the kernel's measured compute-throughput and memory-bandwidth
sensitivities.

We reproduce that pipeline: for every workload kernel (including each
distinct phase of phased kernels — phases are behaviourally different
kernels to the predictor), sample counters over a spread of hardware
configurations, average them, and attach measured sensitivities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.perf.counters import PerfCounters
from repro.perf.kernelspec import KernelSpec
from repro.platform.hd7970 import HardwarePlatform
from repro.runtime.parallel import fan_out
from repro.sensitivity.measurement import SensitivityMeasurement, measure_sensitivities
from repro.workloads.application import Application
from repro.workloads.kernel import WorkloadKernel


@dataclass(frozen=True)
class SensitivityDataset:
    """Per-kernel averaged features with measured sensitivity targets."""

    #: one feature mapping per training kernel (config-averaged counters)
    rows: Tuple[Mapping[str, float], ...]
    #: measured compute-throughput sensitivity per row
    compute_targets: Tuple[float, ...]
    #: measured memory-bandwidth sensitivity per row
    bandwidth_targets: Tuple[float, ...]
    #: kernel (or kernel-phase) name per row
    kernel_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        n = len(self.rows)
        if not (len(self.compute_targets) == len(self.bandwidth_targets)
                == len(self.kernel_names) == n):
            raise AnalysisError("dataset columns have mismatched lengths")

    def __len__(self) -> int:
        return len(self.rows)


def _distinct_specs(applications: Sequence[Application]) -> List[KernelSpec]:
    """Every behaviourally distinct kernel spec across the workload set.

    Phased kernels contribute one spec per distinct phase — to the
    predictor a phase is simply a kernel with different counters.
    """
    specs: List[KernelSpec] = []
    seen: set = set()
    for app in applications:
        for kernel in app.kernels:
            for iteration in range(app.iterations):
                spec = kernel.spec_for_iteration(iteration)
                key = (spec.name, spec.total_workitems, spec.valu_insts_per_item,
                       spec.vfetch_insts_per_item, spec.branch_divergence,
                       spec.l2_hit_rate)
                if key not in seen:
                    seen.add(key)
                    phase_tag = "" if iteration == 0 else f"#phase{iteration}"
                    specs.append(spec.evolve(name=spec.name + phase_tag))
    return specs


def _averaged_features(platform: HardwarePlatform, spec: KernelSpec,
                       config_stride: int) -> Dict[str, float]:
    """Counter features averaged over a spread of configurations.

    Operates on the strided counter columns directly instead of
    materializing a scalar :class:`PerfCounters` per sampled index; the
    per-feature sums run in the same sequential index order as the old
    scalar loop, so the averages are bitwise unchanged.
    """
    # Counters are noise-free on both paths (noise multiplies only the
    # reported launch time), so the cached surface serves noisy
    # platforms too and the features are identical either way.
    counters = platform.grid_sweep(spec).counters
    valu_busy = counters.valu_busy[::config_stride].tolist()
    mem_unit_busy = counters.mem_unit_busy[::config_stride].tolist()
    count = len(valu_busy)
    if count == 0:
        raise AnalysisError("config_stride too large: no configurations sampled")

    def mean(values) -> float:
        total = 0.0
        for value in values:
            total += value
        return total / count

    def intensity(busy: float, mem_busy: float) -> float:
        # Equation 3, exactly as PerfCounters.compute_to_memory_intensity.
        if mem_busy <= 0:
            return 100.0
        raw = (busy * counters.valu_utilization / 100.0) / mem_busy
        return min(100.0, raw * 100.0)

    return {
        "VALUUtilization": mean([counters.valu_utilization] * count),
        "VALUBusy": mean(valu_busy),
        "MemUnitBusy": mean(mem_unit_busy),
        "MemUnitStalled": mean(
            counters.mem_unit_stalled[::config_stride].tolist()),
        "WriteUnitStalled": mean(
            counters.write_unit_stalled[::config_stride].tolist()),
        "icActivity": mean(counters.ic_activity[::config_stride].tolist()),
        "NormVGPR": mean([counters.norm_vgpr] * count),
        "NormSGPR": mean([counters.norm_sgpr] * count),
        "CtoMIntensity": mean([intensity(busy, mem_busy) for busy, mem_busy
                               in zip(valu_busy, mem_unit_busy)]),
    }


def build_dataset(
    platform: HardwarePlatform,
    applications: Sequence[Application],
    config_stride: int = 16,
    jobs: int = 1,
) -> SensitivityDataset:
    """Build the Section 4.2 training set from a workload list.

    Args:
        platform: the test bed to measure on.
        applications: the training applications (normally all 14).
        config_stride: sample every Nth configuration when averaging
            counters (the average is extremely stable across configs, so a
            stride keeps training cheap without changing the result).
        jobs: fan the per-kernel measurement pipelines out over up to this
            many threads (each distinct spec is independent; results are
            assembled in spec order, so the dataset is identical for any
            job count).

    Returns:
        A :class:`SensitivityDataset` with one row per distinct kernel
        (or kernel phase).
    """
    if config_stride < 1:
        raise AnalysisError("config_stride must be >= 1")

    def measure_one(spec: KernelSpec):
        features = _averaged_features(platform, spec, config_stride)
        measured = measure_sensitivities(platform, spec)
        return features, measured

    specs = _distinct_specs(applications)
    outcomes = fan_out(measure_one, specs, jobs=jobs)

    rows: List[Mapping[str, float]] = []
    compute_targets: List[float] = []
    bandwidth_targets: List[float] = []
    names: List[str] = []
    for spec, (features, measured) in zip(specs, outcomes):
        rows.append(features)
        compute_targets.append(measured.compute)
        bandwidth_targets.append(measured.bandwidth)
        names.append(spec.name)

    return SensitivityDataset(
        rows=tuple(rows),
        compute_targets=tuple(compute_targets),
        bandwidth_targets=tuple(bandwidth_targets),
        kernel_names=tuple(names),
    )
