"""Analytical performance model for GCN kernels.

* :mod:`repro.perf.kernelspec` — the microarchitectural description of one
  kernel launch (instruction mix, registers, divergence, locality, MLP),
* :mod:`repro.perf.model` — the execution-time model over the three
  hardware tunables,
* :mod:`repro.perf.counters` — synthesised CodeXL-style performance
  counters (Table 2 of the paper),
* :mod:`repro.perf.result` — the per-launch result container.
"""

from repro.perf.eventsim import EventDrivenModel, EventSimResult
from repro.perf.kernelspec import KernelSpec
from repro.perf.counters import PerfCounters
from repro.perf.model import ModelOutput, PerformanceModel
from repro.perf.result import KernelRunResult, PowerSample, TimeBreakdown

__all__ = [
    "EventDrivenModel",
    "EventSimResult",
    "KernelSpec",
    "PerfCounters",
    "ModelOutput",
    "PerformanceModel",
    "KernelRunResult",
    "PowerSample",
    "TimeBreakdown",
]
