"""Microarchitectural description of a kernel launch.

A :class:`KernelSpec` captures everything the performance and power models
need to know about one kernel invocation. The fields map one-to-one onto
the characteristics the paper uses to explain sensitivity (Section 3.5):

* instruction mix (``valu_insts_per_item``, ``vfetch``/``vwrite``) — kernel
  complexity; a kernel with 8 ALU instructions is overhead-dominated no
  matter how divergent it is (Figure 8),
* register/LDS usage — kernel occupancy and latency hiding (Figure 7),
* ``branch_divergence`` — thread serialization; VALUUtilization = 1 - d,
* ``l2_hit_rate`` + ``l2_thrash_sensitivity`` — cache behaviour, including
  the inter-CU interference that makes B+Tree *faster* with fewer CUs
  (Section 7.1),
* ``outstanding_per_wave`` / ``access_efficiency`` — memory-level
  parallelism and access-pattern friendliness.

Specs are immutable; phase behaviour is expressed by deriving a new spec
per iteration (see :mod:`repro.workloads.kernel`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import KernelSpecError


@dataclass(frozen=True)
class KernelSpec:
    """Static + dynamic characteristics of one kernel launch."""

    #: kernel name, e.g. ``"Sort.BottomScan"``
    name: str
    #: total workitems launched
    total_workitems: int
    #: workitems per workgroup
    workgroup_size: int
    #: dynamic vector-ALU instructions per workitem (convergent path)
    valu_insts_per_item: float
    #: dynamic vector-fetch (read) instructions per workitem
    vfetch_insts_per_item: float
    #: dynamic vector-write instructions per workitem
    vwrite_insts_per_item: float
    #: bytes moved per fetch instruction per workitem (after coalescing)
    bytes_per_fetch: float = 4.0
    #: bytes moved per write instruction per workitem (after coalescing)
    bytes_per_write: float = 4.0
    #: vector registers per workitem
    vgprs_per_workitem: int = 32
    #: scalar registers per wavefront
    sgprs_per_wave: int = 24
    #: LDS bytes per workgroup
    lds_bytes_per_workgroup: int = 0
    #: fraction of lane-cycles lost to branch divergence, in [0, 1)
    branch_divergence: float = 0.0
    #: L2 hit rate at the full 32-CU configuration, in [0, 1]
    l2_hit_rate: float = 0.3
    #: how much the L2 hit rate recovers when CUs are power-gated
    #: (hit-rate gain at the minimum CU count), in [0, 1]
    l2_thrash_sensitivity: float = 0.0
    #: average DRAM requests kept in flight per resident wavefront
    outstanding_per_wave: float = 2.5
    #: memory-controller scheduling efficiency for this access pattern
    access_efficiency: float = 0.80
    #: fixed launch/driver overhead per invocation (s)
    launch_overhead: float = 20.0e-6
    #: fraction of the shorter of compute/memory time NOT overlapped
    overlap_inefficiency: float = 0.04

    def __post_init__(self) -> None:
        if self.total_workitems <= 0:
            raise KernelSpecError(f"{self.name}: total_workitems must be positive")
        if self.workgroup_size <= 0:
            raise KernelSpecError(f"{self.name}: workgroup_size must be positive")
        if self.valu_insts_per_item < 0:
            raise KernelSpecError(f"{self.name}: negative valu_insts_per_item")
        if self.vfetch_insts_per_item < 0 or self.vwrite_insts_per_item < 0:
            raise KernelSpecError(f"{self.name}: negative memory instruction count")
        if self.valu_insts_per_item + self.vfetch_insts_per_item + self.vwrite_insts_per_item <= 0:
            raise KernelSpecError(f"{self.name}: kernel executes no instructions")
        if self.bytes_per_fetch < 0 or self.bytes_per_write < 0:
            raise KernelSpecError(f"{self.name}: negative bytes per access")
        if not 0 <= self.branch_divergence < 1:
            raise KernelSpecError(f"{self.name}: branch_divergence must be in [0, 1)")
        if not 0 <= self.l2_hit_rate <= 1:
            raise KernelSpecError(f"{self.name}: l2_hit_rate must be in [0, 1]")
        if not 0 <= self.l2_thrash_sensitivity <= 1:
            raise KernelSpecError(f"{self.name}: l2_thrash_sensitivity must be in [0, 1]")
        if self.outstanding_per_wave <= 0:
            raise KernelSpecError(f"{self.name}: outstanding_per_wave must be positive")
        if not 0 < self.access_efficiency <= 1:
            raise KernelSpecError(f"{self.name}: access_efficiency must be in (0, 1]")
        if self.launch_overhead < 0:
            raise KernelSpecError(f"{self.name}: negative launch_overhead")
        if not 0 <= self.overlap_inefficiency <= 1:
            raise KernelSpecError(f"{self.name}: overlap_inefficiency must be in [0, 1]")

    def __hash__(self) -> int:
        # Specs key every hot memo (sweep cache, launch surfaces, noise
        # draw streams), and the generated dataclass hash re-hashes all
        # twenty fields per lookup. Specs are frozen, so the value is
        # computed once and cached on the instance. Same tuple as the
        # generated implementation, so hash values (and therefore dict
        # iteration orders) are unchanged.
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash(tuple(self.__dict__[f.name]
                                for f in dataclasses.fields(self)))
            object.__setattr__(self, "_cached_hash", cached)
        return cached

    def __getstate__(self):
        # String hashes are salted per process: never ship the cached
        # hash across a pickle boundary (process fan-outs), or the copy
        # would misbehave as a dict key in the receiving process.
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        return state

    # --- derived quantities ---------------------------------------------------

    @property
    def lane_utilization(self) -> float:
        """Fraction of vector lanes doing useful work (1 - divergence)."""
        return 1.0 - self.branch_divergence

    @property
    def mem_insts_per_item(self) -> float:
        """Total vector memory instructions per workitem."""
        return self.vfetch_insts_per_item + self.vwrite_insts_per_item

    @property
    def footprint_bytes_per_item(self) -> float:
        """Bytes requested from the cache hierarchy per workitem."""
        return (
            self.vfetch_insts_per_item * self.bytes_per_fetch
            + self.vwrite_insts_per_item * self.bytes_per_write
        )

    def demanded_ops_per_byte(self) -> float:
        """The application's ops/byte demand (Section 1).

        Compute operations per byte of *DRAM* transfer at the nominal
        (32-CU) hit rate. Infinite demand (no DRAM traffic) is reported as
        a large finite number to keep downstream arithmetic total.
        """
        dram_bytes = self.footprint_bytes_per_item * (1.0 - self.l2_hit_rate)
        if dram_bytes <= 0:
            return 1.0e6
        return self.valu_insts_per_item / dram_bytes

    def effective_l2_hit_rate(self, n_cu: int, max_cu: int) -> float:
        """L2 hit rate at ``n_cu`` active CUs.

        Fewer active CUs means less inter-CU interference in the shared L2
        (Section 7.1: lowering the CU count via power gating *improved*
        performance for BPT/CFD/XSBench by reducing cache thrashing).
        The recovery is linear in the gated fraction, scaled by
        ``l2_thrash_sensitivity``, and capped at 0.98.
        """
        if n_cu <= 0 or n_cu > max_cu:
            raise KernelSpecError(f"{self.name}: n_cu {n_cu} outside (0, {max_cu}]")
        gated_fraction = 1.0 - n_cu / max_cu
        hit = self.l2_hit_rate + self.l2_thrash_sensitivity * gated_fraction
        return min(0.98, hit)

    def evolve(self, **changes) -> "KernelSpec":
        """Return a copy of this spec with the given fields replaced.

        Used by phase schedules to express iteration-to-iteration changes
        (e.g. Graph500's breadth-first search levels, Figure 14).
        """
        return dataclasses.replace(self, **changes)
