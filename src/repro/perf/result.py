"""Per-launch result container returned by the platform."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.config import HardwareConfig
from repro.perf.counters import PerfCounters


@dataclass(frozen=True)
class TimeBreakdown:
    """Where a kernel launch's time went (seconds)."""

    #: pure compute-pipeline time
    compute: float
    #: pure memory-system time (DRAM + cache service)
    memory: float
    #: un-overlapped residue of the shorter component
    overlap_residue: float
    #: fixed launch/driver overhead
    launch_overhead: float

    @property
    def total(self) -> float:
        """Total wall-clock time of the launch (s)."""
        return (
            max(self.compute, self.memory)
            + self.overlap_residue
            + self.launch_overhead
        )

    @property
    def compute_bound(self) -> bool:
        """True when compute time dominates memory time."""
        return self.compute >= self.memory


@dataclass(frozen=True)
class PowerSample:
    """Average power (W) of one kernel launch, per Section 6's breakdown."""

    #: GPU chip power (compute + integrated MC), ``GPUPwr``
    gpu: float
    #: off-chip memory + DDR PHY power, ``MemPwr``
    memory: float
    #: fan, voltage regulators, board losses, ``OtherPwr``
    other: float

    @property
    def card(self) -> float:
        """Total GPU card power, ``GPUCardPwr`` (Equation 4 rearranged)."""
        return self.gpu + self.memory + self.other


@dataclass(frozen=True)
class KernelRunResult:
    """Everything observed from one kernel launch at one configuration."""

    kernel_name: str
    config: HardwareConfig
    #: execution time (s)
    time: float
    #: time breakdown from the performance model
    breakdown: TimeBreakdown
    #: synthesised performance counters
    counters: PerfCounters
    #: average power during the launch
    power: PowerSample
    #: achieved DRAM bandwidth (B/s)
    achieved_bandwidth: float
    #: kernel occupancy (fraction of max waves/SIMD)
    occupancy: float
    #: which bandwidth limit bound ("efficiency", "mlp", or "crossing")
    bandwidth_limit: str

    @property
    def energy(self) -> float:
        """Card energy of the launch (J)."""
        return self.power.card * self.time

    @property
    def performance(self) -> float:
        """Performance as 1 / execution time (the Figure 3 y-axis)."""
        return 1.0 / self.time
