"""Event-driven wavefront execution simulator.

An independent, higher-fidelity execution model used to cross-validate the
analytical model in :mod:`repro.perf.model`. Where the analytical model
reasons about aggregate busy times, this one schedules individual
wavefronts onto SIMDs and individual memory requests onto a bandwidth
server:

* each wavefront is split into *segments* — a block of VALU issue cycles
  followed by one vector memory request;
* a CU's four SIMDs issue ready wavefronts in earliest-ready order; a
  segment occupies its SIMD for the block's issue cycles;
* memory requests are serviced by a shared bandwidth server (service time
  = bytes / achievable bandwidth) plus a fixed load latency; a wavefront
  may keep a limited number of requests in flight
  (``outstanding_per_wave``) before it must stall;
* occupancy limits how many wavefronts are resident per SIMD; completed
  waves free their slots for the next ones.

The simulator intentionally shares only the *inputs* with the analytical
model (architecture geometry, achievable bandwidth, DRAM latency): the
execution-time logic is disjoint, so agreement between the two is
evidence, not tautology. To stay fast in pure Python it simulates one
representative CU with a statistically scaled share of the launch and a
capped wave population, then scales time back up.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import AnalysisError
from repro.gpu.architecture import GpuArchitecture
from repro.gpu.clocks import ClockDomainModel
from repro.gpu.config import HardwareConfig
from repro.gpu.occupancy import compute_occupancy
from repro.memory.controller import MemoryControllerModel
from repro.perf.kernelspec import KernelSpec


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one event-driven kernel execution."""

    #: simulated execution time (s)
    time: float
    #: wavefronts actually simulated (before scaling)
    simulated_waves: int
    #: total wavefronts the launch comprises
    total_waves: int
    #: fraction of simulated time the SIMDs were issuing
    simd_busy_fraction: float

    @property
    def performance(self) -> float:
        """1 / time."""
        return 1.0 / self.time


class _Wave:
    """One wavefront's execution state."""

    __slots__ = ("segments_left", "compute_cycles", "inflight", "done_at")

    def __init__(self, segments: int, compute_cycles: float):
        self.segments_left = segments
        self.compute_cycles = compute_cycles
        # Completion times, sorted; a deque because retirement pops from
        # the front (list.pop(0) shifts the whole buffer each time).
        self.inflight: Deque[float] = deque()
        self.done_at: Optional[float] = None


@dataclass(frozen=True)
class _LaneParams:
    """Everything the event loop needs, derived once per (spec, config).

    The batched engine (:mod:`repro.perf.eventsim_batch`) runs many
    lanes in lockstep but derives each lane's parameters through this
    exact function, so the per-lane constants feeding both loops are
    the same float64 values — a precondition of the bitwise-equivalence
    contract.
    """

    simulated: int
    total_waves: int
    scale: float
    segments: int
    compute_per_segment: float
    bytes_per_segment: float
    service_time: float
    load_latency: float
    max_inflight: int
    resident_limit: int
    launch_overhead: float
    simds_per_cu: int


def _derive_lane_params(arch: GpuArchitecture,
                        controller: MemoryControllerModel,
                        clock_domains: ClockDomainModel,
                        max_waves: int,
                        spec: KernelSpec,
                        config: HardwareConfig) -> _LaneParams:
    """The scalar ``run`` setup, extracted verbatim (same ops, same order)."""
    occupancy = compute_occupancy(
        arch,
        vgprs_per_workitem=spec.vgprs_per_workitem,
        sgprs_per_wave=spec.sgprs_per_wave,
        lds_bytes_per_workgroup=spec.lds_bytes_per_workgroup,
        workgroup_size=spec.workgroup_size,
    )
    total_waves = math.ceil(spec.total_workitems / arch.wavefront_width)
    waves_per_cu = max(1, math.ceil(total_waves / config.n_cu))
    simulated = min(waves_per_cu, max_waves)
    scale = waves_per_cu / simulated

    # --- shared inputs with the analytical model -------------------
    hit = spec.effective_l2_hit_rate(config.n_cu, arch.max_compute_units)
    limits = controller.achievable_bandwidth(
        f_mem=config.f_mem,
        n_cu=config.n_cu,
        waves_per_simd=occupancy.waves_per_simd,
        outstanding_per_wave=spec.outstanding_per_wave,
        access_efficiency=spec.access_efficiency,
    )
    crossing = clock_domains.crossing_bandwidth(config.f_cu)
    # Per-CU share of the efficiency/crossing-limited bandwidth. The
    # MLP limit is *emergent* here (waves stall on their own window),
    # so only the pin/crossing limits parameterize the server.
    subsystem_bw = min(limits.efficiency_limited, crossing)
    per_cu_bw = subsystem_bw / config.n_cu

    # --- per-wave structure ---------------------------------------
    mem_ops = spec.mem_insts_per_item
    # Group very memory-dense kernels into at most 64 segments so the
    # event count stays bounded; compute-only kernels get one segment.
    segments = max(1, min(64, int(round(mem_ops)) or 1))
    issue_cycles_per_wave = (
        spec.valu_insts_per_item / max(spec.lane_utilization, 1e-6)
        + spec.mem_insts_per_item
    ) * arch.cycles_per_valu_inst
    compute_per_segment = issue_cycles_per_wave / segments / config.f_cu
    dram_bytes_per_wave = (
        spec.footprint_bytes_per_item * arch.wavefront_width * (1.0 - hit)
    )
    bytes_per_segment = dram_bytes_per_wave / segments
    service_time = (
        bytes_per_segment / per_cu_bw if bytes_per_segment > 0 else 0.0
    )
    load_latency = controller.timing.access_latency(config.f_mem)
    max_inflight = max(1, int(round(spec.outstanding_per_wave)))
    resident_limit = occupancy.waves_per_simd * arch.simds_per_cu
    return _LaneParams(
        simulated=simulated,
        total_waves=total_waves,
        scale=scale,
        segments=segments,
        compute_per_segment=compute_per_segment,
        bytes_per_segment=bytes_per_segment,
        service_time=service_time,
        load_latency=load_latency,
        max_inflight=max_inflight,
        resident_limit=resident_limit,
        launch_overhead=spec.launch_overhead,
        simds_per_cu=arch.simds_per_cu,
    )


class EventDrivenModel:
    """Schedules wavefronts onto one representative CU.

    Args:
        arch: the GPU machine description.
        controller: the memory-subsystem bandwidth model (shared input).
        clock_domains: the L2->MC crossing model (shared input).
        max_simulated_waves: wave-population cap per run; launches larger
            than the cap are scaled linearly (steady-state assumption).
    """

    def __init__(self, arch: GpuArchitecture,
                 controller: MemoryControllerModel,
                 clock_domains: ClockDomainModel,
                 max_simulated_waves: int = 256):
        if max_simulated_waves < 8:
            raise AnalysisError("max_simulated_waves must be >= 8")
        self._arch = arch
        self._controller = controller
        self._clock_domains = clock_domains
        self._max_waves = max_simulated_waves

    # --- helpers -----------------------------------------------------------

    def _segments_per_wave(self, spec: KernelSpec) -> int:
        mem_ops = spec.mem_insts_per_item
        # Group very memory-dense kernels into at most 64 segments so the
        # event count stays bounded; compute-only kernels get one segment.
        return max(1, min(64, int(round(mem_ops)) or 1))

    def run(self, spec: KernelSpec, config: HardwareConfig) -> EventSimResult:
        """Execute ``spec`` at ``config`` on the event simulator."""
        params = _derive_lane_params(
            self._arch, self._controller, self._clock_domains,
            self._max_waves, spec, config,
        )
        simulated = params.simulated
        total_waves = params.total_waves
        scale = params.scale
        segments = params.segments
        compute_per_segment = params.compute_per_segment
        bytes_per_segment = params.bytes_per_segment
        service_time = params.service_time
        load_latency = params.load_latency
        max_inflight = params.max_inflight
        resident_limit = params.resident_limit
        arch = self._arch

        # --- event loop --------------------------------------------------
        waves = [_Wave(segments, compute_per_segment) for _ in range(simulated)]
        # SIMD availability as a min-heap of free times.
        simd_free = [0.0] * arch.simds_per_cu
        heapq.heapify(simd_free)
        server_free = 0.0
        busy_time = 0.0

        # Admission: only `resident_limit` waves are in flight at once.
        admitted = min(resident_limit, len(waves))
        ready: list = [(0.0, i) for i in range(admitted)]
        heapq.heapify(ready)
        next_admission = admitted
        completed = 0
        finish_time = 0.0

        while completed < len(waves):
            ready_at, index = heapq.heappop(ready)
            wave = waves[index]

            # Respect the wave's memory window: it may only issue its next
            # segment when it has an in-flight slot available.
            if len(wave.inflight) >= max_inflight:
                blocked_until = wave.inflight.popleft()
                ready_at = max(ready_at, blocked_until)
            # Retire any completed requests.
            while wave.inflight and wave.inflight[0] <= ready_at:
                wave.inflight.popleft()

            simd_at = heapq.heappop(simd_free)
            start = max(ready_at, simd_at)
            issue_end = start + wave.compute_cycles
            heapq.heappush(simd_free, issue_end)
            busy_time += wave.compute_cycles
            wave.segments_left -= 1

            if bytes_per_segment > 0:
                # The request queues at the shared bandwidth server.
                service_start = max(issue_end, server_free)
                server_free = service_start + service_time
                completion = server_free + load_latency
                wave.inflight.append(completion)

            if wave.segments_left > 0:
                heapq.heappush(ready, (issue_end, index))
                continue

            # Wave finished issuing; it completes when its last request
            # lands.
            wave.done_at = (
                wave.inflight[-1] if wave.inflight else issue_end
            )
            finish_time = max(finish_time, wave.done_at)
            completed += 1
            if next_admission < len(waves):
                heapq.heappush(ready, (wave.done_at, next_admission))
                next_admission += 1

        total_time = finish_time * scale + spec.launch_overhead
        simd_capacity = finish_time * arch.simds_per_cu
        busy_fraction = busy_time / simd_capacity if simd_capacity > 0 else 0.0
        return EventSimResult(
            time=total_time,
            simulated_waves=simulated,
            total_waves=total_waves,
            simd_busy_fraction=min(1.0, busy_fraction),
        )
