"""Batched (vectorized) evaluation results for whole configuration grids.

The scalar path — :meth:`~repro.platform.hd7970.HardwarePlatform.run_kernel`
— evaluates one (kernel, configuration) pair at a time and returns one
:class:`~repro.perf.result.KernelRunResult`. Every expensive workflow in
this repro (the ED² oracle, the Table 3 training-set build, the Figure 3-6
sweeps, the characterization suite) walks the same ~450-point grid, so the
batch path evaluates the whole grid at once: every per-configuration
quantity becomes a NumPy array over the configuration axis.

Two containers mirror the scalar result types:

* :class:`BatchModelOutput` ↔ :class:`~repro.perf.model.ModelOutput` —
  the performance model's raw outputs before power is attached,
* :class:`BatchRunResult` ↔ :class:`~repro.perf.result.KernelRunResult` —
  the full platform observation, including power and energy.

The vectorized kernels mirror the scalar arithmetic operation for
operation, so :meth:`BatchRunResult.result_at` reconstructs per-launch
results that match the scalar path exactly (to within one or two ULPs on
power terms, where ``x ** 2`` implementations may differ) — the batch/scalar
equivalence tests pin this down to a 1e-12 relative tolerance.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.gpu.config import HardwareConfig
from repro.gpu.occupancy import OccupancyResult
from repro.perf.counters import PerfCounters
from repro.perf.result import KernelRunResult, PowerSample, TimeBreakdown


@dataclass(frozen=True)
class BatchCounters:
    """Performance counters over the configuration axis.

    Configuration-dependent counters are arrays; configuration-invariant
    ones (divergence, register pressure, instruction counts) are scalars,
    exactly as the scalar synthesis produces them.
    """

    #: % of total GPU time processing vector ALU instructions, per config
    valu_busy: np.ndarray
    #: % of total GPU time the memory fetch/read unit is active, per config
    mem_unit_busy: np.ndarray
    #: % of total GPU time the memory fetch/read unit is stalled, per config
    mem_unit_stalled: np.ndarray
    #: % of total GPU time the write/store unit is stalled, per config
    write_unit_stalled: np.ndarray
    #: off-chip interconnect utilization (Eq. 1) in [0, 1], per config
    ic_activity: np.ndarray
    #: % of active vector ALU threads in a wave (config-invariant)
    valu_utilization: float
    #: VGPRs used, normalized (config-invariant)
    norm_vgpr: float
    #: SGPRs used, normalized (config-invariant)
    norm_sgpr: float
    #: total vector ALU instructions executed, millions (config-invariant)
    valu_insts_millions: float
    #: total vector fetch instructions, millions (config-invariant)
    vfetch_insts_millions: float
    #: total vector write instructions, millions (config-invariant)
    vwrite_insts_millions: float

    def at(self, index: int) -> PerfCounters:
        """The scalar :class:`PerfCounters` of one configuration."""
        return PerfCounters(
            valu_utilization=self.valu_utilization,
            valu_busy=float(self.valu_busy[index]),
            mem_unit_busy=float(self.mem_unit_busy[index]),
            mem_unit_stalled=float(self.mem_unit_stalled[index]),
            write_unit_stalled=float(self.write_unit_stalled[index]),
            ic_activity=float(self.ic_activity[index]),
            norm_vgpr=self.norm_vgpr,
            norm_sgpr=self.norm_sgpr,
            valu_insts_millions=self.valu_insts_millions,
            vfetch_insts_millions=self.vfetch_insts_millions,
            vwrite_insts_millions=self.vwrite_insts_millions,
        )


@dataclass(frozen=True)
class BatchModelOutput:
    """Raw performance-model outputs for a batch of configurations."""

    #: per-configuration compute-pipeline time (s)
    compute_time: np.ndarray
    #: per-configuration memory-system time (s)
    memory_time: np.ndarray
    #: per-configuration un-overlapped residue (s)
    overlap_residue: np.ndarray
    #: fixed launch/driver overhead (s, config-invariant)
    launch_overhead: float
    #: per-configuration total launch time (s)
    time: np.ndarray
    #: per-configuration achieved DRAM bandwidth (B/s)
    achieved_bandwidth: np.ndarray
    #: the kernel's occupancy (config-invariant)
    occupancy: OccupancyResult
    #: per-configuration binding bandwidth limit name
    bandwidth_limit: Tuple[str, ...]
    #: synthesised counters over the batch
    counters: BatchCounters


class BatchRunResult:
    """Everything observed from one kernel across a batch of configs.

    The array-of-structs scalar result becomes a struct-of-arrays: each
    field holds one value per configuration, in the order of ``configs``.
    """

    def __init__(
        self,
        kernel_name: str,
        configs: Tuple[HardwareConfig, ...],
        model: BatchModelOutput,
        gpu_power: np.ndarray,
        memory_power: np.ndarray,
        other_power: float,
    ):
        self.kernel_name = kernel_name
        self.configs = configs
        self.time = model.time
        self.compute_time = model.compute_time
        self.memory_time = model.memory_time
        self.overlap_residue = model.overlap_residue
        self.launch_overhead = model.launch_overhead
        self.achieved_bandwidth = model.achieved_bandwidth
        self.occupancy = model.occupancy
        self.bandwidth_limit = model.bandwidth_limit
        self.counters = model.counters
        self.gpu_power = gpu_power
        self.memory_power = memory_power
        self.other_power = other_power
        #: per-configuration total card power (W)
        self.card_power = gpu_power + memory_power + other_power
        #: per-configuration card energy (J)
        self.energy = self.card_power * self.time
        self._index: Optional[Dict[HardwareConfig, int]] = None
        self._result_cache: Dict[int, "KernelRunResult"] = {}

    def __len__(self) -> int:
        return len(self.configs)

    # --- derived metric surfaces ---------------------------------------------

    @property
    def performance(self) -> np.ndarray:
        """Per-configuration performance (1 / time)."""
        return 1.0 / self.time

    @property
    def ed(self) -> np.ndarray:
        """Per-configuration energy-delay (J*s)."""
        return self.energy * self.time

    @property
    def ed2(self) -> np.ndarray:
        """Per-configuration energy-delay-squared (J*s^2)."""
        return self.energy * self.time * self.time

    def with_time_multipliers(self, multipliers: np.ndarray) -> "BatchRunResult":
        """A copy with every launch time scaled element-wise.

        This is how the platform applies measurement noise to a batch: the
        deterministic surface stays cacheable and the noise is a
        post-lookup perturbation of ``time`` (and of the time-derived
        ``energy`` / ``ed`` / ``ed2`` / ``performance``). Power samples,
        counters and the time breakdown stay the noise-free model outputs
        — exactly as on the scalar path, where noise multiplies only the
        reported launch time.

        Raises:
            AnalysisError: if ``multipliers`` does not match the batch
                length one-to-one.
        """
        multipliers = np.asarray(multipliers, dtype=np.float64)
        if multipliers.shape != self.time.shape:
            raise AnalysisError(
                f"need one multiplier per configuration: got shape "
                f"{multipliers.shape} for {len(self)} configs"
            )
        clone = copy.copy(self)
        clone.time = self.time * multipliers
        clone.energy = clone.card_power * clone.time
        clone._result_cache = {}  # times differ: never share scalar results
        return clone

    # --- lookups -------------------------------------------------------------

    def index_of(self, config: HardwareConfig) -> int:
        """Position of ``config`` in the batch.

        Raises:
            AnalysisError: if the batch does not contain ``config``.
        """
        if self._index is None:
            self._index = {c: i for i, c in enumerate(self.configs)}
        try:
            return self._index[config]
        except KeyError:
            raise AnalysisError(
                f"batch does not contain configuration {config.describe()}"
            ) from None

    def time_at(self, config: HardwareConfig) -> float:
        """Launch time (s) at one configuration."""
        return float(self.time[self.index_of(config)])

    def result_at(self, index: int) -> KernelRunResult:
        """Reconstruct the scalar :class:`KernelRunResult` of one config.

        Reconstructions are memoized per index: the runner re-launches
        the same kernel at the same configuration every application
        iteration, and the results are immutable value objects, so
        repeated launches share one instance.
        """
        cached = self._result_cache.get(index)
        if cached is not None:
            return cached
        breakdown = TimeBreakdown(
            compute=float(self.compute_time[index]),
            memory=float(self.memory_time[index]),
            overlap_residue=float(self.overlap_residue[index]),
            launch_overhead=self.launch_overhead,
        )
        power = PowerSample(
            gpu=float(self.gpu_power[index]),
            memory=float(self.memory_power[index]),
            other=self.other_power,
        )
        result = KernelRunResult(
            kernel_name=self.kernel_name,
            config=self.configs[index],
            time=float(self.time[index]),
            breakdown=breakdown,
            counters=self.counters.at(index),
            power=power,
            achieved_bandwidth=float(self.achieved_bandwidth[index]),
            occupancy=self.occupancy.occupancy,
            bandwidth_limit=self.bandwidth_limit[index],
        )
        self._result_cache[index] = result
        return result

    def result_at_config(self, config: HardwareConfig) -> KernelRunResult:
        """Scalar result at one configuration (by grid lookup)."""
        return self.result_at(self.index_of(config))

    def to_results(self) -> List[KernelRunResult]:
        """All scalar results, in batch order."""
        return [self.result_at(i) for i in range(len(self))]
