"""Lane-major lockstep batch engine for the event-driven simulator.

:class:`~repro.perf.eventsim.EventDrivenModel` steps one heap event at a
time in pure Python — ~1.4us per event, and the cold ``reproduce``
critical path runs two million of them. This module replays the *same*
event loop for many independent (kernel-spec, config) **lanes** at once,
one numpy ufunc per loop statement across all lanes, so the Python
interpreter executes per *event wavefront* instead of per event.

Equivalence contract (the PR 2 batch-sweep / PR 7 batched-controller
contract): every lane performs **the exact same float64 operations in
the exact same order** as a scalar ``EventDrivenModel.run`` of that
(spec, config), so every ``EventSimResult`` field is bitwise-identical.
The scalar loop stays in the tree as the differential oracle
(``tests/test_eventsim_batch.py``).

Why lockstep is exact
---------------------

The scalar loop pops the ready heap exactly once per iteration and the
heap is never empty while waves remain, so a lane's k-th loop iteration
is its k-th heap event — lanes never idle and never diverge in *shape*,
only in values. Each lane therefore runs exactly
``simulated_waves x segments`` iterations, a number known before the
loop starts. Lanes are sorted by descending event count and simply drop
off the end of the active prefix at precomputed iterations: no masking,
no "parked lane" state, every active lane does real work every
iteration.

State layout (per block of lanes)
---------------------------------

* **Ready queue** — the heap's contents as per-lane slot columns:
  ``tb[slot, lane]`` holds each entry's ready time *as its int64 bit
  pattern* (times are non-negative floats, so integer order equals
  float order; empty slots hold +inf bits) and ``ri[slot, lane]`` the
  entry's wave index, stored **inverted** (``K - index`` for a
  dtype-max constant ``K``) in the narrowest dtype that fits.
  ``heapq`` pops the lexicographic minimum ``(time, index)``; the pop
  is a column min over ``tb``, an equality mask, and a column max over
  ``mask * inverted_index`` — max of ``K - index`` is the min index,
  and the multiply zeroes losing slots out of the race. A wave
  sits in at most one slot, tracked through an inverse map
  (``pos[wave] -> flat slot address``) so state write-back is three
  1-d scatters. A lane only ever occupies
  ``min(resident_limit, simulated)`` slots, so the slot axis also
  shrinks with the active prefix.
* **SIMD free heap** — ``simds_per_cu`` sorted registers per lane
  (ascending). Popping the min is register 0; pushing ``issue_end``
  re-sorts by a fixed compare-exchange chain. A sorted register file
  and a binary heap are the same multiset with the same minimum, which
  is all the scalar loop observes. (An ``argmin``-scatter replacement
  of one minimal register would also preserve the multiset, but
  ``np.argmin`` costs several times the whole exchange chain.)
* **In-flight windows** — the per-wave completion deque becomes a ring
  of ``M`` (power of two >= ``max_inflight``) float slots per wave,
  and the scalar loop's stall handling collapses to a single
  ``maximum``. The scalar loop blocks a wave when all ``max_inflight``
  window slots are occupied, waiting until its oldest in-flight request
  completes (then retires everything older than the new ready time).
  Completions are appended in non-decreasing order per wave (they all
  ride the lane's monotone bandwidth server), so the oldest *live*
  entry is the one appended ``max_inflight`` appends ago, at ring
  position ``(appends - max_inflight) mod M`` — and when that entry is
  already retired, its value is at most the wave's previous effective
  ready time, which never exceeds the current pop time (a wave's heap
  re-entry time is its previous ``issue_end``, which is >= its previous
  ready time). Either way,
  ``ready_at = max(pop_time, ring[(appends - max_inflight) mod M])``
  reproduces the scalar blocked/not-blocked result exactly, with no
  retirement bookkeeping at all: retirement is implied, never stored.
  Ring reuse is safe because at any append at most ``max_inflight``
  entries are live, so the slot being overwritten (``M`` appends old)
  is always dead; never-written slots read ``-inf`` and lose the max.
  (Sizing rings at exactly ``max_inflight`` would make the read and
  write address coincide, but the slot then needs an integer-division
  mod, which costs more than the subtract it saves.)

All per-lane setup constants come from
:func:`repro.perf.eventsim._derive_lane_params` — the scalar setup
path, extracted — so both engines feed identical float64 constants into
identical loop arithmetic.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.gpu.architecture import GpuArchitecture
from repro.gpu.clocks import ClockDomainModel
from repro.gpu.config import HardwareConfig
from repro.memory.controller import MemoryControllerModel
from repro.perf.eventsim import EventSimResult, _derive_lane_params, _LaneParams
from repro.perf.kernelspec import KernelSpec

#: int64 bit pattern of float64 +inf (empty ready slot).
_INF_BITS = np.float64(np.inf).view(np.int64).item()


def _finalize(params: _LaneParams, finish_time: float,
              busy_time: float) -> EventSimResult:
    """The scalar loop's result assembly, expression for expression."""
    total_time = finish_time * params.scale + params.launch_overhead
    simd_capacity = finish_time * params.simds_per_cu
    busy_fraction = busy_time / simd_capacity if simd_capacity > 0 else 0.0
    return EventSimResult(
        time=total_time,
        simulated_waves=params.simulated,
        total_waves=params.total_waves,
        simd_busy_fraction=min(1.0, busy_fraction),
    )


class BatchedEventModel:
    """Runs the event-driven model for many lanes in lockstep.

    Constructor arguments mirror :class:`EventDrivenModel`; a batch of
    one lane computes exactly a scalar run, only slower.

    Args:
        arch: the GPU machine description.
        controller: the memory-subsystem bandwidth model (shared input).
        clock_domains: the L2->MC crossing model (shared input).
        max_simulated_waves: wave-population cap per lane (scalar
            contract: >= 8).
        max_lanes_per_block: lanes simulated per lockstep block; larger
            batches are split to bound the working set (the ready-queue
            arrays are ``O(residency x lanes)``, the wave arrays
            ``O(lanes x waves)``).
    """

    def __init__(self, arch: GpuArchitecture,
                 controller: MemoryControllerModel,
                 clock_domains: ClockDomainModel,
                 max_simulated_waves: int = 256,
                 max_lanes_per_block: int = 4096):
        if max_simulated_waves < 8:
            raise AnalysisError("max_simulated_waves must be >= 8")
        if max_lanes_per_block < 1:
            raise AnalysisError("max_lanes_per_block must be >= 1")
        self._arch = arch
        self._controller = controller
        self._clock_domains = clock_domains
        self._max_waves = max_simulated_waves
        self._max_lanes = max_lanes_per_block

    # --- public API --------------------------------------------------------

    def run_pairs(self, pairs: Sequence[Tuple[KernelSpec, HardwareConfig]]
                  ) -> List[EventSimResult]:
        """Simulate arbitrary (spec, config) lanes; results in input order."""
        params = [
            _derive_lane_params(self._arch, self._controller,
                                self._clock_domains, self._max_waves,
                                spec, config)
            for spec, config in pairs
        ]
        results: List[EventSimResult] = []
        for start in range(0, len(params), self._max_lanes):
            block = params[start:start + self._max_lanes]
            for lane_params, (finish, busy) in zip(block,
                                                   _simulate_block(block)):
                results.append(_finalize(lane_params, finish, busy))
        return results

    def run_batch(self, specs: Sequence[KernelSpec],
                  configs: Sequence[HardwareConfig]
                  ) -> List[List[EventSimResult]]:
        """The spec x config cross product, as ``[i_spec][j_config]``."""
        pairs = [(spec, config) for spec in specs for config in configs]
        flat = self.run_pairs(pairs)
        n = len(configs)
        return [flat[i * n:(i + 1) * n] for i in range(len(specs))]


def _index_dtype(max_waves: int):
    """Narrowest unsigned dtype that can carry inverted wave indices.

    Capped at uint32 so inverted indices subtract exactly from int64
    flat offsets; a wider population would need petabytes of per-wave
    state long before the index math broke.
    """
    for dt in (np.uint8, np.uint16, np.uint32):
        if max_waves - 1 <= np.iinfo(dt).max:
            return dt
    raise AnalysisError(
        f"wave population {max_waves} exceeds the batched engine's "
        "uint32 index space")


def _simulate_block(params: Sequence[_LaneParams]
                    ) -> List[Tuple[float, float]]:
    """Lockstep-simulate one block; returns (finish_time, busy_time) per lane.

    The engine is bound to one architecture, so every lane shares
    ``simds_per_cu``; this is asserted because the SIMD register file is
    shared-shape across lanes.
    """
    n = len(params)
    if n == 0:
        return []
    simds = {p.simds_per_cu for p in params}
    if len(simds) != 1:
        raise AnalysisError("lanes disagree on simds_per_cu")
    n_simds = simds.pop()

    # Lanes sorted by descending event count: a lane's event count is
    # exactly its iteration count, so active lanes are always a prefix
    # and lane retirement happens at precomputed iterations.
    events = [p.simulated * p.segments for p in params]
    order = sorted(range(n), key=lambda i: -events[i])
    ev = np.array([events[i] for i in order], dtype=np.int64)

    # --- per-lane constants (sorted order) --------------------------------
    comp = np.array([params[i].compute_per_segment for i in order])
    stime = np.array([params[i].service_time for i in order])
    lat = np.array([params[i].load_latency for i in order])
    hasmem = np.array([params[i].bytes_per_segment > 0 for i in order])
    segc = np.array([params[i].segments for i in order], dtype=np.int64)
    minf = np.array([params[i].max_inflight for i in order], dtype=np.int64)
    sim = np.array([params[i].simulated for i in order], dtype=np.int64)
    slots_used = np.array(
        [min(params[i].resident_limit, params[i].simulated) for i in order],
        dtype=np.int64,
    )
    allmem = bool(hasmem.all())

    # --- ready queue ------------------------------------------------------
    R = int(slots_used.max())
    pmax = np.maximum.accumulate(slots_used)  # slot rows live per prefix
    maxw = int(sim.max())
    idx_dt = _index_dtype(maxw)
    kinv = np.iinfo(idx_dt).max  # index i is stored inverted as kinv - i

    srange = np.arange(R, dtype=np.int64)
    live0 = srange[:, None] < slots_used[None, :]
    tb = np.where(live0, np.int64(0), np.int64(_INF_BITS))  # time 0.0 bits
    ri = np.where(live0, kinv - srange[:, None], 0).astype(idx_dt)
    tbf = tb.reshape(-1)
    rif = ri.reshape(-1)

    # --- per-wave state (ragged, lane-major) --------------------------------
    off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sim, out=off[1:])
    laneoff = off[:n].copy()
    total_w = int(off[n])
    # Wave w of lane l lives at flat index laneoff[l] + w.
    seg = np.zeros(total_w, dtype=np.int64)    # segments issued per wave
    wid = np.arange(total_w, dtype=np.int64)
    lane_of = np.repeat(np.arange(n, dtype=np.int64), sim)
    # pos maps wave -> flat address of its ready-queue slot (slot*n+lane).
    pos = (wid - np.repeat(laneoff, sim)) * n + lane_of
    M = 1 << (int(minf.max()) - 1).bit_length()  # window ring size (pow2)
    mmask = np.int64(M - 1)
    ws4 = np.full(total_w * M, -np.inf)          # completion ring slots

    # --- SIMD register file (sorted ascending) ------------------------------
    sv = [np.zeros(n) for _ in range(n_simds)]

    # --- accumulators --------------------------------------------------------
    srv = np.zeros(n)          # shared bandwidth server free time
    busy = np.zeros(n)
    fin = np.zeros(n)
    nadm_inv = kinv - slots_used     # kinv - next admission index
    nwinv = kinv - sim               # admissions remain while nadm_inv > nwinv
    loinv = laneoff + kinv           # flat index = loinv - inverted index

    # --- scratch (full width, sliced per phase) ------------------------------
    eqb = np.empty((R, n), dtype=bool)
    candb = np.empty((R, n), dtype=idx_dt)
    tmin = np.empty(n, dtype=np.int64)
    tminf_full = tmin.view(np.float64)
    wsm = np.empty(n, dtype=idx_dt)
    b64 = [np.empty(n, dtype=np.int64) for _ in range(6)]
    bf = [np.empty(n) for _ in range(8)]
    bb = [np.empty(n, dtype=bool) for _ in range(2)]
    nt = np.empty(n)
    nt64_full = nt.view(np.int64)
    ni = np.empty(n, dtype=idx_dt)

    copyto = np.copyto
    min_reduce = np.minimum.reduce
    max_reduce = np.maximum.reduce
    equal, multiply, subtract = np.equal, np.multiply, np.subtract
    add, maximum, minimum = np.add, np.maximum, np.minimum
    greater, logical_and = np.greater, np.logical_and
    bitwise_and = np.bitwise_and

    boundaries = np.unique(ev)  # ascending iteration counts
    it = 0
    La = n
    for bound in boundaries.tolist():
        steps = bound - it
        it = bound
        Ra = int(pmax[La - 1])
        # Active views. tb/ri row stride stays n (full width): pos holds
        # flat addresses into the full arrays.
        tb_v = tb[:Ra, :La]
        ri_v = ri[:Ra, :La]
        eq_v = eqb[:Ra, :La]
        cand_v = candb[:Ra, :La]
        tmin_v = tmin[:La]
        tminf = tminf_full[:La]
        wsm_v = wsm[:La]
        flat_v, addr_v, sg_v, iss_v, fM_v, x64_v = (b[:La] for b in b64)
        valb_v, ra_v, start_v, ie_v, ss_v, compl_v, tA, tB = (
            b[:La] for b in bf)
        done_v, can_v = (b[:La] for b in bb)
        nt_v = nt[:La]
        nt64_v = nt64_full[:La]
        ni_v = ni[:La]
        loinv_v = loinv[:La]
        comp_v = comp[:La]
        stime_v = stime[:La]
        lat_v = lat[:La]
        hm_v = hasmem[:La]
        segc_v = segc[:La]
        minf_v = minf[:La]
        srv_v = srv[:La]
        busy_v = busy[:La]
        fin_v = fin[:La]
        nadm_inv_v = nadm_inv[:La]
        nwinv_v = nwinv[:La]
        sv_v = [s[:La] for s in sv]
        sv0 = sv_v[0]

        for _ in range(steps):
            # --- pop: lexicographic (ready_at, index) min per lane -----
            min_reduce(tb_v, 0, None, tmin_v)
            equal(tb_v, tmin_v, eq_v)
            multiply(eq_v, ri_v, cand_v)
            max_reduce(cand_v, 0, None, wsm_v)
            subtract(loinv_v, wsm_v, flat_v)
            pos.take(flat_v, None, addr_v, "clip")

            # --- in-flight window: one max covers block and retire -------
            seg.take(flat_v, None, iss_v, "clip")     # appends so far
            subtract(iss_v, minf_v, x64_v)
            bitwise_and(x64_v, mmask, x64_v)
            multiply(flat_v, M, fM_v)
            add(fM_v, x64_v, x64_v)
            ws4.take(x64_v, None, valb_v, "clip")
            maximum(tminf, valb_v, out=ra_v)          # effective ready_at

            # --- issue one segment on the earliest-free SIMD -------------
            add(iss_v, 1, sg_v)
            seg[flat_v] = sg_v
            equal(sg_v, segc_v, done_v)
            maximum(ra_v, sv0, out=start_v)
            add(start_v, comp_v, ie_v)
            carry = ie_v
            tmps = (tA, tB)
            for k in range(1, n_simds - 1):
                tmp = tmps[(k - 1) & 1]
                maximum(sv_v[k], carry, out=tmp)
                minimum(sv_v[k], carry, out=sv_v[k - 1])
                carry = tmp
            last = sv_v[n_simds - 1]
            minimum(last, carry, out=sv_v[n_simds - 2])
            maximum(last, carry, out=last)
            add(busy_v, comp_v, busy_v)

            # --- memory request at the shared bandwidth server ------------
            bitwise_and(iss_v, mmask, iss_v)          # append ring slot
            add(fM_v, iss_v, fM_v)
            if allmem:
                maximum(ie_v, srv_v, out=ss_v)
                add(ss_v, stime_v, srv_v)
                add(srv_v, lat_v, compl_v)
                ws4[fM_v] = compl_v
                done_at = compl_v
            else:
                maximum(ie_v, srv_v, out=ss_v)
                add(ss_v, stime_v, ss_v)
                copyto(srv_v, ss_v, where=hm_v)
                add(srv_v, lat_v, compl_v)
                copyto(ss_v, -np.inf)
                copyto(ss_v, compl_v, where=hm_v)
                ws4[fM_v] = ss_v                      # -inf = no request
                done_at = start_v                     # reuse as scratch
                copyto(done_at, ie_v)
                copyto(done_at, compl_v, where=hm_v)

            # --- completion, admission, ready-queue push -------------------
            maximum(fin_v, done_at, out=ra_v)
            copyto(fin_v, ra_v, where=done_v)
            greater(nadm_inv_v, nwinv_v, can_v)
            logical_and(can_v, done_v, can_v)
            copyto(nt_v, ie_v)
            copyto(nt_v, np.inf, where=done_v)
            copyto(nt_v, done_at, where=can_v)
            copyto(ni_v, wsm_v)
            copyto(ni_v, nadm_inv_v, where=can_v, casting="unsafe")
            subtract(nadm_inv_v, can_v, nadm_inv_v)
            subtract(loinv_v, ni_v, x64_v)
            pos[x64_v] = addr_v
            tbf[addr_v] = nt64_v
            rif[addr_v] = ni_v

        La = int(np.searchsorted(-ev, -bound, side="left"))

    out: List[Tuple[float, float]] = [(0.0, 0.0)] * n
    for sorted_pos, orig in enumerate(order):
        out[orig] = (float(fin[sorted_pos]), float(busy[sorted_pos]))
    return out
