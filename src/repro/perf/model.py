"""Analytical execution-time model for GCN kernels.

Given a :class:`~repro.perf.kernelspec.KernelSpec` and a
:class:`~repro.gpu.config.HardwareConfig`, the model produces the launch
time, a time breakdown, the achieved DRAM bandwidth, and the synthesised
performance counters. It is deliberately simple — a handful of first-order
microarchitectural effects — but those effects are exactly the ones the
paper's characterization section identifies, so the qualitative surfaces
over the 450-point configuration space match:

1. **Compute pipeline** (Figure 3a): wavefronts issue VALU instructions at
   4 cycles each over ``n_cu x 4`` SIMDs; divergence serializes control
   paths, inflating issued instructions by ``1 / lane_utilization``
   (Figure 8); time scales as ``1 / (n_cu * f_cu)``.
2. **Memory system** (Figure 3b): DRAM traffic is the L2-miss fraction of
   the kernel footprint; achievable bandwidth is the minimum of controller
   efficiency, an MLP (Little's-law) limit that scales with occupancy and
   active CUs (Figure 7), and the L2->MC clock-domain crossing which
   scales with *compute* frequency (Figure 9).
3. **Cache interference**: the effective L2 hit rate recovers as CUs are
   power-gated (Section 7.1's BPT/CFD/XSBench speedups).
4. **Overlap**: total time is ``max(compute, memory)`` plus a small
   un-overlapped residue and a fixed launch overhead, which is what makes
   tiny kernels (SRAD.Prepare, 8 ALU instructions) insensitive to every
   tunable (Figure 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.gpu.architecture import GpuArchitecture
from repro.gpu.clocks import ClockDomainModel
from repro.gpu.config import HardwareConfig
from repro.gpu.occupancy import OccupancyResult, compute_occupancy
from repro.memory.controller import MemoryControllerModel
from repro.perf.batch import BatchCounters, BatchModelOutput
from repro.perf.counters import PerfCounters
from repro.perf.kernelspec import KernelSpec
from repro.perf.result import TimeBreakdown


@dataclass(frozen=True)
class ModelOutput:
    """Raw model outputs before power is attached."""

    breakdown: TimeBreakdown
    counters: PerfCounters
    achieved_bandwidth: float
    occupancy: OccupancyResult
    bandwidth_limit: str

    @property
    def time(self) -> float:
        """Total launch time (s)."""
        return self.breakdown.total


class PerformanceModel:
    """Maps (kernel, configuration) -> time, counters, bandwidth."""

    def __init__(
        self,
        arch: GpuArchitecture,
        controller: MemoryControllerModel,
        clock_domains: ClockDomainModel,
    ):
        self._arch = arch
        self._controller = controller
        self._clock_domains = clock_domains

    @property
    def arch(self) -> GpuArchitecture:
        """The modelled architecture."""
        return self._arch

    # --- pieces -----------------------------------------------------------------

    def _wavefront_count(self, spec: KernelSpec) -> int:
        return math.ceil(spec.total_workitems / self._arch.wavefront_width)

    def _compute_time(self, spec: KernelSpec, config: HardwareConfig) -> float:
        """Time the compute pipelines need, ignoring memory (s)."""
        waves = self._wavefront_count(spec)
        issue_cycles_per_wave = (
            spec.valu_insts_per_item / max(spec.lane_utilization, 1e-6)
            + spec.mem_insts_per_item
        ) * self._arch.cycles_per_valu_inst
        simds = config.n_cu * self._arch.simds_per_cu
        total_cycles = waves * issue_cycles_per_wave / simds
        return total_cycles / config.f_cu

    def _dram_traffic(self, spec: KernelSpec, config: HardwareConfig) -> float:
        """Bytes that miss L2 and travel to DRAM."""
        hit = spec.effective_l2_hit_rate(config.n_cu, self._arch.max_compute_units)
        footprint = spec.footprint_bytes_per_item * spec.total_workitems
        return footprint * (1.0 - hit)

    def _memory_time(
        self, spec: KernelSpec, config: HardwareConfig,
        occupancy: OccupancyResult,
    ) -> tuple:
        """(memory time s, achieved bandwidth B/s, binding limit name)."""
        traffic = self._dram_traffic(spec, config)
        if traffic <= 0:
            return 0.0, 0.0, "none"

        limits = self._controller.achievable_bandwidth(
            f_mem=config.f_mem,
            n_cu=config.n_cu,
            waves_per_simd=occupancy.waves_per_simd,
            outstanding_per_wave=spec.outstanding_per_wave,
            access_efficiency=spec.access_efficiency,
        )
        crossing = self._clock_domains.crossing_bandwidth(config.f_cu)
        achievable = min(limits.achievable, crossing)
        if achievable == crossing and crossing < limits.achievable:
            binding = "crossing"
        else:
            binding = limits.binding_limit

        # The kernel only *demands* bandwidth at the rate its resident waves
        # generate misses; achieved bandwidth is capped by that demand when
        # the kernel is compute bound (handled by the caller via busy
        # fractions, not here — memory time is simply traffic/achievable).
        return traffic / achievable, achievable, binding

    # --- main entry -----------------------------------------------------------------

    def run(self, spec: KernelSpec, config: HardwareConfig) -> ModelOutput:
        """Evaluate the model for one kernel launch at one configuration."""
        occupancy = compute_occupancy(
            self._arch,
            vgprs_per_workitem=spec.vgprs_per_workitem,
            sgprs_per_wave=spec.sgprs_per_wave,
            lds_bytes_per_workgroup=spec.lds_bytes_per_workgroup,
            workgroup_size=spec.workgroup_size,
        )

        t_comp = self._compute_time(spec, config)
        t_mem, achievable_bw, binding = self._memory_time(spec, config, occupancy)

        overlap_residue = spec.overlap_inefficiency * min(t_comp, t_mem)
        breakdown = TimeBreakdown(
            compute=t_comp,
            memory=t_mem,
            overlap_residue=overlap_residue,
            launch_overhead=spec.launch_overhead,
        )
        total_time = breakdown.total

        traffic = self._dram_traffic(spec, config)
        achieved_bw = traffic / total_time if total_time > 0 else 0.0

        counters = self._synthesize_counters(
            spec, config, breakdown, achieved_bw, occupancy
        )
        return ModelOutput(
            breakdown=breakdown,
            counters=counters,
            achieved_bandwidth=achieved_bw,
            occupancy=occupancy,
            bandwidth_limit=binding,
        )

    # --- batched entry ----------------------------------------------------------

    def run_batch(
        self, spec: KernelSpec, configs: Sequence[HardwareConfig]
    ) -> BatchModelOutput:
        """Evaluate the model for one kernel over many configurations.

        Vectorized equivalent of calling :meth:`run` once per configuration:
        every per-config quantity is computed as a NumPy array over the
        configuration axis, mirroring the scalar arithmetic operation for
        operation so the results match :meth:`run` bit for bit. Occupancy,
        instruction counts and register pressure are configuration-invariant
        and computed once.
        """
        configs = tuple(configs)
        if not configs:
            raise AnalysisError("run_batch requires at least one configuration")

        # Small integers are exact in float64, so keeping everything in one
        # dtype preserves bitwise agreement with the scalar int/float mix.
        n_cu = np.array([c.n_cu for c in configs], dtype=np.float64)
        f_cu = np.array([c.f_cu for c in configs], dtype=np.float64)
        f_mem = np.array([c.f_mem for c in configs], dtype=np.float64)

        occupancy = compute_occupancy(
            self._arch,
            vgprs_per_workitem=spec.vgprs_per_workitem,
            sgprs_per_wave=spec.sgprs_per_wave,
            lds_bytes_per_workgroup=spec.lds_bytes_per_workgroup,
            workgroup_size=spec.workgroup_size,
        )
        waves = self._wavefront_count(spec)

        # Compute time (mirrors _compute_time).
        issue_cycles_per_wave = (
            spec.valu_insts_per_item / max(spec.lane_utilization, 1e-6)
            + spec.mem_insts_per_item
        ) * self._arch.cycles_per_valu_inst
        simds = n_cu * self._arch.simds_per_cu
        t_comp = waves * issue_cycles_per_wave / simds / f_cu

        # DRAM traffic (mirrors _dram_traffic / effective_l2_hit_rate).
        gated_fraction = 1.0 - n_cu / self._arch.max_compute_units
        hit = np.minimum(
            0.98, spec.l2_hit_rate + spec.l2_thrash_sensitivity * gated_fraction
        )
        footprint = spec.footprint_bytes_per_item * spec.total_workitems
        traffic = footprint * (1.0 - hit)
        has_traffic = traffic > 0

        # Memory time (mirrors _memory_time).
        peak, efficiency_limited, mlp_limited = (
            self._controller.achievable_bandwidth_many(
                f_mem=f_mem,
                n_cu=n_cu,
                waves_per_simd=occupancy.waves_per_simd,
                outstanding_per_wave=spec.outstanding_per_wave,
                access_efficiency=spec.access_efficiency,
            )
        )
        limit_achievable = np.minimum(efficiency_limited, mlp_limited)
        crossing = self._clock_domains.crossing_bytes_per_cycle * f_cu
        achievable = np.minimum(limit_achievable, crossing)
        t_mem = np.where(has_traffic, traffic / achievable, 0.0)
        binding = np.where(
            ~has_traffic,
            "none",
            np.where(
                crossing < limit_achievable,
                "crossing",
                np.where(efficiency_limited <= mlp_limited, "efficiency", "mlp"),
            ),
        )

        overlap_residue = spec.overlap_inefficiency * np.minimum(t_comp, t_mem)
        # TimeBreakdown.total: max(compute, memory) + residue + overhead.
        total = np.maximum(t_comp, t_mem) + overlap_residue + spec.launch_overhead
        # t_comp > 0 always (a spec executes at least one instruction), so
        # total > 0 and the scalar path's `if total > 0` guards never bind.
        achieved_bw = traffic / total

        counters = self._synthesize_counters_batch(
            spec, n_cu, f_cu, f_mem, t_comp, t_mem, total, achieved_bw
        )
        return BatchModelOutput(
            compute_time=t_comp,
            memory_time=t_mem,
            overlap_residue=overlap_residue,
            launch_overhead=spec.launch_overhead,
            time=total,
            achieved_bandwidth=achieved_bw,
            occupancy=occupancy,
            bandwidth_limit=tuple(str(b) for b in binding),
            counters=counters,
        )

    def _synthesize_counters_batch(
        self,
        spec: KernelSpec,
        n_cu: np.ndarray,
        f_cu: np.ndarray,
        f_mem: np.ndarray,
        t_comp: np.ndarray,
        t_mem: np.ndarray,
        total: np.ndarray,
        achieved_bw: np.ndarray,
    ) -> BatchCounters:
        """Vectorized :meth:`_synthesize_counters` (total > 0 guaranteed)."""
        valu_busy = 100.0 * np.minimum(1.0, t_comp / total)

        waves = self._wavefront_count(spec)
        cache_cycles = (
            waves * spec.mem_insts_per_item * self._arch.cycles_per_valu_inst
            / (n_cu * self._arch.simds_per_cu)
        )
        t_cache = cache_cycles / f_cu
        mem_busy = 100.0 * np.minimum(1.0, (t_mem + t_cache) / total)

        exposed = np.maximum(0.0, t_mem - t_comp)
        stalled = 100.0 * np.minimum(1.0, exposed / total)
        write_share = (
            spec.vwrite_insts_per_item / spec.mem_insts_per_item
            if spec.mem_insts_per_item > 0
            else 0.0
        )
        mem_unit_stalled = stalled * (1.0 - write_share)
        write_unit_stalled = stalled * write_share

        # Peak bandwidth, mirroring GpuArchitecture.peak_memory_bandwidth.
        per_mc_bytes = self._arch.bus_width_bits_per_mc / 8.0
        peak_bw = (f_mem * per_mc_bytes * self._arch.memory_controllers
                   * self._arch.gddr5_transfer_rate)
        ic_activity = np.minimum(1.0, achieved_bw / peak_bw)

        lane_factor = self._arch.wavefront_width / 1.0e6
        return BatchCounters(
            valu_busy=valu_busy,
            mem_unit_busy=mem_busy,
            mem_unit_stalled=mem_unit_stalled,
            write_unit_stalled=write_unit_stalled,
            ic_activity=ic_activity,
            valu_utilization=100.0 * spec.lane_utilization,
            norm_vgpr=min(1.0, spec.vgprs_per_workitem / self._arch.vgprs_per_simd),
            norm_sgpr=min(1.0, spec.sgprs_per_wave / self._arch.sgprs_per_wave_file),
            valu_insts_millions=waves * spec.valu_insts_per_item * lane_factor,
            vfetch_insts_millions=waves * spec.vfetch_insts_per_item * lane_factor,
            vwrite_insts_millions=waves * spec.vwrite_insts_per_item * lane_factor,
        )

    # --- counters -----------------------------------------------------------------

    def _synthesize_counters(
        self,
        spec: KernelSpec,
        config: HardwareConfig,
        breakdown: TimeBreakdown,
        achieved_bw: float,
        occupancy: OccupancyResult,
    ) -> PerfCounters:
        total = breakdown.total
        t_comp = breakdown.compute
        t_mem = breakdown.memory

        valu_busy = 100.0 * min(1.0, t_comp / total) if total > 0 else 0.0

        # The memory fetch/read unit is "active including stalls and cache
        # effects" (Table 2): busy whenever DRAM or cache traffic is in
        # flight. Cache service time runs on the compute clock.
        waves = self._wavefront_count(spec)
        cache_cycles = (
            waves * spec.mem_insts_per_item * self._arch.cycles_per_valu_inst
            / (config.n_cu * self._arch.simds_per_cu)
        )
        t_cache = cache_cycles / config.f_cu
        mem_busy = 100.0 * min(1.0, (t_mem + t_cache) / total) if total > 0 else 0.0

        # Stall counters: the exposed (un-hidden) portion of memory time.
        exposed = max(0.0, t_mem - t_comp)
        stalled = 100.0 * min(1.0, exposed / total) if total > 0 else 0.0
        write_share = (
            spec.vwrite_insts_per_item / spec.mem_insts_per_item
            if spec.mem_insts_per_item > 0
            else 0.0
        )
        mem_unit_stalled = stalled * (1.0 - write_share)
        write_unit_stalled = stalled * write_share

        peak_bw = self._arch.peak_memory_bandwidth(config.f_mem)
        ic_activity = min(1.0, achieved_bw / peak_bw)

        waves_total = self._wavefront_count(spec)
        lane_factor = self._arch.wavefront_width / 1.0e6
        return PerfCounters(
            valu_utilization=100.0 * spec.lane_utilization,
            valu_busy=valu_busy,
            mem_unit_busy=mem_busy,
            mem_unit_stalled=mem_unit_stalled,
            write_unit_stalled=write_unit_stalled,
            ic_activity=ic_activity,
            norm_vgpr=min(1.0, spec.vgprs_per_workitem / self._arch.vgprs_per_simd),
            norm_sgpr=min(1.0, spec.sgprs_per_wave / self._arch.sgprs_per_wave_file),
            valu_insts_millions=waves_total * spec.valu_insts_per_item * lane_factor,
            vfetch_insts_millions=waves_total * spec.vfetch_insts_per_item * lane_factor,
            vwrite_insts_millions=waves_total * spec.vwrite_insts_per_item * lane_factor,
        )
