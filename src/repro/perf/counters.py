"""Synthesised CodeXL-style performance counters (paper Table 2).

The Harmonia controller never sees the simulator's internals — it consumes
the same counter vocabulary the paper's implementation read through CodeXL.
This module defines that vocabulary and the two derived metrics the paper
computes from it:

* ``icActivity`` (Equations 1-2): achieved read+write DRAM bandwidth as a
  fraction of the Equation-2 peak,
* ``C-to-M Intensity`` (Equation 3):
  ``(VALUBusy * VALUUtilization) / 100 / MemUnitBusy``, normalized to 100.

All percentage counters are in [0, 100].
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PerfCounters:
    """One kernel launch's performance-counter sample.

    Attributes mirror Table 2 plus the raw instruction counters used in
    Figure 14 (VALUInsts / VFetchInsts / VWriteInsts).
    """

    #: % of active vector ALU threads in a wave (branch divergence proxy)
    valu_utilization: float
    #: % of total GPU time spent processing vector ALU instructions
    valu_busy: float
    #: % of total GPU time the memory fetch/read unit is active
    mem_unit_busy: float
    #: % of total GPU time the memory fetch/read unit is stalled
    mem_unit_stalled: float
    #: % of total GPU time the write/store unit is stalled
    write_unit_stalled: float
    #: off-chip interconnect utilization (Eq. 1), as a fraction in [0, 1]
    ic_activity: float
    #: VGPRs used, normalized by the 256-entry file (Table 2)
    norm_vgpr: float
    #: SGPRs used, normalized by the 102-entry budget (Table 2)
    norm_sgpr: float
    #: total vector ALU instructions executed (millions)
    valu_insts_millions: float
    #: total vector fetch instructions executed (millions)
    vfetch_insts_millions: float
    #: total vector write instructions executed (millions)
    vwrite_insts_millions: float

    def __post_init__(self) -> None:
        for name in ("valu_utilization", "valu_busy", "mem_unit_busy",
                     "mem_unit_stalled", "write_unit_stalled"):
            value = getattr(self, name)
            if not 0.0 <= value <= 100.0 + 1e-9:
                raise ValueError(f"counter {name}={value} outside [0, 100]")
        if not 0.0 <= self.ic_activity <= 1.0 + 1e-9:
            raise ValueError(f"ic_activity={self.ic_activity} outside [0, 1]")
        for name in ("norm_vgpr", "norm_sgpr"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0 + 1e-9:
                raise ValueError(f"counter {name}={value} outside [0, 1]")

    def compute_to_memory_intensity(self) -> float:
        """C-to-M Intensity per Equation 3, normalized to 100.

        Ratio of time the vector ALU is busy processing *active* threads to
        the time the memory unit is busy. Saturated at 100 as the paper's
        normalization implies.
        """
        if self.mem_unit_busy <= 0:
            return 100.0
        raw = (self.valu_busy * self.valu_utilization / 100.0) / self.mem_unit_busy
        return min(100.0, raw * 100.0)

    def as_feature_dict(self) -> dict:
        """Flat mapping used by the sensitivity-training pipeline.

        Percentage counters stay on their 0-100 scale; icActivity and the
        register counters are fractions of their maxima — exactly the
        "normalize all counter values to a percentage of its maximum"
        treatment of Section 4.2 (expressed as fractions of 1 or 100).
        """
        return {
            "VALUUtilization": self.valu_utilization,
            "VALUBusy": self.valu_busy,
            "MemUnitBusy": self.mem_unit_busy,
            "MemUnitStalled": self.mem_unit_stalled,
            "WriteUnitStalled": self.write_unit_stalled,
            "icActivity": self.ic_activity,
            "NormVGPR": self.norm_vgpr,
            "NormSGPR": self.norm_sgpr,
            "CtoMIntensity": self.compute_to_memory_intensity(),
        }

    @staticmethod
    def feature_names() -> tuple:
        """Names of all features produced by :meth:`as_feature_dict`."""
        return (
            "VALUUtilization",
            "VALUBusy",
            "MemUnitBusy",
            "MemUnitStalled",
            "WriteUnitStalled",
            "icActivity",
            "NormVGPR",
            "NormSGPR",
            "CtoMIntensity",
        )
