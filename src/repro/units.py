"""Physical unit constants and conversion helpers.

The library stores quantities in SI base units internally:

* frequency  -> hertz (Hz)
* time       -> seconds (s)
* power      -> watts (W)
* energy     -> joules (J)
* bandwidth  -> bytes per second (B/s)
* capacity   -> bytes (B)

The constants below make call sites read like the paper's prose
(``925 * MHZ``, ``264 * GB_PER_S``) instead of sprinkling ``1e6``/``2**30``
literals around, and the helpers centralise the handful of conversions the
analysis and reporting code needs.
"""

from __future__ import annotations

# --- frequency ---------------------------------------------------------
KHZ = 1.0e3
MHZ = 1.0e6
GHZ = 1.0e9

# --- capacity / traffic ------------------------------------------------
KB = 1024.0
MB = 1024.0 * KB
GB = 1024.0 * MB

# Bandwidth vendor-style (decimal) units: a "264 GB/s" GDDR5 interface is
# 264e9 bytes per second, not 264 * 2**30.
GB_PER_S = 1.0e9

# --- time ---------------------------------------------------------------
NS = 1.0e-9
US = 1.0e-6
MS = 1.0e-3

# --- convenience conversions -------------------------------------------


def hz_to_mhz(freq_hz: float) -> float:
    """Convert a frequency in hertz to megahertz."""
    return freq_hz / MHZ


def mhz_to_hz(freq_mhz: float) -> float:
    """Convert a frequency in megahertz to hertz."""
    return freq_mhz * MHZ


def bytes_per_s_to_gb_per_s(bandwidth: float) -> float:
    """Convert a bandwidth in bytes/second to decimal gigabytes/second."""
    return bandwidth / GB_PER_S


def gb_per_s_to_bytes_per_s(bandwidth_gb: float) -> float:
    """Convert a bandwidth in decimal gigabytes/second to bytes/second."""
    return bandwidth_gb * GB_PER_S


def seconds_to_ms(duration_s: float) -> float:
    """Convert a duration in seconds to milliseconds."""
    return duration_s / MS


def joules_to_millijoules(energy_j: float) -> float:
    """Convert an energy in joules to millijoules."""
    return energy_j * 1.0e3
