"""Run traces and residency accounting (Figures 15-16).

A :class:`RunTrace` records every kernel launch of an application run —
which configuration the policy chose, how long the launch took, what power
it drew. Residency tables answer the Figure 15/16 questions: what fraction
of run time did each tunable spend at each value?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.gpu.config import HardwareConfig
from repro.perf.result import KernelRunResult


@dataclass(frozen=True)
class LaunchRecord:
    """One kernel launch inside a run."""

    iteration: int
    kernel_name: str
    result: KernelRunResult

    @property
    def config(self) -> HardwareConfig:
        """The configuration the policy chose for this launch."""
        return self.result.config

    @property
    def time(self) -> float:
        """Launch execution time (s)."""
        return self.result.time

    @property
    def power(self):
        """Launch power sample."""
        return self.result.power


@dataclass(frozen=True)
class ResidencyTable:
    """Time-weighted residency of one tunable across a run.

    Attributes:
        fractions: mapping from tunable value to fraction of run time
            spent there; fractions sum to 1.
    """

    tunable: str
    fractions: Mapping[float, float]

    def fraction_at(self, value: float) -> float:
        """Fraction of run time at ``value`` (0 if never visited)."""
        return self.fractions.get(value, 0.0)

    def dominant_value(self) -> float:
        """The tunable value with the highest residency."""
        if not self.fractions:
            raise AnalysisError("empty residency table")
        return max(self.fractions, key=lambda k: self.fractions[k])


class RunTrace:
    """Accumulates launch records and derives residency/energy views."""

    def __init__(self) -> None:
        self._records: List[LaunchRecord] = []

    def append(self, record: LaunchRecord) -> None:
        """Add one launch record (in execution order)."""
        self._records.append(record)

    @property
    def records(self) -> Tuple[LaunchRecord, ...]:
        """All launch records in execution order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def total_time(self) -> float:
        """Total run time (s)."""
        return sum(r.time for r in self._records)

    def records_for_kernel(self, kernel_name: str) -> Tuple[LaunchRecord, ...]:
        """Launch records of one kernel, in execution order."""
        return tuple(r for r in self._records if r.kernel_name == kernel_name)

    def to_dicts(self) -> List[dict]:
        """Plain-dict launch rows (the JSONL exporter's per-launch schema).

        Each row carries the launch's iteration, kernel, configuration,
        execution time, card power and energy — the serializable subset
        of a :class:`~repro.perf.result.KernelRunResult`.
        """
        rows = []
        for record in self._records:
            config = record.config
            power = record.power.card
            rows.append({
                "iteration": record.iteration,
                "kernel": record.kernel_name,
                "config": {
                    "n_cu": config.n_cu,
                    "f_cu": config.f_cu,
                    "f_mem": config.f_mem,
                },
                "time_s": record.time,
                "power_w": power,
                "energy_j": power * record.time,
            })
        return rows

    def _residency(self, tunable: str, key) -> ResidencyTable:
        total = self.total_time()
        if total <= 0:
            raise AnalysisError(
                f"cannot compute {tunable!r} residency: the trace has no "
                f"time accumulated ({len(self._records)} launch records)"
            )
        sums: Dict[float, float] = {}
        for record in self._records:
            value = key(record.config)
            sums[value] = sums.get(value, 0.0) + record.time
        fractions = {value: t / total for value, t in sums.items()}
        return ResidencyTable(tunable=tunable, fractions=fractions)

    def cu_residency(self) -> ResidencyTable:
        """Residency over active-CU counts (the Figure 16 #CUs column)."""
        return self._residency("n_cu", lambda c: c.n_cu)

    def f_cu_residency(self) -> ResidencyTable:
        """Residency over compute frequencies (Figure 16 CUFreq column)."""
        return self._residency("f_cu", lambda c: c.f_cu)

    def f_mem_residency(self) -> ResidencyTable:
        """Residency over memory bus frequencies (Figures 15 and 16)."""
        return self._residency("f_mem", lambda c: c.f_mem)

    def power_segments(self) -> Tuple[Tuple[float, float], ...]:
        """(duration, card power) pieces for DAQ-style sampling."""
        return tuple((r.time, r.power.card) for r in self._records)
