"""Batched controller sessions: many application runs in lockstep.

A **lane** is one independent controller session — an (application,
policy, platform) triple, e.g. one app × noise-seed × policy-variant cell
of an evaluation matrix. The :class:`BatchSessionRunner` advances all
lanes of one application in lockstep: every tick launches the same
``(iteration, kernel, spec)`` in every lane, gathers all lanes' pending
configurations against the kernel's one memoized grid surface, scatters
the per-lane results back, and steps each policy.

The speed comes from three structural facts:

* the launch schedule is policy-independent, so lanes never diverge in
  *which* kernel is in flight — only in the configuration they launch it
  at — and one surface lookup serves the whole tick;
* on noisy platforms the launch-keyed Philox noise makes a launch's
  multiplier a pure function of ``(seed, spec, iteration, config)``, so a
  lane's noisy result is the clean surface element times one keyed draw —
  no per-launch scalar model evaluation, and order-invariant across
  lanes;
* the Harmonia numeric stage (feature EWMA, sensitivity prediction,
  binning, feedback) vectorizes across lanes
  (:mod:`repro.core.batched`), while the branchy transition stage runs on
  the real per-lane policy objects — so the engine is bitwise-identical
  to the scalar loop, which stays in the tree as the differential-testing
  oracle.

**Scalar fallback triggers.** A lane silently takes the scalar
:class:`~repro.runtime.simulator.ApplicationRunner` path when batched
stepping could not be proven equivalent: a platform that is not exactly
:class:`~repro.platform.hd7970.HardwarePlatform` (a subclass may override
launches, e.g. a thermal governor), a telemetry-enabled runner (the
instrumented loop's event stream is per-run, not lockstep),
``reset_policy=False`` (lanes would have to resume scalar-held numeric
state), or duplicate policy *instances* across lanes of one application
(their shared mutable history needs sequential stepping). Policies other
than the Harmonia family still batch at the platform layer but step their
own ``observe`` per lane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batched import (
    LaneGroupObserver,
    SchedulePlan,
    SurfaceNumerics,
    fast_path_eligible,
    group_signature,
    plan_schedule,
    surface_numerics,
)
from repro.core.policy import LaunchContext, PowerPolicy
from repro.platform.hd7970 import HardwarePlatform
from repro.runtime.simulator import ApplicationRunner, RunResult, finish_run
from repro.runtime.trace import LaunchRecord, RunTrace
from repro.telemetry.handle import coalesce
from repro.workloads.application import Application


@dataclass(frozen=True)
class SessionSpec:
    """One lane: an application run under a policy on a platform.

    Attributes:
        application: the workload to execute.
        policy: the power-management policy driving the lane.
        platform: the test bed; ``None`` uses the runner's default (lanes
            may differ, e.g. one noisy platform per Monte Carlo seed).
    """

    application: Application
    policy: PowerPolicy
    platform: Optional[HardwarePlatform] = None


class _Lane:
    """Mutable per-lane stepping state."""

    __slots__ = ("policy", "platform", "trace", "index", "result",
                 "fast", "histories")

    def __init__(self, policy: PowerPolicy, platform: HardwarePlatform):
        self.policy = policy
        self.platform = platform
        self.trace = RunTrace()
        self.index = 0
        self.result = None
        # Fast-path lanes (set by _partition) carry the un-overridden
        # HarmoniaPolicy.config_for, so the gather loop may serve their
        # pending config straight from the kernel history it caches here.
        self.fast = False
        self.histories: Dict[str, object] = {}


class _FastGroup:
    """Lanes sharing one vectorized numeric observer."""

    __slots__ = ("lanes", "observer", "plan", "numerics", "bindings")

    def __init__(self, lanes: List[_Lane], observer: LaneGroupObserver,
                 plan: SchedulePlan,
                 numerics: Dict[object, SurfaceNumerics]):
        self.lanes = lanes
        self.observer = observer
        self.plan = plan
        self.numerics = numerics
        # kernel name -> [(policy, history, control), ...] per lane; the
        # per-kernel history/control objects are stable for a run, so the
        # lockstep loop resolves them once per kernel instead of paying
        # two keyed lookups per lane-step.
        self.bindings: Dict[str, list] = {}


class BatchSessionRunner:
    """Advances many controller sessions in lockstep.

    Args:
        platform: default test bed for lanes that don't carry their own.
        telemetry: telemetry handle; when enabled, every lane falls back
            to the scalar instrumented runner (see the module docstring).
    """

    def __init__(self, platform: HardwarePlatform, telemetry=None):
        self._platform = platform
        self._telemetry = coalesce(telemetry)
        # id(surface) -> (surface, numerics); the surface reference pins
        # the id so the cache can never alias a collected object.
        self._numerics: Dict[int, Tuple[object, SurfaceNumerics]] = {}

    @property
    def platform(self) -> HardwarePlatform:
        """The default test bed."""
        return self._platform

    def run(self, application: Application, policy: PowerPolicy,
            reset_policy: bool = True) -> RunResult:
        """Run a single session (one-lane convenience wrapper)."""
        return self.run_sessions(
            [SessionSpec(application=application, policy=policy)],
            reset_policy=reset_policy,
        )[0]

    def run_sessions(self, sessions: Sequence[SessionSpec],
                     reset_policy: bool = True) -> List[RunResult]:
        """Run every session, batching lanes of the same application.

        Results are returned in session order and are bitwise-identical
        to ``ApplicationRunner.run`` of each lane in isolation — the
        differential contract the equivalence suite enforces.
        """
        sessions = list(sessions)
        results: List[Optional[RunResult]] = [None] * len(sessions)
        # Lanes of one application advance in lockstep; distinct
        # applications run sequentially, preserving the scalar harness's
        # per-application ordering of platform/cache side effects.
        order: List[Application] = []
        grouped: Dict[int, List[int]] = {}
        for position, spec in enumerate(sessions):
            key = id(spec.application)
            if key not in grouped:
                grouped[key] = []
                order.append(spec.application)
            grouped[key].append(position)
        for application in order:
            positions = grouped[id(application)]
            outcomes = self._run_application(
                application, [sessions[p] for p in positions], reset_policy
            )
            for position, outcome in zip(positions, outcomes):
                results[position] = outcome
        return results

    # --- one application's lane group ------------------------------------------

    def _run_application(self, application: Application,
                         specs: Sequence[SessionSpec],
                         reset_policy: bool) -> List[RunResult]:
        platforms = [spec.platform or self._platform for spec in specs]
        policies = [spec.policy for spec in specs]

        batchable = self._batchable_mask(platforms, policies, reset_policy)
        results: List[Optional[RunResult]] = [None] * len(specs)
        for slot, ok in enumerate(batchable):
            if not ok:
                runner = ApplicationRunner(platforms[slot], self._telemetry)
                results[slot] = runner.run(
                    application, policies[slot], reset_policy=reset_policy
                )
        lanes_slots = [slot for slot, ok in enumerate(batchable) if ok]
        if not lanes_slots:
            return results

        lanes = []
        for slot in lanes_slots:
            if reset_policy:
                policies[slot].reset()
            lanes.append(_Lane(policies[slot], platforms[slot]))

        steps = list(application.launches())
        fast_groups, generic_lanes = self._partition(lanes, steps)
        self._step_lockstep(steps, lanes, fast_groups, generic_lanes)

        for group in fast_groups:
            for lane_slot, lane in enumerate(group.lanes):
                exported = group.observer.export_lane(lane_slot)
                for kernel_name, features in exported.items():
                    lane.policy.restore_numeric_state(
                        kernel_name, features,
                        group.plan.last_identity[kernel_name],
                    )
        for slot, lane in zip(lanes_slots, lanes):
            results[slot] = finish_run(application, lane.policy, lane.trace)
        return results

    def _batchable_mask(self, platforms, policies,
                        reset_policy: bool) -> List[bool]:
        if self._telemetry.enabled or not reset_policy:
            return [False] * len(platforms)
        instance_counts: Dict[int, int] = {}
        for policy in policies:
            key = id(policy)
            instance_counts[key] = instance_counts.get(key, 0) + 1
        return [
            # A policy instance shared between lanes carries shared
            # mutable history; only sequential scalar runs (which the
            # fallback loop performs in lane order) preserve its
            # semantics, so every occurrence goes scalar.
            type(platform) is HardwarePlatform
            and instance_counts[id(policy)] == 1
            for platform, policy in zip(platforms, policies)
        ]

    def _surface_numerics(self, surface) -> SurfaceNumerics:
        cached = self._numerics.get(id(surface))
        if cached is None or cached[0] is not surface:
            cached = (surface, surface_numerics(surface))
            self._numerics[id(surface)] = cached
        return cached[1]

    def _partition(self, lanes: List[_Lane], steps):
        """Split lanes into vectorized fast groups and generic lanes.

        Fast lanes are grouped by (numeric signature, surface identity):
        platforms with equal calibration share the very same cached
        surface objects, so the surface of the first scheduled spec is a
        sound group key for every spec of the schedule.
        """
        first_spec = steps[0][2]
        buckets: Dict[tuple, List[_Lane]] = {}
        generic: List[_Lane] = []
        for lane in lanes:
            if not fast_path_eligible(lane.policy):
                generic.append(lane)
                continue
            key = (
                group_signature(lane.policy),
                id(lane.platform.launch_surface(first_spec)),
            )
            lane.fast = True
            buckets.setdefault(key, []).append(lane)

        groups: List[_FastGroup] = []
        for (signature, _surface_id), members in buckets.items():
            threshold = signature[2]
            numerics: Dict[object, SurfaceNumerics] = {}
            plan_rows = []
            provider = members[0].platform
            for iteration, kernel, spec in steps:
                if spec not in numerics:
                    numerics[spec] = self._surface_numerics(
                        provider.launch_surface(spec)
                    )
                plan_rows.append((iteration, kernel.name, numerics[spec]))
            groups.append(_FastGroup(
                lanes=members,
                observer=LaneGroupObserver([m.policy for m in members]),
                plan=plan_schedule(plan_rows, threshold),
                numerics=numerics,
            ))
        return groups, generic

    def _step_lockstep(self, steps, lanes: List[_Lane],
                       fast_groups: List[_FastGroup],
                       generic_lanes: List[_Lane]) -> None:
        # Platform clusters: one surface lookup (and, when noisy, one
        # keyed draw stream) serves every lane on the same platform.
        clusters: Dict[int, Tuple[HardwarePlatform, List[_Lane]]] = {}
        for lane in lanes:
            entry = clusters.setdefault(id(lane.platform),
                                        (lane.platform, []))
            entry[1].append(lane)
        cluster_list = list(clusters.values())

        for step_index, (iteration, kernel, spec) in enumerate(steps):
            kernel_name = kernel.name
            context = LaunchContext(
                kernel_name=kernel_name, iteration=iteration, spec=spec
            )
            # Gather: decide every lane's config, serve it from the one
            # memoized surface (plus the lane's keyed noise draw). The
            # draw vectors are fetched once per platform per step, so
            # each lane launch is an array index, not a memo lookup.
            for platform, members in cluster_list:
                surface = platform.launch_surface(spec)
                draws = (platform.noise_draws(spec, iteration)
                         if platform.noise_std_fraction > 0 else None)
                grid_index = platform.grid_index
                result_at = surface.result_at
                noisy_from = platform.noisy_result_from
                for lane in members:
                    if lane.fast:
                        # Inlined HarmoniaPolicy.config_for: fast lanes
                        # are guaranteed the un-overridden implementation
                        # (fast_path_eligible), which returns the kernel
                        # history's pending config; the scalar call is
                        # kept for the first launch (it initializes the
                        # history to the baseline boost point).
                        history = lane.histories.get(kernel_name)
                        if history is None:
                            history = lane.histories[kernel_name] = \
                                lane.policy.history_for(kernel_name)
                        config = history.current_config
                        if config is None:
                            config = lane.policy.config_for(context)
                    else:
                        config = lane.policy.config_for(context)
                    index = grid_index(config)
                    result = result_at(index)
                    if draws is not None:
                        result = noisy_from(
                            result, spec, iteration, index, draws
                        )
                    lane.index = index
                    lane.result = result
                    lane.trace.append(LaunchRecord(
                        iteration, kernel_name, result,
                    ))
            # Observe: vectorized numeric stage + per-lane transitions.
            for group in fast_groups:
                numerics = group.numerics[spec]
                indices = np.array(
                    [lane.index for lane in group.lanes], dtype=np.intp
                )
                phase_changed = group.plan.flags[step_index]
                snapshots, feedback = group.observer.tick(
                    kernel_name, numerics, indices, phase_changed
                )
                identity = group.plan.identities[step_index]
                bindings = group.bindings.get(kernel_name)
                if bindings is None:
                    bindings = group.bindings[kernel_name] = [
                        (lane.policy,
                         lane.policy.history_for(kernel_name),
                         lane.policy.control_state(kernel_name))
                        for lane in group.lanes
                    ]
                for lane, (policy, history, control), snapshot, \
                        lane_feedback in zip(
                        group.lanes, bindings, snapshots, feedback):
                    history.record(lane.result)
                    policy._apply_observation(
                        context, lane.result, history, control,
                        phase_changed=phase_changed,
                        snapshot=snapshot,
                        identity=identity,
                        feedback=lane_feedback,
                    )
            for lane in generic_lanes:
                lane.policy.observe(context, lane.result)
