"""Evaluation metrics (Section 3.4).

The paper's primary metric is energy-delay-squared, ED², "commonly used in
HPC application analysis"; D is the actual kernel-execution time, and all
results are reported as improvements relative to the baseline power
manager. Averages across applications are **geometric means** (Section 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import AnalysisError


def ed(energy: float, delay: float) -> float:
    """Energy-delay product (J*s)."""
    if energy < 0 or delay < 0:
        raise AnalysisError("energy and delay must be non-negative")
    return energy * delay


def ed2(energy: float, delay: float) -> float:
    """Energy-delay-squared product (J*s^2) — the paper's main metric."""
    if energy < 0 or delay < 0:
        raise AnalysisError("energy and delay must be non-negative")
    return energy * delay * delay


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Raises:
        AnalysisError: if empty or any value is non-positive.
    """
    items = list(values)
    if not items:
        raise AnalysisError("geomean of an empty sequence")
    if any(v <= 0 for v in items):
        raise AnalysisError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def improvement(baseline: float, candidate: float) -> float:
    """Relative improvement of ``candidate`` over ``baseline``.

    Positive means the candidate is better (smaller metric): a baseline
    ED² of 100 and candidate ED² of 88 is a 0.12 (12%) improvement.
    """
    if baseline <= 0:
        raise AnalysisError("baseline metric must be positive")
    return (baseline - candidate) / baseline


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate metrics of one application run."""

    #: total execution time (s) — D in the paper's metrics
    time: float
    #: total card energy (J)
    energy: float
    #: time-weighted average card power (W)
    avg_power: float
    #: time-weighted average GPU chip power (W)
    avg_gpu_power: float
    #: time-weighted average memory power (W)
    avg_memory_power: float

    @property
    def ed(self) -> float:
        """Energy-delay product (J*s)."""
        return ed(self.energy, self.time)

    @property
    def ed2(self) -> float:
        """Energy-delay-squared product (J*s^2)."""
        return ed2(self.energy, self.time)

    @property
    def performance(self) -> float:
        """Performance as 1 / total execution time."""
        if self.time <= 0:
            raise AnalysisError("run has zero duration")
        return 1.0 / self.time


def metrics_from_launches(launches: Sequence) -> RunMetrics:
    """Aggregate :class:`~repro.perf.result.KernelRunResult`-like records.

    Each record must expose ``time`` (s) and ``power`` with ``gpu`` /
    ``memory`` / ``card`` attributes.

    Raises:
        AnalysisError: if the sequence is empty or total time is zero.
    """
    if not launches:
        raise AnalysisError("no launches to aggregate")
    total_time = sum(r.time for r in launches)
    if total_time <= 0:
        raise AnalysisError("total run time must be positive")
    energy = sum(r.power.card * r.time for r in launches)
    gpu_energy = sum(r.power.gpu * r.time for r in launches)
    mem_energy = sum(r.power.memory * r.time for r in launches)
    return RunMetrics(
        time=total_time,
        energy=energy,
        avg_power=energy / total_time,
        avg_gpu_power=gpu_energy / total_time,
        avg_memory_power=mem_energy / total_time,
    )
