"""Experiment DAG scheduler with content-addressed result manifests.

``reproduce`` is a DAG, not a list: the ~26 paper tables/figures are
independent leaves except where they share expensive stages (Figures
10-13 are four views of one evaluation matrix; the evaluation and every
ablation hang off one predictor-training run). The scheduler here

* **topologically sorts** the registered
  :class:`~repro.experiments.registry.ExperimentSpec` nodes and runs
  every ready node concurrently on a shared
  :class:`~repro.runtime.parallel.WorkerBudget` — experiment-level
  fan-out composes with each node's internal ``--jobs`` fan-out through
  the one global budget, so total live workers never exceed ``jobs``;
* serves unchanged nodes from a **result manifest** layered on the
  persistent content-addressed sweep store: a node's report text is
  keyed by the SHA-256 of (result schema version, environment
  fingerprint — calibration, kernel specs, grid axes, application
  roster — the spec's declared inputs and version, and the digests of
  its dependencies), so a warm rerun with unchanged inputs skips every
  node and any input change invalidates exactly the affected subgraph,
  by value, with no invalidation protocol;
* records **per-node wall/CPU timings** and telemetry spans and derives
  the pipeline's **critical path** for the final summary.

Report bytes are identical in every mode — serial, ``--jobs N``,
manifest-served — because nodes are pure functions of the context and
the manifest stores the exact formatted text.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple)

import numpy as np

from repro.analysis.report import format_table
from repro.errors import AnalysisError
from repro.platform.store import RESULT_KIND, SweepStore, content_digest
from repro.runtime.parallel import WorkerBudget, budget_scope
from repro.telemetry.spans import capture_span_context, use_span_context

#: Bump whenever node payloads/formatting change globally; every manifest
#: entry then reads as a miss and is transparently recomputed. Per-node
#: changes should bump the spec's ``version`` instead.
RESULT_SCHEMA_VERSION = 1

#: Node outcome states reported by :class:`NodeTiming`.
STATUS_RAN = "ran"
STATUS_MANIFEST = "manifest"
STATUS_PRUNED = "pruned"


def topological_order(specs: Sequence[Any]) -> List[str]:
    """Dependency-respecting node order (stable: registration order
    among simultaneously ready nodes).

    Raises:
        AnalysisError: on duplicate names, unknown dependencies, or a
            dependency cycle (the cycle members are named).
    """
    by_name: Dict[str, Any] = {}
    for spec in specs:
        if spec.name in by_name:
            raise AnalysisError(f"duplicate pipeline node {spec.name!r}")
        by_name[spec.name] = spec
    for spec in specs:
        for dep in spec.deps:
            if dep not in by_name:
                raise AnalysisError(
                    f"node {spec.name!r} depends on unknown node {dep!r}"
                )

    indegree = {spec.name: len(set(spec.deps)) for spec in specs}
    dependents: Dict[str, List[str]] = {spec.name: [] for spec in specs}
    for spec in specs:
        for dep in set(spec.deps):
            dependents[dep].append(spec.name)

    ready = [spec.name for spec in specs if indegree[spec.name] == 0]
    order: List[str] = []
    while ready:
        name = ready.pop(0)
        order.append(name)
        for dependent in dependents[name]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                # Keep registration order among ready nodes.
                ready.append(dependent)
        ready.sort(key=lambda n: list(by_name).index(n))
    if len(order) != len(specs):
        cycle = sorted(name for name, degree in indegree.items() if degree > 0)
        raise AnalysisError(
            f"dependency cycle among pipeline nodes: {', '.join(cycle)}"
        )
    return order


def node_keys(specs: Sequence[Any], fingerprint: str) -> Dict[str, Tuple]:
    """Content-addressable manifest key per node, dependency-chained.

    A node's key folds in the digests of its dependencies' keys, so
    invalidating any upstream node (new inputs, bumped version, changed
    fingerprint) transitively invalidates everything built on it.
    """
    by_name = {spec.name: spec for spec in specs}
    keys: Dict[str, Tuple] = {}
    for name in topological_order(specs):
        spec = by_name[name]
        dep_digests = tuple(
            content_digest(keys[dep]) for dep in spec.deps
        )
        keys[name] = (
            RESULT_SCHEMA_VERSION, fingerprint, spec.name, spec.version,
            tuple(spec.inputs), dep_digests,
        )
    return keys


class ResultManifest:
    """Formatted-report records in the content-addressed sweep store.

    Each entry is one tiny ``result-<sha256>.npz`` record holding a
    node's exact report text, addressed by the chained node key from
    :func:`node_keys`. The manifest inherits every store property:
    atomic publication, self-validation (corrupt records demote to
    misses), cross-process sharing, and invalidation by value.
    """

    def __init__(self, store: SweepStore, telemetry=None):
        from repro.telemetry.handle import coalesce
        self._store = store
        self._telemetry = coalesce(telemetry)

    @property
    def store(self) -> SweepStore:
        """The backing content-addressed store."""
        return self._store

    def load(self, key: Tuple) -> Optional[str]:
        """The stored report text for ``key``, or None on any miss."""
        loaded = self._store.load_record(RESULT_KIND, key)
        hit = False
        text = None
        if loaded is not None:
            arrays, _meta = loaded
            try:
                text = str(arrays["report"][()])
                hit = True
            except Exception:
                text = None
        self._telemetry.metrics.counter(
            "pipeline_manifest_total", "result manifest lookups",
        ).inc(status="hit" if hit else "miss")
        return text

    def save(self, key: Tuple, name: str, text: str) -> bool:
        """Persist one node's report text; False when the write failed."""
        return self._store.save_record(
            RESULT_KIND, key, {"report": np.array(text)}, meta={"node": name},
        )


@dataclass(frozen=True)
class NodeTiming:
    """One node's outcome in a pipeline run."""

    name: str
    status: str  # STATUS_RAN | STATUS_MANIFEST | STATUS_PRUNED
    wall_s: float
    cpu_s: float  # main-thread CPU; inner fan-out threads not included
    digest: str


@dataclass(frozen=True)
class PipelineResult:
    """Everything one pipeline run produced."""

    reports: Mapping[str, str]  # report node name -> exact report text
    timings: Tuple[NodeTiming, ...]  # registration order
    critical_path: Tuple[str, ...]
    critical_path_s: float
    wall_s: float

    def served(self) -> Tuple[str, ...]:
        """Report nodes served from the manifest (skipped entirely)."""
        return tuple(t.name for t in self.timings
                     if t.status == STATUS_MANIFEST)

    def ran(self) -> Tuple[str, ...]:
        """Nodes actually executed this run."""
        return tuple(t.name for t in self.timings if t.status == STATUS_RAN)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready profile (the CI artifact payload)."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "wall_s": self.wall_s,
            "critical_path": list(self.critical_path),
            "critical_path_s": self.critical_path_s,
            "nodes": [
                {
                    "node": t.name,
                    "status": t.status,
                    "wall_s": t.wall_s,
                    "cpu_s": t.cpu_s,
                    "critical": t.name in self.critical_path,
                    "digest": t.digest,
                }
                for t in self.timings
            ],
        }


class ExperimentPipeline:
    """Schedules one set of experiment nodes over a worker budget.

    Args:
        specs: the nodes to schedule (e.g. from
            :func:`repro.experiments.registry.reproduce_specs`); validated
            eagerly — duplicate names, unknown deps and cycles raise here.
        context: the shared :class:`ExperimentContext` handed to every
            runner.
        jobs: total worker budget across both parallelism levels
            (0 = one per core).
        manifest: optional :class:`ResultManifest`; when given, report
            nodes whose keys are already stored are served without
            running, and fresh results are written back.
        fingerprint: environment fingerprint folded into every node key
            (see :func:`repro.experiments.registry.reproduce_fingerprint`).
        telemetry: optional telemetry handle; nodes run under
            ``pipeline.<node>`` profile spans and the manifest feeds the
            ``pipeline_manifest_total`` counter.
    """

    def __init__(self, specs: Sequence[Any], context, *, jobs: int = 1,
                 manifest: Optional[ResultManifest] = None,
                 fingerprint: str = "", telemetry=None):
        from repro.telemetry.handle import coalesce
        self._specs = list(specs)
        self._order = topological_order(self._specs)
        self._by_name = {spec.name: spec for spec in self._specs}
        self._context = context
        self._budget = WorkerBudget(jobs)
        self._manifest = manifest
        self._keys = node_keys(self._specs, fingerprint)
        self._telemetry = coalesce(telemetry)
        self._results: Dict[str, Any] = {}

    @property
    def jobs(self) -> int:
        """The resolved total worker budget."""
        return self._budget.jobs

    def digest(self, name: str) -> str:
        """The manifest digest addressing one node's result."""
        return content_digest(self._keys[name])

    # --- execution -------------------------------------------------------------

    def run(self, emit: Optional[Callable[[str, str, str], None]] = None
            ) -> PipelineResult:
        """Execute the DAG; returns reports, timings and the critical path.

        Args:
            emit: optional ``emit(name, text, status)`` callback invoked
                from the scheduling thread once per report node — in
                registration order for manifest-served nodes, then in
                completion order for executed ones.

        Raises:
            The first failing node's exception, with a note naming the
            node; remaining running nodes are drained first and no new
            nodes start after a failure.
        """
        started = time.perf_counter()
        reports: Dict[str, str] = {}
        wall: Dict[str, float] = {name: 0.0 for name in self._order}
        cpu: Dict[str, float] = dict(wall)
        status: Dict[str, str] = {}

        served = self._probe_manifest(status, wall, cpu, reports)
        for name in (s.name for s in self._specs if s.name in served):
            if emit is not None:
                emit(name, reports[name], STATUS_MANIFEST)

        needed = self._needed_nodes(served)
        for name in self._order:
            if name not in needed and name not in served:
                status[name] = STATUS_PRUNED

        self._execute(needed, served, status, wall, cpu, reports, emit)

        timings = tuple(
            NodeTiming(name=spec.name, status=status[spec.name],
                       wall_s=wall[spec.name], cpu_s=cpu[spec.name],
                       digest=self.digest(spec.name))
            for spec in self._specs
        )
        path, path_s = _critical_path(self._specs, wall)
        return PipelineResult(
            reports=reports,
            timings=timings,
            critical_path=path,
            critical_path_s=path_s,
            wall_s=time.perf_counter() - started,
        )

    def _probe_manifest(self, status, wall, cpu, reports) -> set:
        """Serve every already-stored report node; returns their names."""
        served = set()
        if self._manifest is None:
            return served
        for spec in self._specs:
            if not spec.is_report:
                continue
            t0 = time.perf_counter()
            c0 = time.thread_time()
            text = self._manifest.load(self._keys[spec.name])
            if text is None:
                continue
            served.add(spec.name)
            status[spec.name] = STATUS_MANIFEST
            wall[spec.name] = time.perf_counter() - t0
            cpu[spec.name] = time.thread_time() - c0
            reports[spec.name] = text
        return served

    def _needed_nodes(self, served: set) -> set:
        """Unserved report nodes plus their transitive dependencies."""
        needed = set()
        stack = [spec.name for spec in self._specs
                 if spec.is_report and spec.name not in served]
        while stack:
            name = stack.pop()
            if name in needed:
                continue
            needed.add(name)
            stack.extend(self._by_name[name].deps)
        return needed

    def _run_node(self, spec, span_context=None
                  ) -> Tuple[Any, Optional[str], float, float]:
        self._budget.acquire()
        try:
            t0 = time.perf_counter()
            c0 = time.thread_time()
            # Pool threads don't inherit contextvars: re-install the
            # scheduler's span context so node spans nest under the
            # run's root span, then open the node span — store loads
            # and batch sweeps below attach as its children.
            with use_span_context(span_context), \
                    self._telemetry.span(f"pipeline.{spec.name}",
                                         node=spec.name):
                deps = {dep: self._results[dep] for dep in spec.deps}
                payload = spec.runner(self._context, deps)
                text = (spec.formatter(payload)
                        if spec.formatter is not None else None)
            return (payload, text,
                    time.perf_counter() - t0, time.thread_time() - c0)
        finally:
            self._budget.release()

    def _execute(self, needed, served, status, wall, cpu, reports,
                 emit) -> None:
        """Run the needed subgraph on the worker budget."""
        if not needed:
            return
        indegree = {
            name: len(set(self._by_name[name].deps)) for name in needed
        }
        dependents: Dict[str, List[str]] = {name: [] for name in needed}
        for name in needed:
            for dep in set(self._by_name[name].deps):
                dependents[dep].append(name)

        ready = [name for name in self._order
                 if name in needed and indegree[name] == 0]
        futures: Dict[Future, str] = {}
        failure: Optional[Tuple[str, BaseException]] = None
        span_context = capture_span_context()

        with budget_scope(self._budget), \
                ThreadPoolExecutor(max_workers=self._budget.jobs) as pool:
            while ready or futures:
                while ready and failure is None:
                    name = ready.pop(0)
                    future = pool.submit(self._run_node, self._by_name[name],
                                         span_context)
                    futures[future] = name
                if not futures:
                    break
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    name = futures.pop(future)
                    error = future.exception()
                    if error is not None:
                        if failure is None:
                            failure = (name, error)
                        continue
                    payload, text, node_wall, node_cpu = future.result()
                    self._results[name] = payload
                    # A manifest-served report node can still execute when
                    # an invalidated dependent needs its in-memory payload
                    # (the manifest stores report text, not payloads); its
                    # status stays "manifest" — the report was served —
                    # but the re-run's true cost replaces the probe time.
                    if name not in served:
                        status[name] = STATUS_RAN
                    wall[name] = node_wall
                    cpu[name] = node_cpu
                    spec = self._by_name[name]
                    if spec.is_report and name not in served:
                        reports[name] = text
                        if self._manifest is not None:
                            self._manifest.save(self._keys[name], name, text)
                        if emit is not None:
                            emit(name, text, STATUS_RAN)
                    for dependent in dependents[name]:
                        indegree[dependent] -= 1
                        if indegree[dependent] == 0:
                            ready.append(dependent)

        if failure is not None:
            name, error = failure
            if hasattr(error, "add_note"):  # Python >= 3.11
                error.add_note(f"pipeline node {name!r} failed")
            raise error


def _critical_path(specs: Sequence[Any],
                   wall: Mapping[str, float]) -> Tuple[Tuple[str, ...], float]:
    """The heaviest dependency chain under the recorded wall times."""
    by_name = {spec.name: spec for spec in specs}
    cost: Dict[str, float] = {}
    heaviest_dep: Dict[str, Optional[str]] = {}
    for name in topological_order(specs):
        deps = by_name[name].deps
        best, best_cost = None, 0.0
        for dep in deps:
            if cost[dep] > best_cost:
                best, best_cost = dep, cost[dep]
        cost[name] = wall.get(name, 0.0) + best_cost
        heaviest_dep[name] = best
    if not cost:
        return (), 0.0
    tail = max(cost, key=lambda n: cost[n])
    path: List[str] = []
    cursor: Optional[str] = tail
    while cursor is not None:
        path.append(cursor)
        cursor = heaviest_dep[cursor]
    return tuple(reversed(path)), cost[tail]


def format_profile(result: PipelineResult) -> str:
    """The critical-path profile table for the ``reproduce`` summary."""
    on_path = set(result.critical_path)
    ordered = sorted(result.timings, key=lambda t: t.wall_s, reverse=True)
    rows = [
        (
            timing.name,
            timing.status,
            f"{timing.wall_s * 1e3:8.1f}",
            f"{timing.cpu_s * 1e3:8.1f}",
            "*" if timing.name in on_path else "",
        )
        for timing in ordered
    ]
    table = format_table(
        headers=("node", "status", "wall ms", "cpu ms", "critical"),
        rows=rows,
        title=(f"pipeline profile: {result.wall_s:.2f}s wall, "
               f"critical path {result.critical_path_s:.2f}s "
               f"over {len(result.critical_path)} node(s)"),
    )
    chain = " -> ".join(result.critical_path) if result.critical_path else "-"
    return f"{table}\ncritical path: {chain}"
