"""Runtime: executing applications under a power policy.

* :mod:`repro.runtime.metrics` — energy, ED, ED², geomean, normalization,
* :mod:`repro.runtime.trace` — per-launch traces and residency accounting,
* :mod:`repro.runtime.simulator` — the kernel-boundary execution loop that
  drives a policy exactly as Harmonia's system-software implementation is
  driven (Section 5.1).
"""

from repro.runtime.metrics import (
    RunMetrics,
    ed,
    ed2,
    geomean,
    improvement,
    metrics_from_launches,
)
from repro.runtime.trace import LaunchRecord, ResidencyTable, RunTrace
from repro.runtime.simulator import ApplicationRunner, RunResult
from repro.runtime.measurement import MeasuredRun, MeasuredRunner

__all__ = [
    "RunMetrics",
    "ed",
    "ed2",
    "geomean",
    "improvement",
    "metrics_from_launches",
    "LaunchRecord",
    "ResidencyTable",
    "RunTrace",
    "ApplicationRunner",
    "RunResult",
    "MeasuredRun",
    "MeasuredRunner",
]
