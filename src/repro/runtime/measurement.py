"""DAQ-based run measurement (the paper's Section 6 rig, end to end).

The paper's energies are not analytic: they are integrals of a 1 kHz
power-sample stream captured by an NI DAQ card while the application runs.
:class:`MeasuredRunner` reproduces that pipeline — it executes a run via
the normal :class:`~repro.runtime.simulator.ApplicationRunner` and then
derives the reported metrics *from the sampled trace*, complete with the
rig's artifacts: quantization of short kernels, sensor noise, and the
averaging across repeated runs the paper uses to suppress run-to-run
variance ("We run each application multiple times and recorded the
average").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.policy import PowerPolicy
from repro.errors import AnalysisError
from repro.power.daq import DaqCard, DaqTrace
from repro.runtime.metrics import RunMetrics
from repro.runtime.simulator import ApplicationRunner, RunResult
from repro.workloads.application import Application


@dataclass(frozen=True)
class MeasuredRun:
    """One run plus its DAQ-measured view."""

    run: RunResult
    trace: DaqTrace

    @property
    def measured_energy(self) -> float:
        """Energy (J) integrated from the DAQ samples."""
        return self.trace.energy()

    @property
    def measured_average_power(self) -> float:
        """Mean power (W) over the DAQ samples."""
        return self.trace.average_power()

    @property
    def analytic_energy(self) -> float:
        """The simulator's exact energy, for error analysis."""
        return self.run.metrics.energy

    @property
    def measurement_error(self) -> float:
        """Relative error of the DAQ energy vs the analytic energy."""
        if self.analytic_energy <= 0:
            raise AnalysisError("run has no analytic energy")
        return self.measured_energy / self.analytic_energy - 1.0

    def measured_metrics(self) -> RunMetrics:
        """Run metrics with DAQ-measured energy/power substituted.

        Time comes from the run (the paper times execution on the host;
        only power goes through the DAQ).
        """
        time = self.run.metrics.time
        energy = self.measured_energy
        return RunMetrics(
            time=time,
            energy=energy,
            avg_power=energy / time if time > 0 else 0.0,
            avg_gpu_power=self.run.metrics.avg_gpu_power,
            avg_memory_power=self.run.metrics.avg_memory_power,
        )


class MeasuredRunner:
    """Executes runs and measures them through the simulated DAQ.

    Args:
        runner: the underlying application runner.
        sampling_frequency: DAQ rate (the paper's rig: 1 kHz).
        noise_std: DAQ sensor noise (W).
        seed: RNG seed for the noise.
    """

    def __init__(self, runner: ApplicationRunner,
                 sampling_frequency: float = 1000.0,
                 noise_std: float = 0.0, seed: int = 0):
        self._runner = runner
        self._sampling_frequency = sampling_frequency
        self._noise_std = noise_std
        self._seed = seed

    def measure(self, application: Application,
                policy: PowerPolicy, seed: Optional[int] = None) -> MeasuredRun:
        """Run once and sample the power trace."""
        run = self._runner.run(application, policy)
        card = DaqCard(
            sampling_frequency=self._sampling_frequency,
            noise_std=self._noise_std,
            seed=self._seed if seed is None else seed,
        )
        trace = card.sample_segments(run.trace.power_segments())
        return MeasuredRun(run=run, trace=trace)

    def measure_averaged(self, application: Application,
                         policy: PowerPolicy,
                         repeats: int = 3) -> Tuple[RunMetrics, Sequence[MeasuredRun]]:
        """The paper's protocol: repeat the run and average the metrics.

        Returns:
            (averaged metrics, the individual measured runs).

        Raises:
            AnalysisError: for a non-positive repeat count.
        """
        if repeats < 1:
            raise AnalysisError("repeats must be >= 1")
        runs = [
            self.measure(application, policy, seed=self._seed + i)
            for i in range(repeats)
        ]
        n = float(repeats)
        time = sum(r.run.metrics.time for r in runs) / n
        energy = sum(r.measured_energy for r in runs) / n
        gpu = sum(r.run.metrics.avg_gpu_power for r in runs) / n
        mem = sum(r.run.metrics.avg_memory_power for r in runs) / n
        metrics = RunMetrics(
            time=time,
            energy=energy,
            avg_power=energy / time if time > 0 else 0.0,
            avg_gpu_power=gpu,
            avg_memory_power=mem,
        )
        return metrics, runs
