"""Thread-based fan-out for embarrassingly parallel experiment stages.

The expensive stages of the repro — training-set construction (one
independent measurement pipeline per kernel spec), the Figures 10-13
policy matrix (one independent run per application) and the experiment
pipeline itself (one node per paper table/figure) — are pure fan-outs
over independent work items. :func:`fan_out` runs them on a thread pool.

Threads (not processes) are the right tool here: the working set is the
shared :func:`~repro.platform.sweepcache.shared_cache` of NumPy sweep
surfaces, which processes would have to rebuild per worker, and the
vectorized batch path spends its time inside NumPy, which releases the
GIL. Workers must not mutate shared state; stateful policies are isolated
per item by constructing them inside the worker (see
:meth:`~repro.analysis.evaluation.EvaluationHarness.evaluate`).

Two levels of parallelism compose through a :class:`WorkerBudget`: the
experiment pipeline fans out over DAG nodes *and* a node's own stages
fan out over kernels/applications, yet total live workers stay bounded
by one global budget. The scheduler installs its budget with
:func:`budget_scope`; every :func:`fan_out` call inside the scope then
*borrows* spare permits non-blockingly instead of spawning its full
``jobs`` complement, so an inner fan-out can never oversubscribe the
machine, and the tail of the DAG (few runnable nodes) automatically
hands its idle permits to the nodes still running.
"""

from __future__ import annotations

import contextlib
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, List, Optional, Sequence, TypeVar

from repro.errors import AnalysisError
from repro.telemetry.spans import capture_span_context, use_span_context

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: ``0`` means "auto" (all cores).

    Args:
        jobs: requested worker count; ``0`` resolves to
            ``os.cpu_count()`` (or 1 when that is unknown).

    Raises:
        AnalysisError: when ``jobs`` is negative.
    """
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise AnalysisError(f"jobs must be >= 0 (0 = auto), got {jobs}")
    return jobs


class WorkerBudget:
    """A global concurrency budget shared across parallelism levels.

    Holds ``jobs`` permits. A pipeline node *acquires* one permit for its
    own thread (blocking — the scheduler bounds node-level concurrency
    this way) and an inner :func:`fan_out` *borrows* extra permits
    non-blockingly for its pool workers. Borrowing never blocks, so the
    composition cannot deadlock: when the budget is exhausted the inner
    stage simply runs serially on its own thread.
    """

    def __init__(self, jobs: int):
        self.jobs = resolve_jobs(jobs)
        if self.jobs < 1:
            raise AnalysisError(f"budget needs >= 1 permit, got {self.jobs}")
        self._cond = threading.Condition()
        self._available = self.jobs

    def available(self) -> int:
        """Permits currently free (racy; for tests and diagnostics)."""
        with self._cond:
            return self._available

    def acquire(self) -> None:
        """Take one permit, blocking until one is free."""
        with self._cond:
            while self._available < 1:
                self._cond.wait()
            self._available -= 1

    def borrow(self, wanted: int) -> int:
        """Take up to ``wanted`` extra permits without blocking.

        Returns:
            The number of permits actually granted (0 when none free).
        """
        if wanted <= 0:
            return 0
        with self._cond:
            granted = min(wanted, self._available)
            self._available -= granted
            return granted

    def release(self, permits: int = 1) -> None:
        """Return permits to the budget."""
        if permits <= 0:
            return
        with self._cond:
            self._available += permits
            if self._available > self.jobs:
                raise AnalysisError(
                    f"budget over-released: {self._available} > {self.jobs}"
                )
            self._cond.notify_all()


#: The ambient budget installed by :func:`budget_scope`, consulted by
#: every :func:`fan_out` call. None outside any pipeline run — fan-outs
#: then size their pools from their own ``jobs`` argument, exactly as
#: before budgets existed.
_ACTIVE_BUDGET: Optional[WorkerBudget] = None


def active_budget() -> Optional[WorkerBudget]:
    """The budget installed by the innermost :func:`budget_scope`."""
    return _ACTIVE_BUDGET


@contextlib.contextmanager
def budget_scope(budget: WorkerBudget) -> Iterator[WorkerBudget]:
    """Install ``budget`` as the ambient worker budget for this block."""
    global _ACTIVE_BUDGET
    previous = _ACTIVE_BUDGET
    _ACTIVE_BUDGET = budget
    try:
        yield budget
    finally:
        _ACTIVE_BUDGET = previous


def _item_label(item: object) -> str:
    """A short human label for a failing work item."""
    name = getattr(item, "name", None)
    if isinstance(name, str) and name:
        return name
    text = repr(item)
    return text if len(text) <= 60 else text[:57] + "..."


def fan_out(fn: Callable[[T], R], items: Sequence[T], jobs: int = 1,
            labels: Optional[Sequence[str]] = None) -> List[R]:
    """Apply ``fn`` to every item, optionally on a thread pool.

    Results are returned in item order regardless of completion order, so
    ``fan_out(fn, items, jobs=n)`` is a drop-in replacement for
    ``[fn(item) for item in items]``. The first worker exception (in item
    order) propagates to the caller with a note naming the failing item's
    index and label, so a 14-application fan-out that dies no longer hides
    *which* application died.

    Inside a :func:`budget_scope`, the pool is sized by borrowing spare
    permits from the ambient :class:`WorkerBudget` instead of trusting
    ``jobs`` blindly; the calling thread always counts as one worker, so
    an exhausted budget degrades to the plain serial loop.

    Args:
        fn: the per-item work function (must not mutate shared state).
        items: the work items.
        jobs: maximum concurrent workers; 1 (the default) runs serially
            on the calling thread with no pool overhead, 0 means "auto"
            (one worker per core).
        labels: optional per-item labels for error attribution; defaults
            to each item's ``.name`` attribute or a truncated ``repr``.

    Raises:
        AnalysisError: if ``jobs`` is negative or ``labels`` does not
            match ``items`` in length.
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    if labels is not None:
        labels = list(labels)
        if len(labels) != len(items):
            raise AnalysisError(
                f"fan_out got {len(items)} items but {len(labels)} labels"
            )
    total = len(items)

    def invoke(index: int, item: T) -> R:
        try:
            return fn(item)
        except Exception as error:
            label = labels[index] if labels is not None else _item_label(item)
            if hasattr(error, "add_note"):  # Python >= 3.11
                error.add_note(
                    f"fan_out: item {index + 1}/{total} ({label}) failed"
                )
            raise

    if jobs == 1 or total <= 1:
        return [invoke(i, item) for i, item in enumerate(items)]

    # Pool threads do not inherit contextvars from the submitting
    # thread: re-install the ambient span context in each worker so
    # spans opened inside fn attach to the same parent as in the serial
    # path — the span tree is jobs-invariant.
    span_context = capture_span_context()

    def invoke_in_context(index: int, item: T) -> R:
        with use_span_context(span_context):
            return invoke(index, item)

    workers = min(jobs, total)
    budget = active_budget()
    borrowed = 0
    if budget is not None:
        # The caller's thread is a worker too, so only workers - 1 extra
        # permits are needed; whatever the budget cannot spare right now
        # shrinks the pool rather than blocking.
        borrowed = budget.borrow(workers - 1)
        workers = 1 + borrowed
    try:
        if workers == 1:
            return [invoke(i, item) for i, item in enumerate(items)]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(invoke_in_context, i, item)
                       for i, item in enumerate(items)]
            return [future.result() for future in futures]
    finally:
        if borrowed:
            budget.release(borrowed)


def fork_available() -> bool:
    """Whether :func:`fan_out_processes` can actually fork workers.

    ``False`` means a process fan-out will degrade to the serial loop
    (identical results, no speedup). Callers choosing between a
    vectorized single-process path and the fork fallback — e.g. the
    event-driven validation stage, whose batched lockstep engine
    replaced the fork fan-out as the default — can consult this to
    report *why* a fallback ran serially.
    """
    import multiprocessing
    return "fork" in multiprocessing.get_all_start_methods()


def _remote_invoke(payload):
    """Top-level process-pool worker running one item under telemetry.

    Forked workers share nothing with the parent, so a **shadow**
    telemetry handle is built here: a fresh metrics registry plus a span
    tracker that inherits the parent's epoch (``perf_counter`` is
    system-wide monotonic, so timestamps stay on one timeline) and
    parents its roots on the submitting span. The shadow's records and
    metrics snapshot travel back with the result; the parent merges
    them, which is how counters stay exact and the span tree stays
    whole under ``--jobs N``.
    """
    fn, item, label, parent_id, epoch = payload
    from repro.telemetry.handle import Telemetry
    from repro.telemetry.spans import SpanTracker
    shadow = Telemetry(spans=SpanTracker(epoch=epoch, root_parent=parent_id))
    with shadow.span("fan_out_processes", item=label):
        result = fn(item)
    return result, shadow.spans.records(), shadow.metrics.as_dict()


def fan_out_processes(fn: Callable[[T], R], items: Sequence[T],
                      jobs: int = 1,
                      labels: Optional[Sequence[str]] = None) -> List[R]:
    """Process-based :func:`fan_out` for GIL-*holding* pure-Python stages.

    The thread pool is the right tool for NumPy-heavy stages, but a pure
    Python hot loop (the event-driven wavefront simulator) holds the GIL
    and serializes under threads no matter how many cores exist. This
    variant forks worker processes instead, so such stages scale with
    cores too. Since the batched lockstep engine
    (:mod:`repro.perf.eventsim_batch`) became the default for the
    event-driven validation stage, this path serves as its fallback —
    same results, fork-scaled instead of vectorized. Contract
    differences from :func:`fan_out`:

    * ``fn`` must be a **pure, top-level** function and ``fn``/``items``/
      results must be picklable — workers share nothing with the parent,
      so side effects (store writes, cache fills) are lost; keep them in
      the caller. Telemetry is the exception: when the call happens
      under an open span, each worker runs under a shadow handle whose
      span records and metrics snapshot are merged back into the
      parent's (see :func:`_remote_invoke`), so traced runs keep exact
      counters and one whole span tree across the process boundary.
    * Platforms without the ``fork`` start method (or ``jobs`` resolving
      to 1) degrade to the plain serial loop — results are identical
      either way, the pool is purely an accelerator.

    Budget composition matches :func:`fan_out`: inside a
    :func:`budget_scope`, worker processes are paid for by borrowing
    permits (the calling thread's permit covers the first worker), so
    process- and thread-level parallelism stay jointly bounded.
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    if labels is not None:
        labels = list(labels)
        if len(labels) != len(items):
            raise AnalysisError(
                f"fan_out got {len(items)} items but {len(labels)} labels"
            )
    total = len(items)

    def attach_note(error: Exception, index: int) -> None:
        label = (labels[index] if labels is not None
                 else _item_label(items[index]))
        if hasattr(error, "add_note"):  # Python >= 3.11
            error.add_note(
                f"fan_out: item {index + 1}/{total} ({label}) failed"
            )

    span_context = capture_span_context()

    def item_label(index: int) -> str:
        return (labels[index] if labels is not None
                else _item_label(items[index]))

    def serial() -> List[R]:
        results = []
        for index, item in enumerate(items):
            try:
                if span_context is not None:
                    # Mirror the span the pooled path's worker opens, so
                    # the tree shape is identical whether work forked or
                    # degraded to the serial loop.
                    with span_context.telemetry.span(
                            "fan_out_processes", item=item_label(index)):
                        results.append(fn(item))
                else:
                    results.append(fn(item))
            except Exception as error:
                attach_note(error, index)
                raise
        return results

    if jobs == 1 or total <= 1:
        return serial()
    import multiprocessing
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:
        return serial()

    workers = min(jobs, total)
    budget = active_budget()
    borrowed = 0
    if budget is not None:
        borrowed = budget.borrow(workers - 1)
        workers = 1 + borrowed
    if workers == 1:
        if borrowed:
            budget.release(borrowed)
        return serial()
    from concurrent.futures import ProcessPoolExecutor
    try:
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            if span_context is None:
                futures = [pool.submit(fn, item) for item in items]
            else:
                futures = [
                    pool.submit(_remote_invoke, (
                        fn, item, item_label(index),
                        span_context.span_id,
                        span_context.tracker.epoch,
                    ))
                    for index, item in enumerate(items)
                ]
            results = []
            for index, future in enumerate(futures):
                try:
                    outcome = future.result()
                except Exception as error:
                    attach_note(error, index)
                    raise
                if span_context is None:
                    results.append(outcome)
                else:
                    result, span_records, metrics_snapshot = outcome
                    span_context.tracker.extend(span_records)
                    span_context.telemetry.metrics.merge(metrics_snapshot)
                    results.append(result)
            return results
    finally:
        if borrowed:
            budget.release(borrowed)
