"""Thread-based fan-out for embarrassingly parallel experiment stages.

The expensive stages of the repro — training-set construction (one
independent measurement pipeline per kernel spec) and the Figures 10-13
policy matrix (one independent run per application) — are pure fan-outs
over independent work items. :func:`fan_out` runs them on a thread pool.

Threads (not processes) are the right tool here: the working set is the
shared :func:`~repro.platform.sweepcache.shared_cache` of NumPy sweep
surfaces, which processes would have to rebuild per worker, and the
vectorized batch path spends its time inside NumPy, which releases the
GIL. Workers must not mutate shared state; stateful policies are isolated
per item by constructing them inside the worker (see
:meth:`~repro.analysis.evaluation.EvaluationHarness.evaluate`).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

from repro.errors import AnalysisError

T = TypeVar("T")
R = TypeVar("R")


def fan_out(fn: Callable[[T], R], items: Sequence[T], jobs: int = 1) -> List[R]:
    """Apply ``fn`` to every item, optionally on a thread pool.

    Results are returned in item order regardless of completion order, so
    ``fan_out(fn, items, jobs=n)`` is a drop-in replacement for
    ``[fn(item) for item in items]``. The first worker exception
    propagates to the caller.

    Args:
        fn: the per-item work function (must not mutate shared state).
        items: the work items.
        jobs: maximum concurrent workers; 1 (the default) runs serially on
            the calling thread with no pool overhead.

    Raises:
        AnalysisError: if ``jobs`` is not positive.
    """
    if jobs < 1:
        raise AnalysisError(f"jobs must be >= 1, got {jobs}")
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))
