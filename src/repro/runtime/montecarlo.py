"""Vectorized Monte Carlo evaluation across measurement-noise seeds.

The paper's headline numbers average repeated *hardware* measurements with
run-to-run variance (Section 6). Reproducing that rigor used to mean N
independent scalar harness runs — one noisy platform per seed, each
re-walking every launch through Python. The launch-keyed noise model
(:mod:`repro.platform.noise`) makes a far cheaper formulation exact:

1. run each (application, policy) pair **once** on the deterministic
   platform to record its launch schedule — the ordered
   ``(spec, config, iteration)`` sequence with noise-free times and
   powers (served from the shared sweep cache's surfaces wherever the
   policy consults them);
2. for every trial seed ``s``, perturb each scheduled launch's time with
   the keyed multiplier of platform seed ``s`` — a vectorized draw per
   ``(spec, iteration)`` group, one matrix of launch times over
   ``(seed, launch)``;
3. reduce each seed's row to run metrics (time, energy, power, ED²) and
   report mean / standard deviation / 95% confidence bands.

**The Monte Carlo contract**: trials share one decision trace — the
policy's converged behaviour on the noise-free platform — and differ only
in measurement noise, which models the paper's methodology of measuring a
trained controller repeatedly. For non-adaptive policies (the baseline,
the oracle's cached optima) trial ``s`` is *bitwise per-launch identical*
to a full scalar harness run on a noisy platform seeded with ``s``.
Candidate and baseline trials are paired by seed, so improvement bands
cancel the shared noise realization the way paired hardware measurements
do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policy import PowerPolicy
from repro.errors import AnalysisError
from repro.platform.hd7970 import HardwarePlatform
from repro.platform.noise import LaunchKeyedNoise
from repro.runtime.simulator import ApplicationRunner
from repro.workloads.application import Application

#: z-score of the two-sided 95% confidence interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class MetricBand:
    """Mean / spread / 95% confidence band of one metric over trials."""

    #: sample mean over trials
    mean: float
    #: sample standard deviation (ddof=1; 0.0 for a single trial)
    std: float
    #: lower edge of the 95% CI on the mean
    ci_low: float
    #: upper edge of the 95% CI on the mean
    ci_high: float
    #: number of trials
    n: int

    @property
    def half_width(self) -> float:
        """Half the CI width (the ± the report prints)."""
        return (self.ci_high - self.ci_low) / 2.0


def band(samples: np.ndarray) -> MetricBand:
    """The :class:`MetricBand` of a vector of per-trial samples."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise AnalysisError("no trials to band")
    mean = float(np.mean(samples))
    std = float(np.std(samples, ddof=1)) if samples.size > 1 else 0.0
    half = _Z95 * std / math.sqrt(samples.size)
    return MetricBand(mean=mean, std=std, ci_low=mean - half,
                      ci_high=mean + half, n=int(samples.size))


@dataclass(frozen=True)
class MonteCarloRun:
    """One (application, policy) pair's repeated-trial outcome.

    Per-trial sample vectors are kept (`*_samples`, indexed by seed
    position) so callers can form paired statistics across policies.
    """

    application: str
    policy: str
    noise_std_fraction: float
    seeds: Tuple[int, ...]
    time_samples: np.ndarray
    energy_samples: np.ndarray
    avg_power_samples: np.ndarray
    ed2_samples: np.ndarray

    @property
    def time(self) -> MetricBand:
        """Total run time (s) across trials."""
        return band(self.time_samples)

    @property
    def energy(self) -> MetricBand:
        """Total card energy (J) across trials."""
        return band(self.energy_samples)

    @property
    def avg_power(self) -> MetricBand:
        """Time-weighted average card power (W) across trials."""
        return band(self.avg_power_samples)

    @property
    def ed2(self) -> MetricBand:
        """ED² (J*s²) across trials."""
        return band(self.ed2_samples)

    @property
    def performance(self) -> MetricBand:
        """Performance (1 / total time) across trials."""
        return band(1.0 / self.time_samples)


@dataclass(frozen=True)
class MonteCarloComparison:
    """Candidate vs baseline, paired by trial seed."""

    application: str
    policy: str
    baseline: MonteCarloRun
    candidate: MonteCarloRun

    def _paired(self, attribute: str) -> Tuple[np.ndarray, np.ndarray]:
        base = getattr(self.baseline, attribute)
        cand = getattr(self.candidate, attribute)
        return base, cand

    @property
    def ed2_improvement(self) -> MetricBand:
        """Fractional ED² improvement over baseline (Figure 10's CI)."""
        base, cand = self._paired("ed2_samples")
        return band(1.0 - cand / base)

    @property
    def energy_improvement(self) -> MetricBand:
        """Fractional energy improvement over baseline (Figure 11's CI)."""
        base, cand = self._paired("energy_samples")
        return band(1.0 - cand / base)

    @property
    def power_saving(self) -> MetricBand:
        """Fractional average-power saving (Figure 12's CI)."""
        base, cand = self._paired("avg_power_samples")
        return band(1.0 - cand / base)

    @property
    def performance_delta(self) -> MetricBand:
        """Relative performance change (Figure 13's CI)."""
        base, cand = self._paired("time_samples")
        return band(base / cand - 1.0)


class MonteCarloEngine:
    """Repeated-trial rollouts, vectorized across noise seeds.

    Args:
        platform: the **deterministic** reference test bed (the engine
            owns the noise; a noisy platform would double-perturb).
        noise_std_fraction: run-to-run execution-time noise fraction of
            each simulated trial.
        seeds: trial platform seeds — an int N means ``range(N)``.

    Raises:
        AnalysisError: if the platform is noisy, the noise fraction is
            not positive, or no seeds are given.
    """

    def __init__(self, platform: HardwarePlatform,
                 noise_std_fraction: float,
                 seeds: "int | Sequence[int]" = 16):
        if not platform.is_deterministic:
            raise AnalysisError(
                "MonteCarloEngine needs a deterministic reference platform "
                f"(got noise_std_fraction={platform.noise_std_fraction}); "
                "the engine applies its own per-seed noise"
            )
        if noise_std_fraction <= 0:
            raise AnalysisError("noise_std_fraction must be positive")
        if isinstance(seeds, int):
            seeds = range(seeds)
        seeds = tuple(int(s) for s in seeds)
        if not seeds:
            raise AnalysisError("at least one trial seed is required")
        if len(set(seeds)) != len(seeds):
            raise AnalysisError("trial seeds must be distinct")
        self._platform = platform
        self._noise = noise_std_fraction
        self._seeds = seeds
        grid_size = len(platform.config_space)
        # One keyed noise model per trial seed, shared across every
        # application and policy this engine evaluates — the memo inside
        # each model lets baseline and candidate reuse the same
        # (spec, iteration) draw vectors.
        self._models = tuple(
            LaunchKeyedNoise(noise_std_fraction, seed, grid_size)
            for seed in seeds
        )

    @property
    def platform(self) -> HardwarePlatform:
        """The deterministic reference platform."""
        return self._platform

    @property
    def seeds(self) -> Tuple[int, ...]:
        """The trial seeds, in sample order."""
        return self._seeds

    @property
    def noise_std_fraction(self) -> float:
        """The per-trial execution-time noise fraction."""
        return self._noise

    def rollout(self, application: Application,
                policy: PowerPolicy,
                reference=None) -> MonteCarloRun:
        """Evaluate one (application, policy) pair across all seeds.

        One deterministic reference run records the launch schedule; the
        noise matrix over ``(seed, launch)`` is then generated from the
        keyed models and reduced to per-seed run metrics — no per-seed
        re-execution of the policy loop.

        Under a traced run the whole rollout is one span (labelled by
        application and policy), attached to whatever span was open on
        the calling thread — typically a pipeline node or a fan-out
        worker.

        Args:
            application: the workload to roll out.
            policy: the policy whose decision trace anchors all trials.
            reference: a precomputed deterministic
                :class:`~repro.runtime.simulator.RunResult` of this
                (application, policy) pair on the engine's platform —
                the batched session engine supplies these so all
                policies' reference runs advance in lockstep. ``None``
                runs the scalar reference here.
        """
        from repro.telemetry.spans import ambient_telemetry
        with ambient_telemetry().span(
                "montecarlo.rollout",
                application=application.name, policy=policy.name):
            return self._rollout(application, policy, reference)

    def _rollout(self, application: Application,
                 policy: PowerPolicy,
                 reference=None) -> MonteCarloRun:
        if reference is None:
            reference = ApplicationRunner(self._platform).run(
                application, policy
            )
        records = reference.trace.records
        launches = list(application.launches())
        if len(launches) != len(records):
            raise AnalysisError(
                f"trace of {application.name!r} has {len(records)} launches; "
                f"schedule expects {len(launches)}"
            )

        det_time = np.array([r.result.time for r in records])
        card_power = np.array([r.result.power.card for r in records])

        # Group launches sharing a (spec, iteration) noise stream so each
        # stream is derived once per seed and indexed per config.
        space = self._platform.config_space
        groups: Dict[Tuple, Tuple[List[int], List[int]]] = {}
        for j, ((iteration, _kernel, spec), record) in enumerate(
                zip(launches, records)):
            positions, grid_indices = groups.setdefault(
                (spec, iteration), ([], [])
            )
            positions.append(j)
            grid_indices.append(space.index_of(record.result.config))

        multipliers = np.empty((len(self._seeds), len(records)))
        for (spec, iteration), (positions, grid_indices) in groups.items():
            cols = np.asarray(positions, dtype=np.intp)
            rows = np.asarray(grid_indices, dtype=np.intp)
            for s, model in enumerate(self._models):
                draws, _clipped = model.multipliers_for(spec, iteration)
                multipliers[s, cols] = draws[rows]

        times = det_time * multipliers            # (seed, launch)
        energies = card_power * times
        total_time = times.sum(axis=1)
        total_energy = energies.sum(axis=1)
        return MonteCarloRun(
            application=application.name,
            policy=policy.name,
            noise_std_fraction=self._noise,
            seeds=self._seeds,
            time_samples=total_time,
            energy_samples=total_energy,
            avg_power_samples=total_energy / total_time,
            ed2_samples=total_energy * total_time * total_time,
        )

    def compare(self, application: Application,
                baseline: PowerPolicy,
                candidate: PowerPolicy) -> MonteCarloComparison:
        """Paired-seed comparison of one candidate against the baseline."""
        base_run = self.rollout(application, baseline)
        cand_run = self.rollout(application, candidate)
        return MonteCarloComparison(
            application=application.name,
            policy=cand_run.policy,
            baseline=base_run,
            candidate=cand_run,
        )


def geomean_band(bands_source: Sequence[MonteCarloComparison],
                 attribute: str) -> MetricBand:
    """Per-seed geometric mean of a ratio metric across applications.

    The geomean is taken within each trial (over applications), then
    banded over trials — matching how the paper averages applications
    within one measurement campaign. ``attribute`` names a
    :class:`MonteCarloComparison` property (e.g. ``"ed2_improvement"``).
    """
    if not bands_source:
        raise AnalysisError("no comparisons to aggregate")
    ratio_rows = []
    for comparison in bands_source:
        if attribute == "performance_delta":
            base = comparison.baseline.time_samples
            cand = comparison.candidate.time_samples
            ratio_rows.append(base / cand)          # 1 + delta
        else:
            samples = {
                "ed2_improvement": "ed2_samples",
                "energy_improvement": "energy_samples",
                "power_saving": "avg_power_samples",
            }
            try:
                field = samples[attribute]
            except KeyError:
                raise AnalysisError(
                    f"unknown comparison attribute {attribute!r}"
                ) from None
            base = getattr(comparison.baseline, field)
            cand = getattr(comparison.candidate, field)
            ratio_rows.append(cand / base)          # 1 - improvement
    ratios = np.vstack(ratio_rows)                  # (application, seed)
    if np.any(ratios <= 0):
        raise AnalysisError("geomean requires positive metric ratios")
    per_seed = np.exp(np.mean(np.log(ratios), axis=0))
    if attribute == "performance_delta":
        return band(per_seed - 1.0)
    return band(1.0 - per_seed)
