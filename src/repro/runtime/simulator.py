"""The kernel-boundary execution loop.

Runs an application on the platform under a power policy, exactly the way
Harmonia's system-software implementation is driven: before each kernel
launch the policy picks a configuration, the kernel runs there, and the
policy observes the result ("we monitor and calculate sensitivities at
kernel boundaries and use each kernel's historical data from previous
iterations to predict hardware configurations for the same kernel in the
next iteration", Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.core.policy import LaunchContext, PowerPolicy
from repro.errors import AnalysisError
from repro.platform.hd7970 import HardwarePlatform
from repro.runtime.metrics import RunMetrics, metrics_from_launches
from repro.runtime.parallel import fan_out
from repro.runtime.trace import LaunchRecord, RunTrace
from repro.telemetry.events import KernelLaunch
from repro.telemetry.handle import coalesce
from repro.workloads.application import Application


@dataclass(frozen=True)
class RunResult:
    """Outcome of one application run under one policy."""

    application: str
    policy: str
    trace: RunTrace
    metrics: RunMetrics


def finish_run(application: Application, policy: PowerPolicy,
               trace: RunTrace) -> RunResult:
    """Assemble a :class:`RunResult` from a completed launch trace.

    Shared by the scalar runner and the batched session engine
    (:mod:`repro.runtime.session`) so both produce identical results.
    """
    launches = [record.result for record in trace.records]
    return RunResult(
        application=application.name,
        policy=policy.name,
        trace=trace,
        metrics=metrics_from_launches(launches),
    )


class ApplicationRunner:
    """Executes applications on a platform under a policy.

    Args:
        platform: the test bed to drive.
        telemetry: telemetry handle receiving per-launch events, the
            ``launch_time_seconds`` histogram and the runtime wall-time
            profile (disabled null handle by default; the disabled path
            runs the seed-identical tight loop).
    """

    def __init__(self, platform: HardwarePlatform, telemetry=None):
        self._platform = platform
        self._telemetry = coalesce(telemetry)

    @property
    def platform(self) -> HardwarePlatform:
        """The test bed being driven."""
        return self._platform

    @property
    def telemetry(self):
        """The telemetry handle in use (the null handle when disabled)."""
        return self._telemetry

    def run(self, application: Application, policy: PowerPolicy,
            reset_policy: bool = True) -> RunResult:
        """Run ``application`` end-to-end under ``policy``.

        Args:
            application: the workload to execute.
            policy: the power-management policy to drive.
            reset_policy: reset the policy's history first (each
                application run starts fresh, as in the paper's per-
                application measurements).
        """
        if reset_policy:
            policy.reset()
        if self._telemetry.enabled:
            return self._run_instrumented(application, policy)
        trace = RunTrace()
        for iteration, kernel, spec in application.launches():
            context = LaunchContext(
                kernel_name=kernel.name, iteration=iteration, spec=spec
            )
            config = policy.config_for(context)
            result = self._platform.launch(spec, config,
                                           iteration=iteration)
            policy.observe(context, result)
            trace.append(LaunchRecord(
                iteration=iteration, kernel_name=kernel.name, result=result
            ))
        return self._finish(application, policy, trace)

    def _run_instrumented(self, application: Application,
                          policy: PowerPolicy) -> RunResult:
        """The kernel-boundary loop with events, metrics and profiling."""
        tel = self._telemetry
        launches_total = tel.metrics.counter(
            "kernel_launches_total", "kernel launches executed",
        )
        launch_time = tel.metrics.histogram(
            "launch_time_seconds", "kernel launch execution time",
        )
        trace = RunTrace()
        for iteration, kernel, spec in application.launches():
            context = LaunchContext(
                kernel_name=kernel.name, iteration=iteration, spec=spec
            )
            with tel.time("policy.config_for"):
                config = policy.config_for(context)
            with tel.time("platform.run_kernel"):
                result = self._platform.launch(spec, config,
                                               iteration=iteration)
            with tel.time("policy.observe"):
                policy.observe(context, result)
            trace.append(LaunchRecord(
                iteration=iteration, kernel_name=kernel.name, result=result
            ))
            launches_total.inc(kernel=kernel.name, policy=policy.name)
            launch_time.observe(result.time, kernel=kernel.name)
            tel.emit(KernelLaunch(
                kernel=kernel.name,
                iteration=iteration,
                time_s=result.time,
                config=result.config,
                power_w=result.power.card,
                energy_j=result.energy,
            ))
        return self._finish(application, policy, trace)

    def _finish(self, application: Application, policy: PowerPolicy,
                trace: RunTrace) -> RunResult:
        return finish_run(application, policy, trace)

    def run_matrix(
        self,
        applications: Sequence[Application],
        policies: Optional[Sequence[PowerPolicy]] = None,
        jobs: int = 1,
        policy_factories: Optional[Sequence[Callable[[], PowerPolicy]]] = None,
        batched: bool = True,
    ) -> Dict[str, Dict[str, RunResult]]:
        """Run every application under every policy, fanned out per app.

        Applications are independent work items, so the matrix goes
        through :func:`~repro.runtime.parallel.fan_out` — the same
        serial-exact pattern as :meth:`~repro.analysis.evaluation.
        EvaluationHarness.evaluate_parallel`. With ``jobs > 1`` pass
        ``policy_factories`` instead of instances: stateful policies
        (:class:`~repro.core.policy.HistoryMixin`) must not be shared
        across concurrent applications, and a fresh instance per
        application is equivalent to a reset one, so the results are
        identical to the serial nested loop for any job count.

        Args:
            applications: workloads to run.
            policies: policy instances, run serially per application
                (mutually exclusive with ``policy_factories``).
            jobs: maximum concurrent application runs.
            policy_factories: zero-argument constructors of fresh policy
                instances, one policy set per application.
            batched: advance each application's policies in lockstep via
                the batched session engine (:mod:`repro.runtime.session`)
                instead of one scalar run per policy. Bitwise-identical
                results; lanes the engine cannot prove equivalent fall
                back to the scalar loop automatically. Set ``False`` to
                force the scalar path (the differential-testing oracle).

        Returns:
            ``results[application_name][policy_name] -> RunResult``.

        Raises:
            AnalysisError: if neither or both of ``policies`` /
                ``policy_factories`` are given, or if ``jobs > 1`` is
                requested with shared policy instances.
        """
        if (policies is None) == (policy_factories is None):
            raise AnalysisError(
                "run_matrix needs exactly one of policies or policy_factories"
            )
        if policy_factories is None:
            if jobs > 1:
                raise AnalysisError(
                    "run_matrix(jobs>1) requires policy_factories: stateful "
                    "policies must not be shared across worker threads"
                )
            policy_factories = [(lambda p=p: p) for p in policies]

        def run_app(application: Application) -> Dict[str, RunResult]:
            per_app: Dict[str, RunResult] = {}
            app_policies = [factory() for factory in policy_factories]
            if batched:
                from repro.runtime.session import (
                    BatchSessionRunner, SessionSpec,
                )
                engine = BatchSessionRunner(self._platform, self._telemetry)
                outcomes = engine.run_sessions([
                    SessionSpec(application=application, policy=policy)
                    for policy in app_policies
                ])
                for policy, outcome in zip(app_policies, outcomes):
                    per_app[policy.name] = outcome
            else:
                for policy in app_policies:
                    per_app[policy.name] = self.run(application, policy)
            return per_app

        outcomes = fan_out(run_app, applications, jobs=jobs)
        return {
            application.name: per_app
            for application, per_app in zip(applications, outcomes)
        }
