"""The kernel-boundary execution loop.

Runs an application on the platform under a power policy, exactly the way
Harmonia's system-software implementation is driven: before each kernel
launch the policy picks a configuration, the kernel runs there, and the
policy observes the result ("we monitor and calculate sensitivities at
kernel boundaries and use each kernel's historical data from previous
iterations to predict hardware configurations for the same kernel in the
next iteration", Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.policy import LaunchContext, PowerPolicy
from repro.platform.hd7970 import HardwarePlatform
from repro.runtime.metrics import RunMetrics, metrics_from_launches
from repro.runtime.trace import LaunchRecord, RunTrace
from repro.workloads.application import Application


@dataclass(frozen=True)
class RunResult:
    """Outcome of one application run under one policy."""

    application: str
    policy: str
    trace: RunTrace
    metrics: RunMetrics


class ApplicationRunner:
    """Executes applications on a platform under a policy."""

    def __init__(self, platform: HardwarePlatform):
        self._platform = platform

    @property
    def platform(self) -> HardwarePlatform:
        """The test bed being driven."""
        return self._platform

    def run(self, application: Application, policy: PowerPolicy,
            reset_policy: bool = True) -> RunResult:
        """Run ``application`` end-to-end under ``policy``.

        Args:
            application: the workload to execute.
            policy: the power-management policy to drive.
            reset_policy: reset the policy's history first (each
                application run starts fresh, as in the paper's per-
                application measurements).
        """
        if reset_policy:
            policy.reset()
        trace = RunTrace()
        for iteration, kernel, spec in application.launches():
            context = LaunchContext(
                kernel_name=kernel.name, iteration=iteration, spec=spec
            )
            config = policy.config_for(context)
            result = self._platform.run_kernel(spec, config)
            policy.observe(context, result)
            trace.append(LaunchRecord(
                iteration=iteration, kernel_name=kernel.name, result=result
            ))
        launches = [record.result for record in trace.records]
        return RunResult(
            application=application.name,
            policy=policy.name,
            trace=trace,
            metrics=metrics_from_launches(launches),
        )

    def run_matrix(self, applications: Sequence[Application],
                   policies: Sequence[PowerPolicy]) -> Dict[str, Dict[str, RunResult]]:
        """Run every application under every policy.

        Returns:
            ``results[application_name][policy_name] -> RunResult``.
        """
        results: Dict[str, Dict[str, RunResult]] = {}
        for application in applications:
            per_app: Dict[str, RunResult] = {}
            for policy in policies:
                per_app[policy.name] = self.run(application, policy)
            results[application.name] = per_app
        return results
