"""Exhaustive design-space exploration (Section 3, Figures 3-6).

Sweeps a kernel across all ~450 hardware configurations and exposes the
views the paper plots: normalized performance vs. platform ops/byte per
memory configuration (Figure 3), power vs. compute configuration at fixed
memory (Figure 4), power vs. memory configuration at fixed compute
(Figure 5), and metric-optimal configurations (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.gpu.config import HardwareConfig
from repro.perf.kernelspec import KernelSpec
from repro.perf.result import KernelRunResult
from repro.platform.hd7970 import HardwarePlatform
from repro.runtime.metrics import ed, ed2


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's outcome in a sweep."""

    config: HardwareConfig
    result: KernelRunResult
    #: platform ops/byte of the configuration (Figure 3 x-axis)
    platform_ops_per_byte: float

    @property
    def time(self) -> float:
        """Execution time (s)."""
        return self.result.time

    @property
    def performance(self) -> float:
        """1 / execution time."""
        return self.result.performance

    @property
    def energy(self) -> float:
        """Card energy (J)."""
        return self.result.energy

    @property
    def card_power(self) -> float:
        """Average card power (W)."""
        return self.result.power.card

    @property
    def ed(self) -> float:
        """Energy-delay (J*s)."""
        return ed(self.energy, self.time)

    @property
    def ed2(self) -> float:
        """Energy-delay-squared (J*s^2)."""
        return ed2(self.energy, self.time)


class ConfigSweep:
    """A kernel's full design-space sweep.

    The grid is always evaluated through the batched sweep engine
    (:meth:`~repro.platform.hd7970.HardwarePlatform.grid_sweep`) and the
    deterministic surface is shared across experiments via the
    process-wide sweep cache. With measurement noise enabled, the
    launch-keyed noise is applied after the cache lookup, so every point
    carries exactly the draw a per-launch call would see — noisy sweeps
    run at batch speed without freezing a noise realization.
    """

    def __init__(self, platform: HardwarePlatform, spec: KernelSpec):
        self._platform = platform
        self._spec = spec
        self._points: List[SweepPoint] = []
        space = platform.config_space
        results = platform.grid_sweep(spec).to_results()
        for config, result in zip(space, results):
            self._points.append(SweepPoint(
                config=config,
                result=result,
                platform_ops_per_byte=space.platform_ops_per_byte(config),
            ))

    @property
    def spec(self) -> KernelSpec:
        """The swept kernel."""
        return self._spec

    @property
    def points(self) -> Tuple[SweepPoint, ...]:
        """All sweep points (grid order)."""
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    # --- the paper's views ---------------------------------------------------------

    def reference_point(self) -> SweepPoint:
        """The minimum configuration the paper normalizes to."""
        reference = self._platform.config_space.min_config()
        for point in self._points:
            if point.config == reference:
                return point
        raise AnalysisError("sweep does not contain the minimum configuration")

    def curve_for_memory_config(self, f_mem: float) -> List[SweepPoint]:
        """Figure 3: one curve — all compute configs at a fixed memory
        configuration, ordered by platform ops/byte."""
        curve = [p for p in self._points if p.config.f_mem == f_mem]
        if not curve:
            raise AnalysisError(f"no sweep points at f_mem={f_mem:.3e}")
        return sorted(curve, key=lambda p: p.platform_ops_per_byte)

    def power_vs_compute(self, f_mem: float) -> List[SweepPoint]:
        """Figure 4: card power across compute configs at fixed memory."""
        return self.curve_for_memory_config(f_mem)

    def power_vs_memory(self, n_cu: int, f_cu: float) -> List[SweepPoint]:
        """Figure 5: card power across memory configs at fixed compute."""
        curve = [
            p for p in self._points
            if p.config.n_cu == n_cu and p.config.f_cu == f_cu
        ]
        if not curve:
            raise AnalysisError("no sweep points at that compute config")
        return sorted(curve, key=lambda p: p.config.f_mem)

    def best_by(self, metric: Callable[[SweepPoint], float]) -> SweepPoint:
        """The sweep point minimizing ``metric`` (Figure 6's optima)."""
        if not self._points:
            raise AnalysisError("empty sweep")
        return min(self._points, key=metric)

    def optimum_energy(self) -> SweepPoint:
        """Energy-optimal configuration."""
        return self.best_by(lambda p: p.energy)

    def optimum_ed2(self) -> SweepPoint:
        """ED²-optimal configuration."""
        return self.best_by(lambda p: p.ed2)

    def optimum_performance(self) -> SweepPoint:
        """Performance-optimal (minimum time) configuration."""
        return self.best_by(lambda p: p.time)
