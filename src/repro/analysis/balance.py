"""Hardware balance-point detection (Section 3.2).

"Hardware configurations with normalized ops/byte of ~4.0 are balanced
configurations where compute throughput just saturates the available
memory bandwidth. Each memory configuration has a different balance point
(the knee of the curve)."

Given a Figure 3 curve (performance vs. platform ops/byte at fixed memory
configuration), the knee is the smallest ops/byte whose performance is
within a saturation tolerance of the curve's maximum — the cheapest
compute configuration that delivers (almost) peak performance for that
memory bandwidth.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import AnalysisError
from repro.analysis.sweep import SweepPoint


def knee_of_curve(curve: Sequence[SweepPoint],
                  saturation_tolerance: float = 0.02) -> SweepPoint:
    """The knee (balance point) of one fixed-memory performance curve.

    Args:
        curve: sweep points at one memory configuration, ascending in
            platform ops/byte.
        saturation_tolerance: how close to the curve's peak performance a
            point must be to count as saturated.

    Returns:
        The first (lowest-ops/byte) saturated point.

    Raises:
        AnalysisError: for an empty curve or a non-positive tolerance.
    """
    if not curve:
        raise AnalysisError("empty curve")
    if saturation_tolerance < 0:
        raise AnalysisError("saturation_tolerance must be non-negative")
    peak = max(p.performance for p in curve)
    for point in curve:
        if point.performance >= peak * (1.0 - saturation_tolerance):
            return point
    raise AnalysisError("unreachable: the peak point always satisfies the bound")


def find_balance_point(sweep, f_mem: float,
                       saturation_tolerance: float = 0.02) -> SweepPoint:
    """Balance point of ``sweep`` at memory configuration ``f_mem``.

    Convenience wrapper: extracts the fixed-memory curve and returns its
    knee (see :func:`knee_of_curve`).
    """
    curve = sweep.curve_for_memory_config(f_mem)
    return knee_of_curve(curve, saturation_tolerance)
