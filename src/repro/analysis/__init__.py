"""Analysis: design-space sweeps, balance points, evaluation, reporting.

* :mod:`repro.analysis.sweep` — the 450-configuration exhaustive
  exploration behind Figures 3-6,
* :mod:`repro.analysis.balance` — hardware balance-point detection,
* :mod:`repro.analysis.evaluation` — the Figures 10-13 policy-comparison
  harness (per-application improvements + the two geometric means),
* :mod:`repro.analysis.report` — ASCII table / CSV emitters used by the
  benchmarks.
"""

from repro.analysis.sweep import ConfigSweep, SweepPoint
from repro.analysis.balance import find_balance_point, knee_of_curve
from repro.analysis.evaluation import (
    ApplicationComparison,
    EvaluationHarness,
    EvaluationSummary,
)
from repro.analysis.pareto import ParetoFrontier, distance_to_frontier, pareto_frontier
from repro.analysis.report import format_table, to_csv
from repro.analysis.roofline import (
    Regime,
    RooflinePoint,
    balanced_configurations,
    classify_kernel,
    ridge_point,
    roofline,
)

__all__ = [
    "ConfigSweep",
    "SweepPoint",
    "find_balance_point",
    "knee_of_curve",
    "ApplicationComparison",
    "EvaluationHarness",
    "EvaluationSummary",
    "ParetoFrontier",
    "distance_to_frontier",
    "pareto_frontier",
    "format_table",
    "to_csv",
    "Regime",
    "RooflinePoint",
    "balanced_configurations",
    "classify_kernel",
    "ridge_point",
    "roofline",
]
