"""Roofline analysis of kernels and configurations.

The paper's framing (Section 1) is explicitly roofline-shaped: "the
ops/byte value of an application ... represents the relative demand placed
on the GPU cores and the memory system", citing Williams et al.'s Roofline
model [51] and Choi et al.'s energy roofline [9]. "Ideally, the relative
ops/byte demand of the applications matches the relative time and power
costs of compute and memory hardware of the platform and we have a
perfectly balanced system."

This module makes that framing computable:

* :func:`roofline` — attainable throughput at a given operational
  intensity under a configuration's compute and bandwidth ceilings,
* :func:`ridge_point` — the configuration's balance intensity (where the
  two ceilings meet; the paper's "hardware ops/byte"),
* :func:`classify_kernel` — which ceiling a kernel sits under, and how
  much of the other resource is provisioned in excess (the power Harmonia
  can recover),
* :func:`balanced_configurations` — grid configurations whose ridge point
  best matches a kernel's demanded intensity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import AnalysisError
from repro.gpu.architecture import GpuArchitecture
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.perf.kernelspec import KernelSpec


class Regime(enum.Enum):
    """Which roofline ceiling binds."""

    COMPUTE_BOUND = "compute-bound"
    MEMORY_BOUND = "memory-bound"
    BALANCED = "balanced"


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position under one configuration's roofline."""

    kernel: str
    config: HardwareConfig
    #: the kernel's operational intensity (ops per DRAM byte)
    intensity: float
    #: the configuration's ridge point (hardware ops/byte)
    ridge: float
    #: attainable throughput (ops/s) at the kernel's intensity
    attainable: float
    #: which ceiling binds
    regime: Regime
    #: fraction of the non-binding resource that is surplus (0 when
    #: perfectly balanced) — the provisioning Harmonia can trim
    surplus_fraction: float


def roofline(arch: GpuArchitecture, config: HardwareConfig,
             intensity: float) -> float:
    """Attainable throughput (ops/s) at ``intensity`` (ops/byte).

    The classic two-ceiling roofline:
    ``min(peak_compute, intensity x peak_bandwidth)``.
    """
    if intensity <= 0:
        raise AnalysisError("operational intensity must be positive")
    compute_ceiling = arch.peak_flops(config.n_cu, config.f_cu)
    bandwidth_ceiling = intensity * arch.peak_memory_bandwidth(config.f_mem)
    return min(compute_ceiling, bandwidth_ceiling)


def ridge_point(arch: GpuArchitecture, config: HardwareConfig) -> float:
    """The intensity (ops/byte) where the two ceilings meet.

    This is exactly the paper's "hardware ops/byte" — the x-axis of
    Figures 3-5.
    """
    return (arch.peak_flops(config.n_cu, config.f_cu)
            / arch.peak_memory_bandwidth(config.f_mem))


def classify_kernel(arch: GpuArchitecture, spec: KernelSpec,
                    config: HardwareConfig,
                    balance_band: float = 0.25) -> RooflinePoint:
    """Place a kernel under a configuration's roofline.

    Args:
        arch: the machine description.
        spec: the kernel (its demanded ops/byte comes from
            :meth:`~repro.perf.kernelspec.KernelSpec.demanded_ops_per_byte`).
        config: the hardware configuration.
        balance_band: relative half-width of the "balanced" regime around
            the ridge point.

    Returns:
        A :class:`RooflinePoint` with the regime and the surplus fraction
        of the over-provisioned resource.
    """
    if not 0 <= balance_band < 1:
        raise AnalysisError("balance_band must be in [0, 1)")
    intensity = spec.demanded_ops_per_byte()
    ridge = ridge_point(arch, config)
    attainable = roofline(arch, config, intensity)

    ratio = intensity / ridge
    if ratio > 1 + balance_band:
        regime = Regime.COMPUTE_BOUND
        # Memory bandwidth is provisioned in excess.
        surplus = 1.0 - ridge / intensity
    elif ratio < 1 - balance_band:
        regime = Regime.MEMORY_BOUND
        # Compute throughput is provisioned in excess.
        surplus = 1.0 - intensity / ridge
    else:
        regime = Regime.BALANCED
        surplus = abs(1.0 - ratio)

    return RooflinePoint(
        kernel=spec.name,
        config=config,
        intensity=intensity,
        ridge=ridge,
        attainable=attainable,
        regime=regime,
        surplus_fraction=surplus,
    )


def balanced_configurations(space: ConfigSpace, spec: KernelSpec,
                            top_n: int = 5) -> List[Tuple[HardwareConfig, float]]:
    """Grid configurations whose ridge point best matches the kernel.

    Returns the ``top_n`` configurations ranked by closeness of their
    hardware ops/byte to the kernel's demanded ops/byte — the static
    (roofline-only) approximation of the balance point Harmonia seeks
    dynamically.
    """
    if top_n < 1:
        raise AnalysisError("top_n must be >= 1")
    intensity = spec.demanded_ops_per_byte()
    scored = []
    for config in space:
        ridge = space.platform_ops_per_byte(config)
        mismatch = abs(ridge - intensity) / intensity
        scored.append((config, mismatch))
    scored.sort(key=lambda item: item[1])
    return scored[:top_n]
