"""The Figures 10-13 policy-comparison harness.

Runs every application under every policy, normalizes to the baseline, and
produces exactly the rows the paper's result figures plot: per-application
ED² / energy / power improvements and performance deltas, plus the two
geometric means ("Geomean 2 ... excludes those two stress benchmarks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.core.policy import PowerPolicy
from repro.platform.hd7970 import HardwarePlatform
from repro.runtime.metrics import RunMetrics, geomean, improvement
from repro.runtime.montecarlo import (
    MetricBand,
    MonteCarloComparison,
    MonteCarloEngine,
    geomean_band,
)
from repro.runtime.parallel import fan_out
from repro.runtime.simulator import ApplicationRunner, RunResult
from repro.workloads.application import Application
from repro.workloads.registry import STRESS_BENCHMARKS

#: A zero-argument constructor of a fresh policy instance, used to give
#: each parallel worker its own stateful policy.
PolicyFactory = Callable[[], PowerPolicy]


@dataclass(frozen=True)
class ApplicationComparison:
    """One application's outcome under one policy, vs. the baseline."""

    application: str
    policy: str
    baseline: RunMetrics
    candidate: RunMetrics

    @property
    def ed2_improvement(self) -> float:
        """Fractional ED² improvement over the baseline (Figure 10)."""
        return improvement(self.baseline.ed2, self.candidate.ed2)

    @property
    def energy_improvement(self) -> float:
        """Fractional energy improvement over the baseline (Figure 11)."""
        return improvement(self.baseline.energy, self.candidate.energy)

    @property
    def power_saving(self) -> float:
        """Fractional average-power saving over the baseline (Figure 12)."""
        return improvement(self.baseline.avg_power, self.candidate.avg_power)

    @property
    def performance_delta(self) -> float:
        """Relative performance change (Figure 13); negative = slowdown."""
        return self.baseline.time / self.candidate.time - 1.0

    @property
    def ed_improvement(self) -> float:
        """Fractional ED improvement (the Section 3.4 companion metric)."""
        return improvement(self.baseline.ed, self.candidate.ed)


@dataclass(frozen=True)
class EvaluationSummary:
    """All policies x all applications, with the paper's two geomeans."""

    comparisons: Tuple[ApplicationComparison, ...]
    runs: Mapping[str, Mapping[str, RunResult]]

    def for_policy(self, policy: str) -> Tuple[ApplicationComparison, ...]:
        """All per-application comparisons of one policy."""
        rows = tuple(c for c in self.comparisons if c.policy == policy)
        if not rows:
            raise AnalysisError(f"no comparisons for policy {policy!r}")
        return rows

    def comparison(self, application: str, policy: str) -> ApplicationComparison:
        """One application x policy cell."""
        for c in self.comparisons:
            if c.application == application and c.policy == policy:
                return c
        raise AnalysisError(f"no comparison for {application!r} x {policy!r}")

    def _geomean_of(self, policy: str, attribute: str,
                    exclude_stress: bool) -> float:
        rows = self.for_policy(policy)
        if exclude_stress:
            rows = tuple(r for r in rows if r.application not in STRESS_BENCHMARKS)
        if attribute == "performance_delta":
            # delta = baseline_time / candidate_time - 1; the ratio
            # (1 + delta) is positive by construction.
            return geomean(1.0 + r.performance_delta for r in rows) - 1.0
        # Improvement metrics are (baseline - candidate) / baseline; the
        # geomean must run over the positive candidate/baseline ratios —
        # a candidate can be arbitrarily worse than baseline (ratio > 2),
        # where naive geomean over (1 + improvement) would go negative.
        return 1.0 - geomean(1.0 - getattr(r, attribute) for r in rows)

    def geomean(self, policy: str, attribute: str,
                exclude_stress: bool = False) -> float:
        """Geomean of any comparison attribute for one policy."""
        return self._geomean_of(policy, attribute, exclude_stress)

    def geomean_ed2(self, policy: str, exclude_stress: bool = False) -> float:
        """Geomean ED² improvement (Geomean 1, or Geomean 2 if excluding
        the MaxFlops/DeviceMemory stress benchmarks)."""
        return self._geomean_of(policy, "ed2_improvement", exclude_stress)

    def geomean_energy(self, policy: str, exclude_stress: bool = False) -> float:
        """Geomean energy improvement."""
        return self._geomean_of(policy, "energy_improvement", exclude_stress)

    def geomean_power(self, policy: str, exclude_stress: bool = False) -> float:
        """Geomean power saving."""
        return self._geomean_of(policy, "power_saving", exclude_stress)

    def geomean_performance(self, policy: str,
                            exclude_stress: bool = False) -> float:
        """Geomean performance delta."""
        return self._geomean_of(policy, "performance_delta", exclude_stress)


@dataclass(frozen=True)
class MonteCarloSummary:
    """All policies x all applications under repeated-trial noise.

    The Monte Carlo analogue of :class:`EvaluationSummary`: every cell is
    a seed-paired :class:`~repro.runtime.montecarlo.MonteCarloComparison`
    whose improvement metrics carry mean/std/95% CI bands instead of
    point values.
    """

    comparisons: Tuple[MonteCarloComparison, ...]
    seeds: Tuple[int, ...]
    noise_std_fraction: float

    def for_policy(self, policy: str) -> Tuple[MonteCarloComparison, ...]:
        """All per-application comparisons of one policy."""
        rows = tuple(c for c in self.comparisons if c.policy == policy)
        if not rows:
            raise AnalysisError(f"no comparisons for policy {policy!r}")
        return rows

    def comparison(self, application: str,
                   policy: str) -> MonteCarloComparison:
        """One application x policy cell."""
        for c in self.comparisons:
            if c.application == application and c.policy == policy:
                return c
        raise AnalysisError(f"no comparison for {application!r} x {policy!r}")

    def geomean(self, policy: str, attribute: str,
                exclude_stress: bool = False) -> MetricBand:
        """Banded geomean of a comparison attribute for one policy.

        The geomean runs over applications within each trial seed and is
        banded across seeds, so the CI reflects what repeated measurement
        campaigns of the whole suite would report.
        """
        rows = self.for_policy(policy)
        if exclude_stress:
            rows = tuple(r for r in rows
                         if r.application not in STRESS_BENCHMARKS)
        if not rows:
            raise AnalysisError("no applications left after exclusion")
        return geomean_band(rows, attribute)


class EvaluationHarness:
    """Runs the full policy-comparison matrix."""

    def __init__(self, platform: HardwarePlatform,
                 baseline_policy: PowerPolicy):
        self._platform = platform
        self._runner = ApplicationRunner(platform)
        self._baseline = baseline_policy

    def evaluate(self, applications: Sequence[Application],
                 policies: Sequence[PowerPolicy],
                 batched: bool = True) -> EvaluationSummary:
        """Run baseline + candidates over all applications.

        Args:
            applications: workloads to evaluate.
            policies: candidate policies (the baseline is implicit).
            batched: advance each application's baseline + candidates in
                lockstep via the batched session engine
                (:mod:`repro.runtime.session`). Bitwise-identical to the
                scalar loop; lanes the engine cannot prove equivalent
                fall back automatically. ``False`` forces the scalar
                path (the differential-testing oracle).
        """
        if not applications:
            raise AnalysisError("no applications to evaluate")
        comparisons: List[ApplicationComparison] = []
        runs: Dict[str, Dict[str, RunResult]] = {}
        session_runner = None
        if batched:
            from repro.runtime.session import BatchSessionRunner, SessionSpec
            session_runner = BatchSessionRunner(self._platform)
        for application in applications:
            if session_runner is not None:
                lane_policies = [self._baseline, *policies]
                outcomes = session_runner.run_sessions([
                    SessionSpec(application=application, policy=policy)
                    for policy in lane_policies
                ])
                base_run, policy_runs = outcomes[0], outcomes[1:]
            else:
                base_run = self._runner.run(application, self._baseline)
                policy_runs = [self._runner.run(application, policy)
                               for policy in policies]
            per_app: Dict[str, RunResult] = {self._baseline.name: base_run}
            for policy, run in zip(policies, policy_runs):
                per_app[policy.name] = run
                comparisons.append(ApplicationComparison(
                    application=application.name,
                    policy=policy.name,
                    baseline=base_run.metrics,
                    candidate=run.metrics,
                ))
            runs[application.name] = per_app
        return EvaluationSummary(comparisons=tuple(comparisons), runs=runs)

    def evaluate_parallel(
        self,
        applications: Sequence[Application],
        baseline_factory: PolicyFactory,
        policy_factories: Sequence[PolicyFactory],
        jobs: int = 1,
        batched: bool = True,
    ) -> EvaluationSummary:
        """Run the matrix with applications fanned out over threads.

        Policies carry per-run history (:class:`~repro.core.policy.
        HistoryMixin`), so sharing one instance across concurrent
        applications would race. Instead each application gets fresh
        instances from the factories — equivalent to the serial harness,
        which resets every policy between applications — and results are
        assembled in application order, so the summary is identical to
        :meth:`evaluate` on a deterministic platform.

        Args:
            applications: workloads to evaluate.
            baseline_factory: constructor of fresh baseline policies.
            policy_factories: constructors of fresh candidate policies.
            jobs: maximum concurrent application evaluations.
            batched: advance each application's policies in lockstep via
                the batched session engine (bitwise-identical; ``False``
                forces the scalar loop).
        """
        if not applications:
            raise AnalysisError("no applications to evaluate")

        def evaluate_app(application: Application):
            baseline = baseline_factory()
            policies = [factory() for factory in policy_factories]
            if batched:
                from repro.runtime.session import (
                    BatchSessionRunner, SessionSpec,
                )
                engine = BatchSessionRunner(self._platform)
                outcomes = engine.run_sessions([
                    SessionSpec(application=application, policy=policy)
                    for policy in (baseline, *policies)
                ])
                base_run, policy_runs = outcomes[0], outcomes[1:]
            else:
                runner = ApplicationRunner(self._platform)
                base_run = runner.run(application, baseline)
                policy_runs = [runner.run(application, policy)
                               for policy in policies]
            per_app: Dict[str, RunResult] = {self._baseline.name: base_run}
            comps: List[ApplicationComparison] = []
            for policy, run in zip(policies, policy_runs):
                per_app[policy.name] = run
                comps.append(ApplicationComparison(
                    application=application.name,
                    policy=policy.name,
                    baseline=base_run.metrics,
                    candidate=run.metrics,
                ))
            return per_app, comps

        outcomes = fan_out(evaluate_app, applications, jobs=jobs)
        comparisons: List[ApplicationComparison] = []
        runs: Dict[str, Dict[str, RunResult]] = {}
        for application, (per_app, comps) in zip(applications, outcomes):
            runs[application.name] = per_app
            comparisons.extend(comps)
        return EvaluationSummary(comparisons=tuple(comparisons), runs=runs)

    def evaluate_montecarlo(
        self,
        applications: Sequence[Application],
        baseline_factory: PolicyFactory,
        policy_factories: Sequence[PolicyFactory],
        seeds: "int | Sequence[int]" = 16,
        noise_std_fraction: float = 0.05,
        jobs: int = 1,
        batched: bool = True,
    ) -> MonteCarloSummary:
        """Run the matrix under repeated-trial measurement noise.

        Each (application, policy) pair is rolled out once on the
        deterministic platform and re-measured across every trial seed by
        the vectorized :class:`~repro.runtime.montecarlo.MonteCarloEngine`
        — the launch-keyed noise model guarantees each trial matches the
        scalar noisy run at the same platform seed. Baseline and
        candidate share seeds, so the reported improvement bands are
        paired. Applications fan out over ``jobs`` threads with fresh
        policy instances, serial-exact like :meth:`evaluate_parallel`.

        Args:
            applications: workloads to evaluate.
            baseline_factory: constructor of fresh baseline policies.
            policy_factories: constructors of fresh candidate policies.
            seeds: trial platform seeds — an int N means ``range(N)``.
            noise_std_fraction: per-trial execution-time noise fraction.
            jobs: maximum concurrent application evaluations.
            batched: compute all policies' deterministic reference runs
                per application in lockstep via the batched session
                engine before handing them to the vectorized noise
                reduction (bitwise-identical; ``False`` forces scalar
                reference runs).
        """
        if not applications:
            raise AnalysisError("no applications to evaluate")
        engine = MonteCarloEngine(self._platform, noise_std_fraction, seeds)

        def evaluate_app(application: Application):
            baseline = baseline_factory()
            policies = [factory() for factory in policy_factories]
            references = [None] * (1 + len(policies))
            if batched:
                from repro.runtime.session import (
                    BatchSessionRunner, SessionSpec,
                )
                session_runner = BatchSessionRunner(self._platform)
                references = session_runner.run_sessions([
                    SessionSpec(application=application, policy=policy)
                    for policy in (baseline, *policies)
                ])
            base_run = engine.rollout(application, baseline,
                                      reference=references[0])
            comps: List[MonteCarloComparison] = []
            for policy, reference in zip(policies, references[1:]):
                cand_run = engine.rollout(application, policy,
                                          reference=reference)
                comps.append(MonteCarloComparison(
                    application=application.name,
                    policy=cand_run.policy,
                    baseline=base_run,
                    candidate=cand_run,
                ))
            return comps

        outcomes = fan_out(evaluate_app, applications, jobs=jobs)
        comparisons: List[MonteCarloComparison] = []
        for comps in outcomes:
            comparisons.extend(comps)
        return MonteCarloSummary(
            comparisons=tuple(comparisons),
            seeds=engine.seeds,
            noise_std_fraction=noise_std_fraction,
        )
