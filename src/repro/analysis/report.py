"""Plain-text table and CSV emitters for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and machine-checkable.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import AnalysisError


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an ASCII table with right-aligned numeric-ish columns.

    Args:
        headers: column names.
        rows: row cells; values are rendered with ``str`` (format numbers
            before passing them in).
        title: optional title line printed above the table.

    Raises:
        AnalysisError: if a row's width does not match the header width.
    """
    if not headers:
        raise AnalysisError("table needs at least one column")
    str_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        str_rows.append([str(cell) for cell in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as simple CSV (no quoting — callers pass clean cells).

    Raises:
        AnalysisError: on width mismatch or cells containing commas.
    """
    lines = [",".join(headers)]
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError("row width does not match header width")
        cells = [str(cell) for cell in row]
        if any("," in cell for cell in cells):
            raise AnalysisError("CSV cells must not contain commas")
        lines.append(",".join(cells))
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a signed percentage string."""
    return f"{value * 100:+.{digits}f}%"
