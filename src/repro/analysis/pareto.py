"""Pareto-frontier extraction over the configuration space.

The design-space sweeps of Section 3 implicitly ask a Pareto question:
which configurations are *not dominated* — no other configuration is both
faster and lower-power? The frontier is where every sane operating point
lives; the Figure 6 metric optima (min energy, min ED², max performance)
are all frontier members, and Harmonia's balance points should land on or
near it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.sweep import ConfigSweep, SweepPoint
from repro.errors import AnalysisError


@dataclass(frozen=True)
class ParetoFrontier:
    """The perf/power Pareto frontier of one kernel's sweep."""

    kernel: str
    #: non-dominated points, ordered by ascending power
    points: Tuple[SweepPoint, ...]
    #: total points in the underlying sweep
    swept: int

    def __len__(self) -> int:
        return len(self.points)

    @property
    def fraction_on_frontier(self) -> float:
        """How selective the frontier is (|frontier| / |sweep|)."""
        return len(self.points) / self.swept

    def fastest(self) -> SweepPoint:
        """The maximum-performance frontier point."""
        return max(self.points, key=lambda p: p.performance)

    def cheapest(self) -> SweepPoint:
        """The minimum-power frontier point."""
        return min(self.points, key=lambda p: p.card_power)

    def knee_by_ed2(self) -> SweepPoint:
        """The frontier point minimizing ED² (the paper's objective)."""
        return min(self.points, key=lambda p: p.ed2)

    def contains_config(self, config) -> bool:
        """Whether a configuration sits on the frontier."""
        return any(p.config == config for p in self.points)


def pareto_frontier(sweep: ConfigSweep) -> ParetoFrontier:
    """Extract the perf/power frontier from a full sweep.

    A point is dominated if another point has (strictly better
    performance and no more power) or (strictly less power and no less
    performance).

    Raises:
        AnalysisError: for an empty sweep.
    """
    points = list(sweep.points)
    if not points:
        raise AnalysisError("empty sweep")
    # Sort by power ascending, then performance descending; walk keeping
    # points that improve on the best performance seen so far.
    points.sort(key=lambda p: (p.card_power, -p.performance))
    frontier: List[SweepPoint] = []
    best_performance = -1.0
    for point in points:
        if point.performance > best_performance:
            frontier.append(point)
            best_performance = point.performance
    return ParetoFrontier(
        kernel=sweep.spec.name,
        points=tuple(frontier),
        swept=len(points),
    )


def distance_to_frontier(frontier: ParetoFrontier, config,
                         platform=None, result=None) -> float:
    """Relative performance gap between a configuration's outcome and the
    frontier at the same (or lower) power.

    Args:
        frontier: the kernel's frontier.
        config: the configuration to score.
        platform: the test bed (used to run the kernel at ``config`` when
            ``result`` is not supplied).
        result: an already-measured
            :class:`~repro.perf.result.KernelRunResult` at ``config``.

    Returns:
        ``0.0`` if the point is frontier-optimal for its power; positive
        values are the fraction of performance left on the table.

    Raises:
        AnalysisError: when neither ``platform`` nor ``result`` is given.
    """
    if result is None:
        if platform is None:
            raise AnalysisError("need either a platform or a result")
        from repro.workloads.registry import get_kernel
        spec = get_kernel(frontier.kernel).base
        # Index the kernel's cached grid surface instead of re-running the
        # model; with launch-keyed noise the indexed element is bitwise
        # identical to a scalar run_kernel call at iteration 0.
        result = platform.grid_sweep(spec).result_at_config(config)
    achievable = max(
        (p.performance for p in frontier.points
         if p.card_power <= result.power.card * 1.001),
        default=None,
    )
    if achievable is None:
        return 0.0
    gap = (achievable - result.performance) / achievable
    return max(0.0, gap)
