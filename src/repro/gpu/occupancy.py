"""Kernel occupancy calculation (Sections 2.2 and 3.5, Figure 7).

Occupancy measures how many wavefronts can be resident per SIMD relative to
the architectural maximum of 10. Residency is limited by whichever shared
resource runs out first:

* **VGPRs** — each wave needs ``vgprs_per_workitem`` registers per lane out
  of the SIMD's 256-entry file. The paper's example: ``Sort.BottomScan``
  uses 66 VGPRs -> floor(256/66) = 3 waves per SIMD -> 30% occupancy.
* **SGPRs** — scalar registers are allocated per wave from a shared file.
* **LDS** — allocated per workgroup from the CU's 64 KB.
* **workgroup slots** — a CU tracks at most ``max_workgroups_per_cu`` groups.

The LDS and workgroup limits are per-CU; they are converted to a per-SIMD
wave limit by dividing across the CU's SIMDs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import KernelSpecError
from repro.gpu.architecture import GpuArchitecture


@dataclass(frozen=True)
class OccupancyLimits:
    """Per-limiter maximum waves per SIMD (before taking the minimum)."""

    architectural: int
    vgpr: int
    sgpr: int
    lds: int
    workgroup_slots: int

    def binding(self) -> str:
        """Name of the limiter that binds (smallest limit, ties broken in
        the order architectural, vgpr, sgpr, lds, workgroup_slots)."""
        pairs = [
            ("architectural", self.architectural),
            ("vgpr", self.vgpr),
            ("sgpr", self.sgpr),
            ("lds", self.lds),
            ("workgroup_slots", self.workgroup_slots),
        ]
        return min(pairs, key=lambda kv: kv[1])[0]


@dataclass(frozen=True)
class OccupancyResult:
    """Computed occupancy for one kernel on one architecture."""

    waves_per_simd: int
    limits: OccupancyLimits

    @property
    def occupancy(self) -> float:
        """Kernel occupancy as a fraction of the architectural maximum."""
        return self.waves_per_simd / self.limits.architectural

    @property
    def limiting_resource(self) -> str:
        """The resource that bounds residency (e.g. ``"vgpr"``)."""
        return self.limits.binding()


def compute_occupancy(
    arch: GpuArchitecture,
    vgprs_per_workitem: int,
    sgprs_per_wave: int,
    lds_bytes_per_workgroup: int,
    workgroup_size: int,
) -> OccupancyResult:
    """Compute the wavefront residency of a kernel on ``arch``.

    Occupancy depends only on the architecture and the kernel's resource
    requests — never on the (n_cu, f_cu, f_mem) operating point — so the
    result is memoized: a 450-point grid sweep computes it exactly once.

    Args:
        arch: the GPU machine description.
        vgprs_per_workitem: vector registers allocated per workitem.
        sgprs_per_wave: scalar registers allocated per wavefront.
        lds_bytes_per_workgroup: LDS allocated per workgroup (0 if unused).
        workgroup_size: workitems per workgroup.

    Returns:
        An :class:`OccupancyResult` with the per-limiter breakdown.

    Raises:
        KernelSpecError: if a resource request exceeds the physical file or
            a size is non-positive where it must be positive.
    """
    return _compute_occupancy_cached(
        arch, vgprs_per_workitem, sgprs_per_wave,
        lds_bytes_per_workgroup, workgroup_size,
    )


@lru_cache(maxsize=4096)
def _compute_occupancy_cached(
    arch: GpuArchitecture,
    vgprs_per_workitem: int,
    sgprs_per_wave: int,
    lds_bytes_per_workgroup: int,
    workgroup_size: int,
) -> OccupancyResult:
    if workgroup_size <= 0:
        raise KernelSpecError("workgroup_size must be positive")
    if vgprs_per_workitem <= 0:
        raise KernelSpecError("vgprs_per_workitem must be positive")
    if vgprs_per_workitem > arch.vgprs_per_simd:
        raise KernelSpecError(
            f"kernel requests {vgprs_per_workitem} VGPRs/workitem; "
            f"file holds {arch.vgprs_per_simd}"
        )
    if sgprs_per_wave <= 0:
        raise KernelSpecError("sgprs_per_wave must be positive")
    if sgprs_per_wave > arch.sgprs_per_wave_file:
        raise KernelSpecError(
            f"kernel requests {sgprs_per_wave} SGPRs/wave; "
            f"file holds {arch.sgprs_per_wave_file}"
        )
    if lds_bytes_per_workgroup < 0:
        raise KernelSpecError("lds_bytes_per_workgroup must be non-negative")
    if lds_bytes_per_workgroup > arch.lds_per_cu:
        raise KernelSpecError(
            f"kernel requests {lds_bytes_per_workgroup} B of LDS/workgroup; "
            f"CU has {arch.lds_per_cu}"
        )

    arch_limit = arch.max_waves_per_simd
    vgpr_limit = arch.vgprs_per_simd // vgprs_per_workitem
    # Waves limited by how many whole waves' worth of SGPRs fit in the
    # per-SIMD scalar budget (per-wave file size x architectural max waves).
    sgpr_budget = arch.sgprs_per_wave_file * arch.max_waves_per_simd
    sgpr_limit = sgpr_budget // sgprs_per_wave

    waves_per_workgroup = math.ceil(workgroup_size / arch.wavefront_width)
    if lds_bytes_per_workgroup > 0:
        groups_by_lds = arch.lds_per_cu // lds_bytes_per_workgroup
    else:
        groups_by_lds = arch.max_workgroups_per_cu
    groups_per_cu = min(groups_by_lds, arch.max_workgroups_per_cu)
    # Convert per-CU workgroup residency to waves per SIMD.
    lds_limit = max(0, (groups_by_lds * waves_per_workgroup) // arch.simds_per_cu) \
        if lds_bytes_per_workgroup > 0 else arch_limit
    slot_limit = max(1, (groups_per_cu * waves_per_workgroup) // arch.simds_per_cu)

    limits = OccupancyLimits(
        architectural=arch_limit,
        vgpr=max(0, vgpr_limit),
        sgpr=max(0, sgpr_limit),
        lds=max(0, lds_limit),
        workgroup_slots=slot_limit,
    )
    waves = min(limits.architectural, limits.vgpr, limits.sgpr,
                limits.lds, limits.workgroup_slots)
    if waves < 1:
        raise KernelSpecError(
            "kernel cannot fit a single wavefront per SIMD: "
            f"limits={limits}"
        )
    return OccupancyResult(waves_per_simd=waves, limits=limits)
