"""GPU hardware description for the AMD Radeon HD7970 (Southern Islands).

This subpackage models the *static* hardware facts Harmonia relies on:

* :mod:`repro.gpu.dvfs` — the GPU DVFS table (paper Table 1) and the
  voltage/frequency curve used for power scaling,
* :mod:`repro.gpu.architecture` — the GCN machine description (CUs, SIMDs,
  register files, caches, memory controllers),
* :mod:`repro.gpu.config` — the three hardware tunables and the ~450-point
  configuration space of Section 3.1,
* :mod:`repro.gpu.occupancy` — the kernel-occupancy calculator of
  Sections 2.2/3.5,
* :mod:`repro.gpu.clocks` — the L2-to-memory-controller clock-domain
  crossing model of Section 3.5.
"""

from repro.gpu.architecture import HD7970, GpuArchitecture
from repro.gpu.config import ComputeConfig, ConfigSpace, HardwareConfig, MemoryConfig
from repro.gpu.dvfs import DvfsState, GpuDvfsTable, HD7970_DVFS_TABLE
from repro.gpu.occupancy import OccupancyLimits, OccupancyResult, compute_occupancy
from repro.gpu.clocks import ClockDomainModel

__all__ = [
    "HD7970",
    "GpuArchitecture",
    "ComputeConfig",
    "ConfigSpace",
    "HardwareConfig",
    "MemoryConfig",
    "DvfsState",
    "GpuDvfsTable",
    "HD7970_DVFS_TABLE",
    "OccupancyLimits",
    "OccupancyResult",
    "compute_occupancy",
    "ClockDomainModel",
]
