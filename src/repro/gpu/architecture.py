"""Machine description of the AMD Radeon HD7970 (GCN, Southern Islands).

All figures are taken directly from Section 2.2 of the paper and the GCN
architecture disclosure [Mantor & Houston, AFDS 2011]:

* up to 32 compute units (CUs), 4 SIMD vector units per CU,
* 16 processing elements (ALUs) per SIMD vector unit,
* wavefront width 64 (one wavefront issues over 4 cycles on a 16-wide SIMD),
* 256 vector registers (VGPRs) per SIMD lane, 512 physical per SIMD with a
  per-wave addressing limit of 256; the paper normalizes VGPR usage to 256,
* scalar register file normalized to 102 usable SGPRs per wave,
* 64 KB local data share (LDS) per CU, 16 KB L1 data cache per CU,
* a shared 768 KB L2 cache,
* six 64-bit dual-channel GDDR5 memory controllers, 264 GB/s peak,
* a maximum of 10 wavefronts in flight per SIMD (40 per CU).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.gpu.dvfs import GpuDvfsTable, HD7970_DVFS_TABLE
from repro.units import GB_PER_S, KB, MHZ


@dataclass(frozen=True)
class GpuArchitecture:
    """Static architectural parameters of a GCN-class discrete GPU."""

    name: str
    #: maximum number of compute units on the die
    max_compute_units: int
    #: granularity at which CUs can be activated / power-gated
    cu_step: int
    #: minimum number of CUs that can be left active
    min_compute_units: int
    #: SIMD vector units per CU
    simds_per_cu: int
    #: processing elements (lanes) per SIMD
    lanes_per_simd: int
    #: workitems per wavefront
    wavefront_width: int
    #: maximum wavefronts concurrently resident per SIMD
    max_waves_per_simd: int
    #: vector registers addressable per workitem (normalization base, Table 2)
    vgprs_per_simd: int
    #: scalar registers per wave (normalization base, Table 2)
    sgprs_per_wave_file: int
    #: local data share per CU, bytes
    lds_per_cu: int
    #: maximum workgroups concurrently resident per CU
    max_workgroups_per_cu: int
    #: L1 data cache per CU, bytes
    l1_per_cu: int
    #: shared L2 cache, bytes
    l2_size: int
    #: L2 cache line size, bytes
    l2_line_size: int
    #: number of memory controllers
    memory_controllers: int
    #: memory bus width per controller, bits
    bus_width_bits_per_mc: int
    #: GDDR5 transfer rate multiplier (quad data rate on the command clock)
    gddr5_transfer_rate: int
    #: supported memory bus frequencies, Hz (ascending)
    memory_bus_frequencies: tuple
    #: compute frequency grid, Hz (ascending)
    compute_frequencies: tuple
    #: the GPU DVFS voltage/frequency table
    dvfs_table: GpuDvfsTable

    def __post_init__(self) -> None:
        if self.min_compute_units < 1 or self.min_compute_units > self.max_compute_units:
            raise ConfigurationError("min_compute_units out of range")
        if (self.max_compute_units - self.min_compute_units) % self.cu_step != 0:
            raise ConfigurationError("CU range must be a whole number of cu_step increments")
        if list(self.memory_bus_frequencies) != sorted(self.memory_bus_frequencies):
            raise ConfigurationError("memory bus frequencies must be ascending")
        if list(self.compute_frequencies) != sorted(self.compute_frequencies):
            raise ConfigurationError("compute frequencies must be ascending")

    # --- derived quantities ------------------------------------------------

    @property
    def lanes_per_cu(self) -> int:
        """Total vector lanes (ALUs) in one CU."""
        return self.simds_per_cu * self.lanes_per_simd

    @property
    def cycles_per_valu_inst(self) -> int:
        """SIMD-occupancy cycles of one vector ALU instruction.

        A 64-wide wavefront issues over a 16-lane SIMD in 4 cycles.
        """
        return self.wavefront_width // self.lanes_per_simd

    @property
    def max_waves_per_cu(self) -> int:
        """Maximum wavefronts concurrently resident in one CU."""
        return self.max_waves_per_simd * self.simds_per_cu

    def peak_flops(self, n_cu: int, f_cu: float) -> float:
        """Peak single-precision FMAC ops/s at the given compute config.

        With 32 CUs at 1 GHz this evaluates to 2048 GFLOP/s of issue or
        4096 GFLOPS counting FMAC as two ops, matching Section 2.2.
        """
        return n_cu * self.lanes_per_cu * f_cu

    def bus_width_bytes(self) -> float:
        """Aggregate memory bus width in bytes."""
        return self.memory_controllers * self.bus_width_bits_per_mc / 8.0

    def peak_memory_bandwidth(self, f_mem: float) -> float:
        """Peak DRAM bandwidth (B/s) at memory bus frequency ``f_mem``.

        Implements Equation 2 of the paper::

            Peak_Mem_BW = Mem_Frequency * Bus_Width * #Mem_Channels
                          * GDDR5_Transfer_Rate

        For the HD7970 at 1375 MHz this is 1375e6 * 8B * 6 * 4 = 264 GB/s.
        """
        if f_mem <= 0:
            raise ConfigurationError("memory frequency must be positive")
        per_mc_bytes = self.bus_width_bits_per_mc / 8.0
        return f_mem * per_mc_bytes * self.memory_controllers * self.gddr5_transfer_rate

    def cu_counts(self) -> tuple:
        """All supported active-CU counts, ascending."""
        return tuple(
            range(self.min_compute_units, self.max_compute_units + 1, self.cu_step)
        )


#: A second GCN platform (HD7870 "Pitcairn" class) for portability
#: studies: 20 CUs and four 64-bit GDDR5 controllers (154 GB/s peak).
#: Section 4.3: "We believe principles of hardware balance and coordinated
#: management are portable across platforms" — this smaller sibling lets
#: the repository test that claim end to end.
PITCAIRN = None  # assigned below (needs the class defined first)

#: The paper's test bed (Sections 2.2, 3.1).
HD7970 = GpuArchitecture(
    name="AMD Radeon HD7970",
    max_compute_units=32,
    cu_step=4,
    min_compute_units=4,
    simds_per_cu=4,
    lanes_per_simd=16,
    wavefront_width=64,
    max_waves_per_simd=10,
    vgprs_per_simd=256,
    sgprs_per_wave_file=102,
    lds_per_cu=int(64 * KB),
    max_workgroups_per_cu=16,
    l1_per_cu=int(16 * KB),
    l2_size=int(768 * KB),
    l2_line_size=64,
    memory_controllers=6,
    bus_width_bits_per_mc=64,
    gddr5_transfer_rate=4,
    memory_bus_frequencies=tuple(f * MHZ for f in (475, 625, 775, 925, 1075, 1225, 1375)),
    compute_frequencies=tuple(f * MHZ for f in (300, 400, 500, 600, 700, 800, 900, 1000)),
    dvfs_table=HD7970_DVFS_TABLE,
)


PITCAIRN = GpuArchitecture(
    name="AMD Radeon HD7870 (Pitcairn class)",
    max_compute_units=20,
    cu_step=4,
    min_compute_units=4,
    simds_per_cu=4,
    lanes_per_simd=16,
    wavefront_width=64,
    max_waves_per_simd=10,
    vgprs_per_simd=256,
    sgprs_per_wave_file=102,
    lds_per_cu=int(64 * KB),
    max_workgroups_per_cu=16,
    l1_per_cu=int(16 * KB),
    l2_size=int(512 * KB),
    l2_line_size=64,
    memory_controllers=4,
    bus_width_bits_per_mc=64,
    gddr5_transfer_rate=4,
    memory_bus_frequencies=tuple(
        f * MHZ for f in (475, 620, 765, 910, 1055, 1200)
    ),
    compute_frequencies=tuple(
        f * MHZ for f in (300, 400, 500, 600, 700, 800, 900, 1000)
    ),
    dvfs_table=HD7970_DVFS_TABLE,
)
