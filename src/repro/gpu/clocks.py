"""Clock-domain-crossing model for the L2 <-> memory-controller interface.

Section 3.5 ("Architectural Clock Domains"): the GPU L2 cache runs on the
*compute* clock while the on-chip memory controller runs on the *memory*
clock. Requests that miss in L2 must cross this boundary, so the rate at
which the L2 can deliver misses to the memory controllers is proportional
to the compute frequency. For extremely memory-bound kernels with poor L2
hit rates (e.g. ``DeviceMemory``), lowering the compute clock therefore
throttles the *effective* DRAM bandwidth — these kernels are compute-
frequency sensitive even though they are bandwidth bound (Figure 9).

The model exposes a single quantity: the maximum byte rate the crossing can
sustain at a given compute frequency. The width is calibrated so the
crossing is just wide enough to feed full DRAM bandwidth at the DPM2 clock
(925 MHz), matching the paper's observation that the effect appears "when
compute frequency is low".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError
from repro.gpu.architecture import GpuArchitecture
from repro.units import MHZ


@dataclass(frozen=True)
class ClockDomainModel:
    """Bandwidth limit imposed by the L2 -> MC clock-domain crossing.

    Attributes:
        crossing_bytes_per_cycle: bytes the interconnect moves across the
            boundary per *compute* clock cycle, aggregated over all
            memory-controller ports.
    """

    crossing_bytes_per_cycle: float

    def __post_init__(self) -> None:
        if self.crossing_bytes_per_cycle <= 0:
            raise CalibrationError("crossing width must be positive")

    def crossing_bandwidth(self, f_cu: float) -> float:
        """Maximum L2-miss byte rate (B/s) at compute frequency ``f_cu``."""
        if f_cu <= 0:
            raise CalibrationError("compute frequency must be positive")
        return self.crossing_bytes_per_cycle * f_cu

    @classmethod
    def calibrated_for(cls, arch: GpuArchitecture,
                       saturating_f_cu: float = 925 * MHZ) -> "ClockDomainModel":
        """Build a crossing just wide enough to feed peak DRAM bandwidth
        when the compute clock is at ``saturating_f_cu``.

        Below that clock the crossing (not the DRAM) is the bandwidth
        limiter for pure-miss traffic; above it the crossing has headroom.
        """
        peak_bw = arch.peak_memory_bandwidth(max(arch.memory_bus_frequencies))
        return cls(crossing_bytes_per_cycle=peak_bw / saturating_f_cu)
