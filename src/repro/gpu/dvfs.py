"""GPU DVFS states and the voltage/frequency curve.

Paper Table 1 gives three named DPM states for the HD7970::

    DPM0   300 MHz   0.85 V
    DPM1   500 MHz   0.95 V
    DPM2   925 MHz   1.17 V

plus a boost state of 1 GHz at 1.19 V (Section 2.3). Harmonia, however,
tunes compute frequency over the full 300 MHz..1 GHz range in 100 MHz steps
(Section 3.1), with "voltage also scaled as noted in Table 1" (Section 6).
We therefore expose both the discrete DPM table and a piecewise-linear
voltage curve interpolated through the four published (f, V) points, which
is what the power model uses for arbitrary frequencies on the step grid.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import GHZ, MHZ


@dataclass(frozen=True)
class DvfsState:
    """One named DVFS operating point.

    Attributes:
        name: the vendor state name (``DPM0`` .. ``DPM2`` or ``BOOST``).
        frequency: core frequency in Hz.
        voltage: supply voltage in volts.
    """

    name: str
    frequency: float
    voltage: float

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ConfigurationError(f"DVFS state {self.name!r} has non-positive frequency")
        if self.voltage <= 0:
            raise ConfigurationError(f"DVFS state {self.name!r} has non-positive voltage")


@dataclass(frozen=True)
class GpuDvfsTable:
    """The set of DVFS states for a GPU, with voltage interpolation.

    The table is ordered by ascending frequency. :meth:`voltage_at`
    interpolates linearly between published points and clamps at the ends,
    mirroring how a real voltage plane is programmed from a fused V/f curve.
    """

    states: Tuple[DvfsState, ...]

    def __post_init__(self) -> None:
        if len(self.states) < 2:
            raise ConfigurationError("a DVFS table needs at least two states")
        freqs = [s.frequency for s in self.states]
        if freqs != sorted(freqs):
            raise ConfigurationError("DVFS states must be ordered by ascending frequency")
        if len(set(freqs)) != len(freqs):
            raise ConfigurationError("DVFS states must have distinct frequencies")

    @property
    def min_frequency(self) -> float:
        """Lowest frequency in the table, in Hz."""
        return self.states[0].frequency

    @property
    def max_frequency(self) -> float:
        """Highest frequency in the table (the boost state), in Hz."""
        return self.states[-1].frequency

    def state_named(self, name: str) -> DvfsState:
        """Return the state with the given name.

        Raises:
            ConfigurationError: if no state has that name.
        """
        for state in self.states:
            if state.name == name:
                return state
        raise ConfigurationError(f"no DVFS state named {name!r}")

    def voltage_at(self, frequency: float) -> float:
        """Supply voltage (V) required to run at ``frequency`` (Hz).

        Linear interpolation between published points; clamped to the end
        voltages outside the table range (a real part cannot run outside
        its fused curve, but the power model should stay total).
        """
        if frequency <= 0:
            raise ConfigurationError("frequency must be positive")
        freqs = [s.frequency for s in self.states]
        volts = [s.voltage for s in self.states]
        if frequency <= freqs[0]:
            return volts[0]
        if frequency >= freqs[-1]:
            return volts[-1]
        idx = bisect.bisect_right(freqs, frequency)
        f_lo, f_hi = freqs[idx - 1], freqs[idx]
        v_lo, v_hi = volts[idx - 1], volts[idx]
        frac = (frequency - f_lo) / (f_hi - f_lo)
        return v_lo + frac * (v_hi - v_lo)

    def voltage_at_many(self, frequencies: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`voltage_at` over an array of frequencies (Hz).

        The arithmetic mirrors the scalar path operation for operation so
        batched power evaluation agrees with per-launch evaluation.
        """
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if np.any(frequencies <= 0):
            raise ConfigurationError("frequency must be positive")
        freqs = np.array([s.frequency for s in self.states])
        volts = np.array([s.voltage for s in self.states])
        idx = np.clip(np.searchsorted(freqs, frequencies, side="right"),
                      1, len(freqs) - 1)
        f_lo, f_hi = freqs[idx - 1], freqs[idx]
        v_lo, v_hi = volts[idx - 1], volts[idx]
        frac = (frequencies - f_lo) / (f_hi - f_lo)
        voltage = v_lo + frac * (v_hi - v_lo)
        voltage = np.where(frequencies <= freqs[0], volts[0], voltage)
        return np.where(frequencies >= freqs[-1], volts[-1], voltage)


#: Paper Table 1 plus the Section 2.3 boost state.
HD7970_DVFS_TABLE = GpuDvfsTable(
    states=(
        DvfsState("DPM0", 300 * MHZ, 0.85),
        DvfsState("DPM1", 500 * MHZ, 0.95),
        DvfsState("DPM2", 925 * MHZ, 1.17),
        DvfsState("BOOST", 1 * GHZ, 1.19),
    )
)
