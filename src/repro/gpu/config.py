"""Hardware tunables and the Section 3.1 configuration space.

The paper defines:

* a **compute configuration** — (number of active CUs, CU frequency),
* a **memory configuration** — the memory bus frequency (equivalently the
  peak bandwidth it delivers),
* a **hardware configuration** — one of each, ~450 combinations total
  (8 CU counts x 8 compute frequencies x 7 memory frequencies = 448).

Each hardware configuration delivers a specific platform ops/byte: peak
compute throughput divided by peak memory bandwidth. Balance (Section 3.2)
is about matching that to the application's demanded ops/byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.gpu.architecture import GpuArchitecture
from repro.units import hz_to_mhz


@dataclass(frozen=True, order=True)
class ComputeConfig:
    """A compute configuration: active CU count and CU frequency (Hz)."""

    n_cu: int
    f_cu: float

    def describe(self) -> str:
        """Human-readable form, e.g. ``32CU@925MHz``."""
        return f"{self.n_cu}CU@{hz_to_mhz(self.f_cu):.0f}MHz"


@dataclass(frozen=True, order=True)
class MemoryConfig:
    """A memory configuration: memory bus frequency (Hz)."""

    f_mem: float

    def describe(self) -> str:
        """Human-readable form, e.g. ``mem@1375MHz``."""
        return f"mem@{hz_to_mhz(self.f_mem):.0f}MHz"


@dataclass(frozen=True, order=True)
class HardwareConfig:
    """A full hardware configuration (compute + memory) on a platform grid."""

    n_cu: int
    f_cu: float
    f_mem: float

    def __hash__(self) -> int:
        # Configs key per-launch dict lookups (grid indices, residency
        # tables, phase memories); the value is computed once per frozen
        # instance. Numeric-field hashes are process-stable, so — unlike
        # a string-keyed spec — the cached value is safe to pickle. Same
        # tuple as the generated implementation, so hash values and dict
        # iteration orders are unchanged.
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash((self.n_cu, self.f_cu, self.f_mem))
            object.__setattr__(self, "_cached_hash", cached)
        return cached

    @property
    def compute(self) -> ComputeConfig:
        """The compute-configuration component."""
        return ComputeConfig(self.n_cu, self.f_cu)

    @property
    def memory(self) -> MemoryConfig:
        """The memory-configuration component."""
        return MemoryConfig(self.f_mem)

    def describe(self) -> str:
        """Human-readable form, e.g. ``32CU@925MHz/mem@1375MHz``."""
        return f"{self.compute.describe()}/{self.memory.describe()}"

    def replace(self, n_cu: Optional[int] = None, f_cu: Optional[float] = None,
                f_mem: Optional[float] = None) -> "HardwareConfig":
        """Return a copy with the given tunables replaced."""
        return HardwareConfig(
            n_cu=self.n_cu if n_cu is None else n_cu,
            f_cu=self.f_cu if f_cu is None else f_cu,
            f_mem=self.f_mem if f_mem is None else f_mem,
        )


class ConfigSpace:
    """The discrete configuration grid of one GPU platform.

    Provides validation, enumeration, neighbour stepping (used by the FG
    tuner, which moves one grid step at a time: CU step = 4, compute
    frequency step = 100 MHz, memory step = 150 MHz / 30 GB/s), and the
    platform ops/byte of a configuration.
    """

    def __init__(self, arch: GpuArchitecture):
        self._arch = arch
        self._cu_counts: Tuple[int, ...] = arch.cu_counts()
        self._f_cu_grid: Tuple[float, ...] = tuple(arch.compute_frequencies)
        self._f_mem_grid: Tuple[float, ...] = tuple(arch.memory_bus_frequencies)
        # Lazily built accept-set for validate()'s hot path.
        self._valid: Optional[frozenset] = None
        # Lazily materialized grid for __iter__: callers enumerate the
        # space thousands of times per run (batch index maps, grid
        # sweeps, samplers), and yielding fresh HardwareConfig objects
        # made every pass re-hash every config. One shared tuple means
        # one object — and one cached hash — per grid point.
        self._configs: Optional[Tuple[HardwareConfig, ...]] = None

    # --- basic accessors ----------------------------------------------------

    @property
    def arch(self) -> GpuArchitecture:
        """The underlying architecture description."""
        return self._arch

    @property
    def cu_counts(self) -> Tuple[int, ...]:
        """Supported active-CU counts, ascending."""
        return self._cu_counts

    @property
    def compute_frequencies(self) -> Tuple[float, ...]:
        """Supported compute frequencies (Hz), ascending."""
        return self._f_cu_grid

    @property
    def memory_frequencies(self) -> Tuple[float, ...]:
        """Supported memory bus frequencies (Hz), ascending."""
        return self._f_mem_grid

    def __len__(self) -> int:
        return len(self._cu_counts) * len(self._f_cu_grid) * len(self._f_mem_grid)

    def __iter__(self) -> Iterator[HardwareConfig]:
        return iter(self._materialized())

    def _materialized(self) -> Tuple[HardwareConfig, ...]:
        configs = self._configs
        if configs is None:
            # Benign race under threads: both sides build identical
            # tuples and the last assignment wins.
            configs = tuple(
                HardwareConfig(n_cu, f_cu, f_mem)
                for n_cu in self._cu_counts
                for f_cu in self._f_cu_grid
                for f_mem in self._f_mem_grid
            )
            self._configs = configs
        return configs

    def __contains__(self, config: HardwareConfig) -> bool:
        return (
            config.n_cu in self._cu_counts
            and config.f_cu in self._f_cu_grid
            and config.f_mem in self._f_mem_grid
        )

    def index_of(self, config: HardwareConfig) -> int:
        """Position of ``config`` in grid iteration order.

        The inverse of enumeration: ``tuple(space)[space.index_of(c)] == c``.
        Used as the launch-keyed noise model's per-configuration draw
        position, so it must be stable for a given grid.

        Raises:
            ConfigurationError: if ``config`` is off the grid.
        """
        self.validate(config)
        i_cu = self._cu_counts.index(config.n_cu)
        i_f_cu = self._f_cu_grid.index(config.f_cu)
        i_f_mem = self._f_mem_grid.index(config.f_mem)
        return (
            (i_cu * len(self._f_cu_grid) + i_f_cu) * len(self._f_mem_grid)
            + i_f_mem
        )

    # --- named corner configurations ----------------------------------------

    def min_config(self) -> HardwareConfig:
        """The minimum configuration the paper normalizes to.

        4 CUs, 300 MHz compute, 475 MHz memory bus (90 GB/s).
        """
        return HardwareConfig(self._cu_counts[0], self._f_cu_grid[0], self._f_mem_grid[0])

    def max_config(self) -> HardwareConfig:
        """The maximum (baseline boost) configuration."""
        return HardwareConfig(self._cu_counts[-1], self._f_cu_grid[-1], self._f_mem_grid[-1])

    def validate(self, config: HardwareConfig) -> HardwareConfig:
        """Return ``config`` if it lies on the grid, else raise.

        Raises:
            ConfigurationError: with a message naming the offending tunable.
        """
        # Accept-set fast path: one cached-hash set probe instead of three
        # linear tuple scans. The per-tunable checks below are kept as the
        # reject path for their precise error messages.
        if self._valid is None:
            self._valid = frozenset(self._materialized())
        if config in self._valid:
            return config
        if config.n_cu not in self._cu_counts:
            raise ConfigurationError(
                f"unsupported CU count {config.n_cu}; grid is {self._cu_counts}"
            )
        if config.f_cu not in self._f_cu_grid:
            raise ConfigurationError(
                f"unsupported compute frequency {config.f_cu:.3e} Hz"
            )
        if config.f_mem not in self._f_mem_grid:
            raise ConfigurationError(
                f"unsupported memory frequency {config.f_mem:.3e} Hz"
            )
        return config

    # --- grid stepping --------------------------------------------------------

    @staticmethod
    def _step_on(grid: Tuple, value, delta: int):
        idx = grid.index(value) + delta
        idx = max(0, min(len(grid) - 1, idx))
        return grid[idx]

    def step_cu(self, config: HardwareConfig, delta: int) -> HardwareConfig:
        """Move ``delta`` grid steps in active-CU count (clamped at ends)."""
        self.validate(config)
        return config.replace(n_cu=self._step_on(self._cu_counts, config.n_cu, delta))

    def step_f_cu(self, config: HardwareConfig, delta: int) -> HardwareConfig:
        """Move ``delta`` grid steps in compute frequency (clamped at ends)."""
        self.validate(config)
        return config.replace(f_cu=self._step_on(self._f_cu_grid, config.f_cu, delta))

    def step_f_mem(self, config: HardwareConfig, delta: int) -> HardwareConfig:
        """Move ``delta`` grid steps in memory bus frequency (clamped)."""
        self.validate(config)
        return config.replace(f_mem=self._step_on(self._f_mem_grid, config.f_mem, delta))

    def snap(self, n_cu: int, f_cu: float, f_mem: float) -> HardwareConfig:
        """Snap arbitrary tunable values to the nearest grid point."""
        best_cu = min(self._cu_counts, key=lambda c: abs(c - n_cu))
        best_f_cu = min(self._f_cu_grid, key=lambda f: abs(f - f_cu))
        best_f_mem = min(self._f_mem_grid, key=lambda f: abs(f - f_mem))
        return HardwareConfig(best_cu, best_f_cu, best_f_mem)

    def fraction_to_grid(self, frac_cu: float, frac_f_cu: float,
                         frac_f_mem: float) -> HardwareConfig:
        """Map per-tunable fractions in [0, 1] to a grid configuration.

        A fraction of 0 maps to the minimum grid value, 1 to the maximum.
        Used by the coarse-grain tuner, whose sensitivity bins translate to
        fractions of each tunable's range.
        """
        def pick(grid: Tuple, frac: float):
            frac = max(0.0, min(1.0, frac))
            idx = round(frac * (len(grid) - 1))
            return grid[idx]

        return HardwareConfig(
            n_cu=pick(self._cu_counts, frac_cu),
            f_cu=pick(self._f_cu_grid, frac_f_cu),
            f_mem=pick(self._f_mem_grid, frac_f_mem),
        )

    # --- platform balance --------------------------------------------------------

    def platform_ops_per_byte(self, config: HardwareConfig) -> float:
        """Peak compute throughput / peak memory bandwidth for ``config``.

        This is the "hardware ops/byte" on the x-axes of Figures 3-5.
        """
        flops = self._arch.peak_flops(config.n_cu, config.f_cu)
        bandwidth = self._arch.peak_memory_bandwidth(config.f_mem)
        return flops / bandwidth
