"""Unit tests for :mod:`repro.core.fine` (the FG block, Section 5.2).

These drive the tuner with synthetic feedback so every branch of the
control law is exercised deterministically.
"""

import pytest

from repro.core.fine import CG_VALIDATION, FineGrainState, FineGrainTuner
from repro.gpu.architecture import HD7970
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.sensitivity.binning import Bin
from repro.units import GHZ, MHZ

SPACE = ConfigSpace(HD7970)
TOP = SPACE.max_config()
ALL_MED = {"n_cu": Bin.MED, "f_cu": Bin.MED, "f_mem": Bin.MED}


def make_tuner(**kwargs):
    defaults = dict(space=SPACE, max_dithering=8, tolerance=0.01)
    defaults.update(kwargs)
    return FineGrainTuner(**defaults)


class TestDescent:
    def test_first_move_is_memory_down(self):
        # Probe order prefers the memory bus, then CUs, then frequency.
        tuner = make_tuner()
        state = FineGrainState()
        proposal = tuner.propose(state, TOP, 100.0, ALL_MED)
        assert proposal.f_mem == pytest.approx(1225 * MHZ)
        assert proposal.n_cu == 32

    def test_bin_priority_orders_probes(self):
        tuner = make_tuner()
        state = FineGrainState()
        bins = {"n_cu": Bin.LOW, "f_cu": Bin.HIGH, "f_mem": Bin.HIGH}
        proposal = tuner.propose(state, TOP, 100.0, bins)
        assert proposal.n_cu == 28  # the LOW-bin tunable moves first

    def test_flat_feedback_keeps_descending(self):
        tuner = make_tuner()
        state = FineGrainState()
        config = TOP
        for _ in range(6):
            config = tuner.propose(state, config, 100.0, ALL_MED)
        assert config.f_mem == pytest.approx(475 * MHZ)

    def test_degradation_reverts_and_tries_up(self):
        tuner = make_tuner()
        state = FineGrainState()
        first = tuner.propose(state, TOP, 100.0, ALL_MED)
        assert first.f_mem == pytest.approx(1225 * MHZ)
        # The step hurt: revert to the pre-step config.
        reverted = tuner.propose(state, first, 80.0, ALL_MED)
        assert reverted == TOP
        assert state.dithering == 1

    def test_ratchet_guard_anchors_on_best(self):
        # Sub-tolerance losses must not accumulate across a long descent:
        # each grid step below TOP costs 0.6% (under the 1% tolerance),
        # but the tuner must stop within ~1% of the best feedback seen.
        tuner = make_tuner(tolerance=0.01)
        state = FineGrainState()

        def environment(config):
            steps = ((1375 * MHZ - config.f_mem) / (150 * MHZ)
                     + (32 - config.n_cu) / 4
                     + (1 * GHZ - config.f_cu) / (100 * MHZ))
            return 100.0 * (0.994 ** steps)

        config = TOP
        for _ in range(20):
            config = tuner.propose(state, config, environment(config), ALL_MED)
        assert environment(config) > 98.5


class TestClimb:
    def test_upward_retry_after_down_fails(self):
        tuner = make_tuner()
        state = FineGrainState()
        start = TOP.replace(f_mem=925 * MHZ)
        down = tuner.propose(state, start, 100.0, ALL_MED)
        assert down.f_mem == pytest.approx(775 * MHZ)
        reverted = tuner.propose(state, down, 50.0, ALL_MED)
        assert reverted == start
        up = tuner.propose(state, reverted, 100.0, ALL_MED)
        assert up.f_mem == pytest.approx(1075 * MHZ)

    def test_climb_continues_while_improving(self):
        tuner = make_tuner()
        state = FineGrainState()
        start = TOP.replace(f_mem=925 * MHZ)
        config = tuner.propose(state, start, 100.0, ALL_MED)     # down
        config = tuner.propose(state, config, 50.0, ALL_MED)     # revert
        config = tuner.propose(state, config, 100.0, ALL_MED)    # up probe
        feedback = 100.0
        while config.f_mem < 1375 * MHZ:
            feedback *= 1.1
            nxt = tuner.propose(state, config, feedback, ALL_MED)
            if nxt.f_mem <= config.f_mem:
                break
            config = nxt
        assert config.f_mem == pytest.approx(1375 * MHZ)

    def test_unprofitable_up_move_reverts_and_freezes(self):
        tuner = make_tuner()
        state = FineGrainState()
        start = TOP.replace(f_mem=925 * MHZ)
        config = tuner.propose(state, start, 100.0, ALL_MED)   # down probe
        config = tuner.propose(state, config, 50.0, ALL_MED)   # revert
        config = tuner.propose(state, config, 100.0, ALL_MED)  # up probe
        # The up move bought nothing: revert it and freeze the tunable.
        reverted = tuner.propose(state, config, 100.0, ALL_MED)
        assert reverted.f_mem == pytest.approx(925 * MHZ)
        assert "f_mem" in state.frozen

    def test_successful_climb_unfreezes_other_tunables(self):
        # The max(compute, memory) ridge: climbing one tunable reopens
        # previously frozen ones.
        tuner = make_tuner()
        state = FineGrainState()
        state.frozen = {"n_cu", "f_cu"}
        start = TOP.replace(f_mem=925 * MHZ)
        config = tuner.propose(state, start, 100.0, ALL_MED)   # f_mem down
        config = tuner.propose(state, config, 50.0, ALL_MED)   # revert
        config = tuner.propose(state, config, 100.0, ALL_MED)  # f_mem up
        tuner.propose(state, config, 120.0, ALL_MED)           # improved!
        assert "n_cu" not in state.frozen
        assert "f_cu" not in state.frozen


class TestConvergence:
    def test_dithering_bound_converges_to_best(self):
        tuner = make_tuner(max_dithering=2)
        state = FineGrainState()
        config = TOP
        feedback = 100.0
        # Alternate: every move degrades -> revert, dither++, until bound.
        for _ in range(12):
            proposal = tuner.propose(state, config, feedback, ALL_MED)
            if state.converged:
                break
            if proposal != config:
                config, feedback = proposal, 50.0
            else:
                feedback = 100.0
        assert state.converged
        # Converged: all further proposals are the best state.
        held = tuner.propose(state, config, 1.0, ALL_MED)
        assert held == state.best[1]

    def test_everything_frozen_settles(self):
        tuner = make_tuner()
        state = FineGrainState()
        state.frozen = {"n_cu", "f_cu", "f_mem"}
        assert tuner.propose(state, TOP, 100.0, ALL_MED) == TOP

    def test_minimum_config_settles_after_starvation_probes(self):
        # At the grid minimum each tunable gets one upward starvation
        # probe; with flat feedback every probe reverts, the tunables
        # freeze, and the tuner settles back at the minimum.
        tuner = make_tuner()
        state = FineGrainState()
        config = SPACE.min_config()
        for _ in range(10):
            config = tuner.propose(state, config, 100.0, ALL_MED)
        assert config == SPACE.min_config()
        settled = tuner.propose(state, config, 100.0, ALL_MED)
        assert settled == SPACE.min_config()

    def test_starvation_probe_recovers_from_minimum(self):
        # A tunable pinned at minimum that the kernel actually needs must
        # climb back up (feedback improves with the up-probe).
        tuner = make_tuner()
        state = FineGrainState()
        config = TOP.replace(f_mem=475 * MHZ)

        def env(c):
            return 100.0 * min(1.0, c.f_mem / (925 * MHZ))

        for _ in range(20):
            config = tuner.propose(state, config, env(config), ALL_MED)
        assert config.f_mem >= 925 * MHZ

    def test_restart_clears_state(self):
        state = FineGrainState()
        state.frozen = {"n_cu"}
        state.dithering = 5
        state.converged = True
        state.restart()
        assert not state.frozen
        assert state.dithering == 0
        assert not state.converged
        assert state.best is None


class TestBestTracking:
    def test_best_prefers_cheaper_config_within_tolerance(self):
        tuner = make_tuner(tolerance=0.01)
        state = FineGrainState()
        expensive = TOP
        cheap = TOP.replace(n_cu=16, f_mem=475 * MHZ)
        tuner.propose(state, expensive, 100.0, ALL_MED)
        state.inflight = None  # judge only the best-tracking
        tuner.propose(state, cheap, 99.5, ALL_MED)
        assert state.best[1] == cheap

    def test_best_tracks_true_improvement(self):
        tuner = make_tuner()
        state = FineGrainState()
        tuner.propose(state, TOP, 100.0, ALL_MED)
        state.inflight = None
        better = TOP.replace(n_cu=16)
        tuner.propose(state, better, 150.0, ALL_MED)
        assert state.best[1] == better
        assert state.best[0] == pytest.approx(150.0)


class TestCgValidation:
    def test_bad_cg_jump_is_reverted(self):
        tuner = make_tuner()
        state = FineGrainState()
        jumped = TOP.replace(n_cu=24, f_cu=900 * MHZ)
        state.restart()
        state.prime_cg_validation(before_config=TOP, before_feedback=100.0)
        # Post-jump feedback collapsed: revert to the pre-jump config.
        result = tuner.propose(state, jumped, 68.0, ALL_MED)
        assert result == TOP
        assert state.dithering == 1

    def test_good_cg_jump_is_kept(self):
        tuner = make_tuner()
        state = FineGrainState()
        jumped = TOP.replace(f_mem=475 * MHZ)
        state.prime_cg_validation(before_config=TOP, before_feedback=100.0)
        result = tuner.propose(state, jumped, 100.0, ALL_MED)
        # Validation passed: the jump is held (not reverted); normal FG
        # moves begin on the next engagement.
        assert result == jumped
        assert state.inflight is None

    def test_validation_constant_name(self):
        assert CG_VALIDATION == "__cg__"


class TestValidationErrors:
    def test_rejects_bad_dithering(self):
        from repro.errors import PolicyError
        with pytest.raises(PolicyError):
            make_tuner(max_dithering=0)

    def test_rejects_negative_tolerance(self):
        from repro.errors import PolicyError
        with pytest.raises(PolicyError):
            make_tuner(tolerance=-0.1)

    def test_rejects_off_grid_config(self):
        from repro.errors import ConfigurationError
        tuner = make_tuner()
        with pytest.raises(ConfigurationError):
            tuner.propose(FineGrainState(),
                          HardwareConfig(5, 1 * GHZ, 1375 * MHZ),
                          100.0, ALL_MED)
