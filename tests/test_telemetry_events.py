"""Event serialization round-trips, the JSONL sink, and trace replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import TelemetryError
from repro.gpu.config import HardwareConfig
from repro.telemetry.events import (
    EVENT_TYPES,
    SCHEMA_MANIFEST,
    SCHEMA_VERSION,
    CGJump,
    ConfigApplied,
    FGConverged,
    FGRevert,
    FGStep,
    KernelLaunch,
    PhaseChange,
    config_from_record,
    config_to_record,
    event_from_record,
)
from repro.telemetry.export import (
    InMemorySink,
    JsonlSink,
    ReplayTrace,
    export_trace,
    load_events,
    replay_trace,
)
from repro.units import MHZ

CFG_A = HardwareConfig(n_cu=32, f_cu=1000 * MHZ, f_mem=1375 * MHZ)
CFG_B = HardwareConfig(n_cu=24, f_cu=900 * MHZ, f_mem=925 * MHZ)

#: One representative instance of every event type in the schema.
SAMPLE_EVENTS = (
    KernelLaunch(kernel="App.K", iteration=3, time_s=1.5e-3,
                 config=CFG_A, power_w=180.0, energy_j=0.27),
    PhaseChange(kernel="App.K", iteration=0, time_s=1.0e-3,
                identity=(0.5, 1.25, 0.0), phase_index=1),
    CGJump(kernel="App.K", iteration=1, time_s=1.1e-3,
           old_config=CFG_A, new_config=CFG_B,
           compute_bin="low", bandwidth_bin="high",
           compute_sensitivity=0.12, bandwidth_sensitivity=0.87),
    FGStep(kernel="App.K", iteration=2, time_s=1.2e-3,
           tunable="f_mem", direction=-1,
           old_config=CFG_A, new_config=CFG_B,
           compute_bin="med", bandwidth_bin="med"),
    FGRevert(kernel="App.K", iteration=4, time_s=1.3e-3,
             tunable="n_cu", old_config=CFG_B, new_config=CFG_A),
    FGConverged(kernel="App.K", iteration=5, time_s=1.4e-3, config=CFG_B),
    ConfigApplied(kernel="App.K", iteration=6, time_s=1.5e-3,
                  old_config=CFG_A, new_config=CFG_B, source="cg"),
)


class TestConfigSerialization:
    def test_round_trip(self):
        assert config_from_record(config_to_record(CFG_A)) == CFG_A

    def test_record_keys(self):
        assert set(config_to_record(CFG_B)) == {"n_cu", "f_cu", "f_mem"}


class TestEventRoundTrip:
    @pytest.mark.parametrize(
        "event", SAMPLE_EVENTS, ids=lambda e: e.event_type)
    def test_round_trip(self, event):
        record = event.to_record()
        assert record["v"] == SCHEMA_VERSION
        assert record["type"] == type(event).__name__
        assert event_from_record(record) == event

    @pytest.mark.parametrize(
        "event", SAMPLE_EVENTS, ids=lambda e: e.event_type)
    def test_record_is_json_compatible(self, event):
        rehydrated = json.loads(json.dumps(event.to_record()))
        assert event_from_record(rehydrated) == event

    def test_wrong_version_rejected(self):
        record = SAMPLE_EVENTS[0].to_record()
        record["v"] = SCHEMA_VERSION + 1
        with pytest.raises(TelemetryError, match="schema version"):
            event_from_record(record)

    def test_unknown_type_rejected(self):
        record = SAMPLE_EVENTS[0].to_record()
        record["type"] = "MysteryEvent"
        with pytest.raises(TelemetryError, match="unknown telemetry event"):
            event_from_record(record)

    def test_missing_field_rejected(self):
        record = SAMPLE_EVENTS[0].to_record()
        del record["power_w"]
        with pytest.raises(TelemetryError, match="missing field"):
            event_from_record(record)

    def test_identity_tuple_restored_as_tuple(self):
        event = SAMPLE_EVENTS[1]
        restored = event_from_record(json.loads(json.dumps(event.to_record())))
        assert restored.identity == (0.5, 1.25, 0.0)
        assert isinstance(restored.identity, tuple)


class TestSchemaManifest:
    def test_current_version_is_recorded(self):
        assert SCHEMA_VERSION in SCHEMA_MANIFEST

    def test_manifest_matches_event_types(self):
        assert SCHEMA_MANIFEST[SCHEMA_VERSION] == tuple(sorted(EVENT_TYPES))

    def test_samples_cover_every_type(self):
        assert {type(e).__name__ for e in SAMPLE_EVENTS} == set(EVENT_TYPES)


class TestJsonlSink:
    def test_write_and_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for event in SAMPLE_EVENTS:
                sink.write(event)
            assert sink.count == len(SAMPLE_EVENTS)
        assert load_events(path) == list(SAMPLE_EVENTS)

    def test_appends_across_sinks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.write(SAMPLE_EVENTS[0])
        with JsonlSink(path) as sink:
            sink.write(SAMPLE_EVENTS[1])
        assert len(load_events(path)) == 2

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(TelemetryError, match="closed"):
            sink.write(SAMPLE_EVENTS[0])

    def test_malformed_line_raises_with_location(self, tmp_path):
        # Mid-file garbage is corruption (only a *final* truncated line
        # is tolerated as a crashed writer's footprint).
        path = tmp_path / "bad.jsonl"
        first = json.dumps(SAMPLE_EVENTS[0].to_record())
        path.write_text(first + "\nnot json\n" + first + "\n")
        with pytest.raises(TelemetryError, match="bad.jsonl:2"):
            load_events(path)

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for event in SAMPLE_EVENTS:
                sink.write(event)
        with open(path, "a") as handle:
            handle.write('{"v": 1, "type": "KernelLau')  # crashed writer
        assert load_events(path) == list(SAMPLE_EVENTS)

    def test_close_makes_the_file_durable(self, tmp_path):
        # fsync-on-close: every written event is on disk afterwards,
        # readable by an independent open.
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for event in SAMPLE_EVENTS:
            sink.write(event)
        sink.close()
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == len(SAMPLE_EVENTS)


class TestReplay:
    def test_replay_keeps_only_launches(self):
        trace = replay_trace(SAMPLE_EVENTS)
        assert isinstance(trace, ReplayTrace)
        assert len(trace.records) == 1
        record = trace.records[0]
        assert record.kernel_name == "App.K"
        assert record.config == CFG_A
        assert record.power.card == 180.0

    def test_replay_from_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for event in SAMPLE_EVENTS:
                sink.write(event)
        assert replay_trace(str(path)).total_time() == pytest.approx(1.5e-3)

    def test_replay_residency_matches_live_trace(self, context):
        from repro.runtime.simulator import ApplicationRunner

        app = context.application("Graph500")
        runner = ApplicationRunner(context.platform)
        result = runner.run(app, context.harmonia_policy())
        sink = InMemorySink()
        export_trace(result.trace, sink)
        replayed = replay_trace(sink.events)
        assert replayed.f_mem_residency() == result.trace.f_mem_residency()
        assert replayed.f_cu_residency() == result.trace.f_cu_residency()
        assert replayed.cu_residency() == result.trace.cu_residency()
        assert replayed.total_time() == pytest.approx(result.trace.total_time())

    def test_export_trace_counts_launches(self, context):
        from repro.runtime.simulator import ApplicationRunner

        app = context.application("Graph500")
        runner = ApplicationRunner(context.platform)
        result = runner.run(app, context.baseline_policy())
        sink = InMemorySink()
        assert export_trace(result.trace, sink) == app.total_launches()
        assert all(isinstance(e, KernelLaunch) for e in sink.events)
