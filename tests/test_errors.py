"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.ConfigurationError,
        errors.KernelSpecError,
        errors.CalibrationError,
        errors.PolicyError,
        errors.WorkloadError,
        errors.AnalysisError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_single_catch_clause_covers_library(self):
        try:
            raise errors.KernelSpecError("bad kernel")
        except errors.ReproError as caught:
            assert "bad kernel" in str(caught)

    def test_distinct_types_distinguishable(self):
        with pytest.raises(errors.ConfigurationError):
            try:
                raise errors.ConfigurationError("x")
            except errors.AnalysisError:  # pragma: no cover
                pytest.fail("wrong branch")

    def test_library_raises_repro_errors_for_bad_config(self, platform):
        from repro.gpu.config import HardwareConfig
        from repro.workloads.registry import get_kernel
        with pytest.raises(errors.ReproError):
            platform.run_kernel(
                get_kernel("MaxFlops.MaxFlops").base,
                HardwareConfig(7, 1e9, 1375e6),
            )
