"""Unit tests for :mod:`repro.analysis.roofline`."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.roofline import (
    Regime,
    balanced_configurations,
    classify_kernel,
    ridge_point,
    roofline,
)
from repro.errors import AnalysisError
from repro.gpu.architecture import HD7970
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_kernel

SPACE = ConfigSpace(HD7970)
TOP = SPACE.max_config()


class TestRoofline:
    def test_low_intensity_is_bandwidth_limited(self):
        attainable = roofline(HD7970, TOP, intensity=0.5)
        assert attainable == pytest.approx(0.5 * 264e9)

    def test_high_intensity_is_compute_limited(self):
        attainable = roofline(HD7970, TOP, intensity=100.0)
        assert attainable == pytest.approx(HD7970.peak_flops(32, 1 * GHZ))

    def test_ridge_point_at_max_config(self):
        # 2048 Gops/s over 264 GB/s ~ 7.76 ops/byte.
        assert ridge_point(HD7970, TOP) == pytest.approx(2048 / 264, rel=1e-3)

    def test_ridge_matches_config_space_ops_per_byte(self):
        for config in (TOP, SPACE.min_config()):
            assert ridge_point(HD7970, config) == pytest.approx(
                SPACE.platform_ops_per_byte(config)
            )

    def test_roofline_continuous_at_ridge(self):
        ridge = ridge_point(HD7970, TOP)
        below = roofline(HD7970, TOP, ridge * 0.999)
        above = roofline(HD7970, TOP, ridge * 1.001)
        assert below == pytest.approx(above, rel=0.01)

    def test_rejects_bad_intensity(self):
        with pytest.raises(AnalysisError):
            roofline(HD7970, TOP, 0.0)

    @given(intensity=st.floats(min_value=0.01, max_value=1000.0))
    def test_attainable_never_exceeds_ceilings(self, intensity):
        attainable = roofline(HD7970, TOP, intensity)
        assert attainable <= HD7970.peak_flops(32, 1 * GHZ) + 1e-3
        assert attainable <= intensity * 264e9 + 1e-3


class TestClassification:
    def test_maxflops_is_compute_bound(self):
        point = classify_kernel(HD7970, get_kernel("MaxFlops.MaxFlops").base,
                                TOP)
        assert point.regime is Regime.COMPUTE_BOUND
        assert point.surplus_fraction > 0.9  # bandwidth nearly all surplus

    def test_devicememory_is_memory_bound(self):
        point = classify_kernel(
            HD7970, get_kernel("DeviceMemory.DeviceMemory").base, TOP
        )
        assert point.regime is Regime.MEMORY_BOUND

    def test_regime_depends_on_configuration(self):
        # A kernel can flip regimes across the grid (the Figure 3c point).
        spec = get_kernel("LUD.Internal").base
        at_max_bw = classify_kernel(HD7970, spec, TOP)
        at_min_bw = classify_kernel(
            HD7970, spec, TOP.replace(f_mem=475 * MHZ, f_cu=1 * GHZ)
        )
        assert at_max_bw.ridge < at_min_bw.ridge

    def test_surplus_bounded(self):
        for name in ("MaxFlops.MaxFlops", "DeviceMemory.DeviceMemory",
                     "LUD.Internal", "CoMD.AdvanceVelocity"):
            point = classify_kernel(HD7970, get_kernel(name).base, TOP)
            assert 0.0 <= point.surplus_fraction <= 1.0

    def test_bad_band_rejected(self):
        with pytest.raises(AnalysisError):
            classify_kernel(HD7970, get_kernel("MaxFlops.MaxFlops").base,
                            TOP, balance_band=1.0)


class TestBalancedConfigurations:
    def test_returns_requested_count(self):
        ranked = balanced_configurations(
            SPACE, get_kernel("CoMD.AdvanceVelocity").base, top_n=5
        )
        assert len(ranked) == 5

    def test_ranked_by_mismatch(self):
        ranked = balanced_configurations(
            SPACE, get_kernel("CoMD.AdvanceVelocity").base, top_n=10
        )
        mismatches = [m for _, m in ranked]
        assert mismatches == sorted(mismatches)

    def test_memory_hungry_kernel_prefers_low_compute_or_high_bw(self):
        spec = get_kernel("DeviceMemory.DeviceMemory").base
        best, _ = balanced_configurations(SPACE, spec, top_n=1)[0]
        # Matching a low demanded intensity means low compute-to-bandwidth.
        assert SPACE.platform_ops_per_byte(best) < \
            SPACE.platform_ops_per_byte(SPACE.max_config())

    def test_bad_top_n(self):
        with pytest.raises(AnalysisError):
            balanced_configurations(
                SPACE, get_kernel("MaxFlops.MaxFlops").base, top_n=0
            )
