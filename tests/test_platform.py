"""Unit tests for :mod:`repro.platform` (the test-bed facade)."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.config import HardwareConfig
from repro.platform.calibration import default_calibration
from repro.platform.hd7970 import HardwarePlatform, make_hd7970_platform
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_kernel

SPEC = get_kernel("MaxFlops.MaxFlops").base


class TestFacade:
    def test_baseline_is_boost(self, platform):
        # Section 7: baseline always runs at boost for all applications.
        config = platform.baseline_config()
        assert config.n_cu == 32
        assert config.f_cu == pytest.approx(1 * GHZ)
        assert config.f_mem == pytest.approx(1375 * MHZ)

    def test_run_kernel_returns_complete_result(self, platform):
        result = platform.run_kernel(SPEC, platform.baseline_config())
        assert result.kernel_name == SPEC.name
        assert result.time > 0
        assert result.power.card > result.power.gpu
        assert result.energy == pytest.approx(result.power.card * result.time)
        assert 0 < result.occupancy <= 1

    def test_rejects_off_grid_config(self, platform):
        with pytest.raises(ConfigurationError):
            platform.run_kernel(SPEC, HardwareConfig(5, 1 * GHZ, 1375 * MHZ))

    def test_deterministic_without_noise(self, platform):
        a = platform.run_kernel(SPEC, platform.baseline_config())
        b = platform.run_kernel(SPEC, platform.baseline_config())
        assert a.time == b.time

    def test_performance_property(self, platform):
        result = platform.run_kernel(SPEC, platform.baseline_config())
        assert result.performance == pytest.approx(1.0 / result.time)


class TestNoise:
    def test_noise_perturbs_time(self):
        clean = HardwarePlatform()
        noisy = HardwarePlatform(noise_std_fraction=0.02, seed=11)
        a = clean.run_kernel(SPEC, clean.baseline_config())
        b = noisy.run_kernel(SPEC, noisy.baseline_config())
        assert a.time != b.time

    def test_noise_is_launch_keyed(self):
        # Stateless keyed RNG: the same launch always draws the same
        # multiplier; distinct iterations and configs draw fresh ones.
        noisy = HardwarePlatform(noise_std_fraction=0.02, seed=11)
        config = noisy.baseline_config()
        a = noisy.run_kernel(SPEC, config, iteration=0)
        b = noisy.run_kernel(SPEC, config, iteration=0)
        assert a.time == b.time
        c = noisy.run_kernel(SPEC, config, iteration=1)
        assert c.time != a.time
        d = noisy.run_kernel(SPEC, config.replace(n_cu=24), iteration=0)
        assert d.time != a.time

    def test_noise_is_seeded(self):
        a = HardwarePlatform(noise_std_fraction=0.02, seed=11)
        b = HardwarePlatform(noise_std_fraction=0.02, seed=11)
        c = HardwarePlatform(noise_std_fraction=0.02, seed=12)
        t_a = a.run_kernel(SPEC, a.baseline_config()).time
        assert t_a == b.run_kernel(SPEC, b.baseline_config()).time
        assert t_a != c.run_kernel(SPEC, c.baseline_config()).time

    def test_noise_keeps_time_positive(self):
        noisy = HardwarePlatform(noise_std_fraction=0.8, seed=5)
        for iteration in range(50):
            result = noisy.run_kernel(SPEC, noisy.baseline_config(),
                                      iteration=iteration)
            assert result.time > 0
        # At 80% noise some draws must have hit the documented floor and
        # been counted.
        assert noisy.noise_clip_count > 0

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            HardwarePlatform(noise_std_fraction=-0.1)


class TestCalibrationAnchors:
    """Power-magnitude anchors from the paper's figures."""

    def test_figure1_memory_is_major_consumer(self, platform):
        # Figure 1: for a memory-intensive workload, memory is a major
        # share of card power.
        spec = get_kernel("XSBench.CalculateXS").base
        result = platform.run_kernel(spec, platform.baseline_config())
        assert result.power.memory / result.power.card > 0.25

    def test_compute_heavy_is_gpu_dominated(self, platform):
        result = platform.run_kernel(SPEC, platform.baseline_config())
        assert result.power.gpu / result.power.card > 0.6

    def test_other_power_constant(self, platform):
        # Section 6: fan pinned at max RPM -> OtherPwr constant.
        a = platform.run_kernel(SPEC, platform.baseline_config())
        b = platform.run_kernel(
            SPEC, platform.config_space.min_config()
        )
        assert a.power.other == pytest.approx(b.power.other)

    def test_card_power_within_tdp(self, platform):
        # PowerTune caps the board at 250 W.
        for config in (platform.baseline_config(),
                       platform.config_space.min_config()):
            result = platform.run_kernel(SPEC, config)
            assert result.power.card < 250.0

    def test_factory_returns_default_calibration(self):
        platform = make_hd7970_platform()
        assert platform.calibration == default_calibration()
