"""Unit tests for :mod:`repro.sensitivity.predictor` (Tables 3, Sec 4.2-4.3)."""

import pytest

from repro.sensitivity.predictor import (
    BANDWIDTH_FEATURES,
    COMPUTE_FEATURES,
    PAPER_BANDWIDTH_PREDICTOR,
    PAPER_COMPUTE_PREDICTOR,
)


class TestPaperCoefficients:
    """The shipped Table 3 weights, verbatim from the paper."""

    def test_bandwidth_intercept(self):
        assert PAPER_BANDWIDTH_PREDICTOR.model.intercept == pytest.approx(-0.42)

    @pytest.mark.parametrize("feature,value", [
        ("VALUUtilization", 0.003),
        ("WriteUnitStalled", 0.011),
        ("MemUnitBusy", 0.01),
        ("MemUnitStalled", -0.004),
        ("icActivity", 1.003),
        ("NormVGPR", 1.158),
        ("NormSGPR", -0.731),
    ])
    def test_bandwidth_coefficients(self, feature, value):
        assert PAPER_BANDWIDTH_PREDICTOR.model.coefficients[feature] == \
            pytest.approx(value)

    def test_compute_intercept(self):
        assert PAPER_COMPUTE_PREDICTOR.model.intercept == pytest.approx(0.06)

    @pytest.mark.parametrize("feature,value", [
        ("CtoMIntensity", 0.007),
        ("NormVGPR", 0.452),
        ("NormSGPR", 0.024),
    ])
    def test_compute_coefficients(self, feature, value):
        assert PAPER_COMPUTE_PREDICTOR.model.coefficients[feature] == \
            pytest.approx(value)

    def test_paper_correlations(self):
        # Section 4.3: 0.91 compute, 0.96 bandwidth.
        assert PAPER_COMPUTE_PREDICTOR.model.correlation == pytest.approx(0.91)
        assert PAPER_BANDWIDTH_PREDICTOR.model.correlation == pytest.approx(0.96)

    def test_feature_subsets_match_table3(self):
        assert set(BANDWIDTH_FEATURES) == set(
            PAPER_BANDWIDTH_PREDICTOR.model.feature_names
        )
        assert set(COMPUTE_FEATURES) == set(
            PAPER_COMPUTE_PREDICTOR.model.feature_names
        )


class TestPredictionClamping:
    def test_clamped_to_unit_interval(self):
        features = {name: 0.0 for name in BANDWIDTH_FEATURES}
        # Intercept -0.42 alone would be negative.
        assert PAPER_BANDWIDTH_PREDICTOR.predict_features(features) == 0.0

    def test_raw_prediction_unclamped(self):
        features = {name: 0.0 for name in BANDWIDTH_FEATURES}
        model = PAPER_BANDWIDTH_PREDICTOR.model
        assert model.predict(features) == pytest.approx(-0.42)

    def test_saturates_at_one(self):
        features = {name: 0.0 for name in BANDWIDTH_FEATURES}
        features["icActivity"] = 1.0
        features["NormVGPR"] = 1.0
        assert PAPER_BANDWIDTH_PREDICTOR.predict_features(features) == 1.0


class TestRetrainedPipeline:
    """The Section 4 pipeline rerun against the simulated substrate."""

    def test_training_set_covers_all_kernels_and_phases(self, training):
        # 25 kernels plus the distinct phases of phased kernels.
        assert len(training.dataset) >= 25

    def test_bandwidth_correlation_strong(self, training):
        # Paper: 0.96. The refit model must be comparably strong.
        assert training.bandwidth_correlation > 0.90

    def test_compute_correlation_strong(self, training):
        # Paper: 0.91.
        assert training.compute_correlation > 0.75

    def test_prediction_errors_small(self, training):
        # Paper: 3.03% bandwidth, 5.71% compute. Ours should be within a
        # small factor on a different substrate.
        bw_err, comp_err = training.prediction_errors()
        assert bw_err < 0.15
        assert comp_err < 0.15

    def test_predicts_stress_benchmarks_correctly(self, training, platform):
        from repro.workloads.registry import get_kernel
        base = platform.baseline_config()
        maxflops = platform.run_kernel(
            get_kernel("MaxFlops.MaxFlops").base, base
        ).counters
        devmem = platform.run_kernel(
            get_kernel("DeviceMemory.DeviceMemory").base, base
        ).counters
        assert training.bandwidth.predict(maxflops) < 0.3
        assert training.bandwidth.predict(devmem) > 0.7
        assert training.compute.predict(maxflops) > 0.7

    def test_streamcluster_binning_edge(self, training, platform):
        # Section 7.1: Streamcluster's prediction narrowly misses HIGH.
        from repro.workloads.registry import get_kernel
        counters = platform.run_kernel(
            get_kernel("Streamcluster.ComputeCost").base,
            platform.baseline_config(),
        ).counters
        predicted = training.compute.predict(counters)
        assert 0.3 < predicted <= 0.70
