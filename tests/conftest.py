"""Shared fixtures.

Session-scoped fixtures share the expensive pieces (the trained predictors
and the four-policy evaluation matrix) across the whole suite; tests that
mutate policy state always construct fresh policies.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentContext
from repro.gpu.architecture import HD7970
from repro.gpu.config import ConfigSpace
from repro.platform.hd7970 import make_hd7970_platform


@pytest.fixture(scope="session", autouse=True)
def _isolated_store_dir(tmp_path_factory):
    """Point the persistent sweep store at a throwaway directory.

    Tests must never read or write ~/.cache: anything that resolves the
    default store location (CLI paths, store tests) lands here instead.
    """
    import os
    from repro.platform.store import CACHE_DIR_ENV
    previous = os.environ.get(CACHE_DIR_ENV)
    root = tmp_path_factory.mktemp("sweep-store")
    os.environ[CACHE_DIR_ENV] = str(root)
    yield root
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Shared experiment context (platform + training + evaluation)."""
    return ExperimentContext()


@pytest.fixture(scope="session")
def platform(context):
    """The shared deterministic HD7970 test bed."""
    return context.platform


@pytest.fixture(scope="session")
def space(platform) -> ConfigSpace:
    """The shared configuration grid."""
    return platform.config_space


@pytest.fixture(scope="session")
def arch():
    """The HD7970 architecture description."""
    return HD7970


@pytest.fixture(scope="session")
def training(context):
    """The Section 4 training report (predictors + dataset)."""
    return context.training


@pytest.fixture(scope="session")
def evaluation(context):
    """The cached Figures 10-13 evaluation matrix."""
    return context.evaluation


@pytest.fixture()
def fresh_platform():
    """A private platform for tests that need isolation."""
    return make_hd7970_platform()
