"""Tests for :mod:`repro.experiments.context`."""

import pytest

from repro.experiments.context import ExperimentContext, default_context


class TestContext:
    def test_applications_cached(self, context):
        assert context.applications is context.applications

    def test_application_lookup(self, context):
        assert context.application("BPT").name == "BPT"

    def test_unknown_application(self, context):
        with pytest.raises(KeyError):
            context.application("nope")

    def test_training_cached(self, context):
        assert context.training is context.training

    def test_evaluation_cached(self, context):
        assert context.evaluation is context.evaluation

    def test_policy_factories_fresh(self, context):
        assert context.harmonia_policy() is not context.harmonia_policy()
        assert context.baseline_policy() is not context.baseline_policy()

    def test_policy_names(self, context):
        assert context.harmonia_policy().name == "harmonia"
        assert context.cg_only_policy().name == "cg-only"
        assert context.dvfs_only_policy().name == "dvfs-only"
        assert context.oracle_policy().name == "oracle"
        assert context.baseline_policy().name == "baseline"

    def test_default_context_is_singleton(self):
        assert default_context() is default_context()

    def test_evaluation_covers_all_policies(self, evaluation):
        policies = {c.policy for c in evaluation.comparisons}
        assert policies == {"cg-only", "harmonia", "oracle", "dvfs-only"}
