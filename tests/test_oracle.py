"""Unit tests for :mod:`repro.core.oracle` (Section 7's oracle)."""

import pytest

from repro.core.oracle import OraclePolicy
from repro.core.policy import LaunchContext
from repro.runtime.metrics import ed2
from repro.workloads.registry import get_kernel


class TestOracle:
    def test_finds_global_ed2_optimum(self, fresh_platform):
        oracle = OraclePolicy(fresh_platform)
        spec = get_kernel("LUD.Internal").base
        best = oracle.best_config_for_spec(spec)
        best_metric = ed2(
            fresh_platform.run_kernel(spec, best).energy,
            fresh_platform.run_kernel(spec, best).time,
        )
        # Exhaustive check: no configuration beats the oracle's choice.
        for config in fresh_platform.config_space:
            result = fresh_platform.run_kernel(spec, config)
            assert ed2(result.energy, result.time) >= best_metric - 1e-18

    def test_maxflops_oracle_uses_min_memory(self, fresh_platform):
        # Figure 3a: the most energy-efficient MaxFlops point is maximum
        # compute at the lowest memory bus frequency.
        oracle = OraclePolicy(fresh_platform)
        best = oracle.best_config_for_spec(get_kernel("MaxFlops.MaxFlops").base)
        assert best.n_cu == 32
        assert best.f_mem == pytest.approx(475e6)

    def test_bpt_oracle_gates_cus(self, fresh_platform):
        # Section 7.1: the BPT optimum gates CUs to reduce L2 interference.
        oracle = OraclePolicy(fresh_platform)
        best = oracle.best_config_for_spec(get_kernel("BPT.FindK").base)
        assert best.n_cu < 32

    def test_cache_hit(self, fresh_platform):
        oracle = OraclePolicy(fresh_platform)
        spec = get_kernel("SRAD.Prepare").base
        first = oracle.best_config_for_spec(spec)
        second = oracle.best_config_for_spec(spec)
        assert first == second

    def test_config_for_uses_spec(self, fresh_platform):
        oracle = OraclePolicy(fresh_platform)
        spec = get_kernel("MaxFlops.MaxFlops").base
        ctx = LaunchContext(kernel_name=spec.name, iteration=0, spec=spec)
        assert oracle.config_for(ctx) == oracle.best_config_for_spec(spec)

    def test_distinct_phases_profiled_separately(self, fresh_platform):
        oracle = OraclePolicy(fresh_platform)
        from repro.workloads.registry import get_application
        app = get_application("Graph500")
        bottom = next(k for k in app.kernels
                      if k.name == "Graph500.BottomStepUp")
        configs = {
            oracle.best_config_for_spec(bottom.spec_for_iteration(i))
            for i in range(app.iterations)
        }
        # Phases with different ops/byte demands get different optima.
        assert len(configs) > 1

    def test_name(self, fresh_platform):
        assert OraclePolicy(fresh_platform).name == "oracle"
