"""Unit tests for :mod:`repro.analysis.report`."""

import pytest

from repro.analysis.report import format_table, percent, to_csv
from repro.errors import AnalysisError


class TestFormatTable:
    def test_basic_rendering(self):
        table = format_table(("a", "b"), [("x", "1"), ("long-cell", "2")])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "long-cell" in lines[3]

    def test_title(self):
        table = format_table(("a",), [("x",)], title="My Title")
        assert table.splitlines()[0] == "My Title"

    def test_columns_aligned(self):
        table = format_table(("col",), [("a",), ("bbb",)])
        lines = table.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_numbers_stringified(self):
        table = format_table(("n",), [(42,)])
        assert "42" in table

    def test_width_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            format_table(("a", "b"), [("only-one",)])

    def test_empty_headers_raise(self):
        with pytest.raises(AnalysisError):
            format_table((), [])


class TestCsv:
    def test_basic(self):
        csv = to_csv(("a", "b"), [("1", "2"), ("3", "4")])
        assert csv == "a,b\n1,2\n3,4"

    def test_width_mismatch(self):
        with pytest.raises(AnalysisError):
            to_csv(("a",), [("1", "2")])

    def test_comma_in_cell_rejected(self):
        with pytest.raises(AnalysisError):
            to_csv(("a",), [("1,2",)])


class TestPercent:
    def test_positive(self):
        assert percent(0.123) == "+12.3%"

    def test_negative(self):
        assert percent(-0.036) == "-3.6%"

    def test_digits(self):
        assert percent(0.12345, digits=2) == "+12.35%"
