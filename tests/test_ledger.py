"""Benchmark trend ledger: ingest, durability, regression gates."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks import ledger  # noqa: E402
from tools import bench_gate  # noqa: E402


def write_bench_json(path, **scalars):
    path.write_text(json.dumps(scalars))
    return path


def make_entry(bench, recorded_at="2026-08-01T00:00:00+00:00", **metrics):
    return ledger.LedgerEntry(
        bench=bench, recorded_at=recorded_at,
        metrics={k: float(v) for k, v in metrics.items()},
    )


class TestIngestAndRead:
    def test_round_trip(self, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        bench_json = write_bench_json(
            tmp_path / "BENCH_pipeline.json",
            warm_speedup=30.0, cores=1, reports_identical=True)
        entry = ledger.ingest_file(ledger_path, bench_json)
        assert entry.bench == "pipeline"
        assert entry.metrics == {"warm_speedup": 30.0, "cores": 1.0}
        assert entry.env["python"]
        (read,) = ledger.read_entries(ledger_path)
        assert read == entry

    def test_booleans_and_nested_values_excluded(self, tmp_path):
        bench_json = write_bench_json(
            tmp_path / "BENCH_x.json",
            speedup=2.0, ok=True, rows=[1, 2], nested={"a": 1})
        entry = ledger.ingest_file(tmp_path / "l.jsonl", bench_json)
        assert entry.metrics == {"speedup": 2.0}

    def test_bench_name_from_filename(self):
        assert ledger.bench_name_for("BENCH_warmstart.json") == "warmstart"
        assert ledger.bench_name_for("/a/b/BENCH_tele-2.json") == "tele-2"
        assert ledger.bench_name_for("other.json") == "other"

    def test_name_override(self, tmp_path):
        bench_json = write_bench_json(tmp_path / "BENCH_x.json", v=1.0)
        entry = ledger.ingest_file(tmp_path / "l.jsonl", bench_json,
                                   bench="renamed")
        assert entry.bench == "renamed"

    def test_unreadable_and_scalar_free_payloads_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unreadable"):
            ledger.ingest_file(tmp_path / "l.jsonl", tmp_path / "gone.json")
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ValueError, match="object"):
            ledger.ingest_file(tmp_path / "l.jsonl", bad)
        bad.write_text(json.dumps({"name": "only strings"}))
        with pytest.raises(ValueError, match="no numeric scalars"):
            ledger.ingest_file(tmp_path / "l.jsonl", bad)

    def test_missing_ledger_reads_empty(self, tmp_path):
        assert ledger.read_entries(tmp_path / "absent.jsonl") == []

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger.append_entry(path, make_entry("a", v=1))
        ledger.append_entry(path, make_entry("a", v=2))
        with open(path, "a") as handle:
            handle.write('{"bench": "a", "metri')  # crashed writer
        entries = ledger.read_entries(path)
        assert [e.metrics["v"] for e in entries] == [1.0, 2.0]

    def test_earlier_corruption_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger.append_entry(path, make_entry("a", v=1))
        with open(path, "a") as handle:
            handle.write("{broken\n")
        ledger.append_entry(path, make_entry("a", v=2))
        with pytest.raises(ValueError, match="not valid JSON"):
            ledger.read_entries(path)


class TestGates:
    RULES = {"b": [ledger.GateRule("speedup", higher_is_better=True,
                                   max_regression=0.20)]}

    def _history(self, *values):
        return [make_entry("b", speedup=v) for v in values]

    def test_first_entry_is_seeded(self):
        (result,) = ledger.evaluate_gates(self._history(10.0), "b",
                                          gates=self.RULES)
        assert result.status == ledger.STATUS_SEEDED

    def test_within_band_is_ok(self):
        (result,) = ledger.evaluate_gates(
            self._history(10.0, 10.5, 9.9, 9.0), "b", gates=self.RULES)
        assert result.status == ledger.STATUS_OK
        assert result.baseline == pytest.approx(10.0)

    def test_injected_slowdown_fails_the_gate(self):
        """The acceptance scenario: a synthetic slowdown must gate."""
        history = self._history(10.0, 10.2, 9.8, 10.1, 5.0)
        (result,) = ledger.evaluate_gates(history, "b", gates=self.RULES)
        assert result.status == ledger.STATUS_REGRESSION
        assert "below" in result.detail

    def test_baseline_is_median_not_mean(self):
        # One 100x outlier run must not drag the bar up.
        history = self._history(10.0, 1000.0, 10.2, 9.9, 9.0)
        (result,) = ledger.evaluate_gates(history, "b", gates=self.RULES)
        assert result.status == ledger.STATUS_OK
        assert result.baseline == pytest.approx(10.1)

    def test_window_bounds_the_baseline(self):
        history = self._history(100.0, 10.0, 10.0, 10.0, 10.0, 10.0, 9.5)
        (result,) = ledger.evaluate_gates(history, "b", window=5,
                                          gates=self.RULES)
        assert result.baseline == pytest.approx(10.0)

    def test_lower_is_better_direction(self):
        rules = {"b": [ledger.GateRule("ratio", higher_is_better=False,
                                       max_regression=0.10)]}
        entries = [make_entry("b", ratio=1.0), make_entry("b", ratio=1.5)]
        (result,) = ledger.evaluate_gates(entries, "b", gates=rules)
        assert result.status == ledger.STATUS_REGRESSION
        assert "above" in result.detail

    def test_absolute_ceiling_beats_history(self):
        rules = {"b": [ledger.GateRule("ratio", higher_is_better=False,
                                       max_value=1.02)]}
        # History would call 1.05 normal; the absolute bound must not.
        entries = [make_entry("b", ratio=1.05), make_entry("b", ratio=1.05)]
        (result,) = ledger.evaluate_gates(entries, "b", gates=rules)
        assert result.status == ledger.STATUS_REGRESSION
        assert "ceiling" in result.detail

    def test_missing_metric_reported(self):
        entries = [make_entry("b", other=1.0)]
        (result,) = ledger.evaluate_gates(entries, "b", gates=self.RULES)
        assert result.status == ledger.STATUS_MISSING

    def test_evaluate_all_gates_covers_each_gated_bench(self):
        entries = [make_entry("pipeline", warm_speedup=30.0),
                   make_entry("warmstart", warm_speedup=6.0),
                   make_entry("ungated_bench", anything=1.0)]
        results = ledger.evaluate_all_gates(entries)
        assert {r.bench for r in results} == {"pipeline", "warmstart"}


class TestTrendReport:
    def test_report_shows_trends_and_gates(self):
        entries = [make_entry("pipeline", warm_speedup=30.0),
                   make_entry("pipeline", warm_speedup=31.0)]
        report = ledger.format_trend_report(entries)
        assert "pipeline: 2 run(s)" in report
        assert "30 -> 31" in report
        assert "[gated]" in report
        assert "gate warm_speedup:" in report

    def test_empty_ledger_report(self):
        assert "empty" in ledger.format_trend_report([])


class TestBenchGateCli:
    def test_ingest_then_check_ok(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        bench_json = write_bench_json(tmp_path / "BENCH_pipeline.json",
                                      warm_speedup=30.0)
        rc = bench_gate.main(["ingest", "--ledger", str(ledger_path),
                              str(bench_json)])
        assert rc == 0
        rc = bench_gate.main(["check", "--ledger", str(ledger_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seeded" in out and "OK" in out

    def test_check_fails_on_injected_slowdown(self, tmp_path, capsys):
        """End-to-end acceptance: the CI gate exits 1 on a regression."""
        ledger_path = tmp_path / "ledger.jsonl"
        for speedup in (30.0, 31.0, 29.5):
            bench_json = write_bench_json(
                tmp_path / "BENCH_pipeline.json", warm_speedup=speedup)
            assert bench_gate.main(["ingest", "--ledger", str(ledger_path),
                                    str(bench_json)]) == 0
        slow = write_bench_json(tmp_path / "BENCH_pipeline.json",
                                warm_speedup=3.0)  # 10x slower
        assert bench_gate.main(["ingest", "--ledger", str(ledger_path),
                                str(slow)]) == 0
        rc = bench_gate.main(["check", "--ledger", str(ledger_path)])
        assert rc == 1
        captured = capsys.readouterr()
        assert "regression" in captured.out
        assert "failed" in captured.err

    def test_check_fails_on_vanished_metric(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        good = write_bench_json(tmp_path / "BENCH_pipeline.json",
                                warm_speedup=30.0)
        bench_gate.main(["ingest", "--ledger", str(ledger_path), str(good)])
        gone = write_bench_json(tmp_path / "BENCH_pipeline.json",
                                something_else=1.0)
        bench_gate.main(["ingest", "--ledger", str(ledger_path), str(gone)])
        assert bench_gate.main(["check", "--ledger", str(ledger_path)]) == 1
        assert "missing" in capsys.readouterr().out

    def test_empty_ledger_check_passes(self, tmp_path, capsys):
        rc = bench_gate.main(["check", "--ledger",
                              str(tmp_path / "none.jsonl")])
        assert rc == 0
        assert "nothing to check" in capsys.readouterr().out

    def test_ingest_reports_bad_files(self, tmp_path, capsys):
        rc = bench_gate.main(["ingest", "--ledger",
                              str(tmp_path / "l.jsonl"),
                              str(tmp_path / "BENCH_gone.json")])
        assert rc == 1
        assert "bench_gate:" in capsys.readouterr().err

    def test_bench_override_needs_single_file(self, tmp_path):
        a = write_bench_json(tmp_path / "BENCH_a.json", v=1.0)
        b = write_bench_json(tmp_path / "BENCH_b.json", v=2.0)
        rc = bench_gate.main(["ingest", "--ledger",
                              str(tmp_path / "l.jsonl"),
                              "--bench", "x", str(a), str(b)])
        assert rc == 2


class TestCommittedLedger:
    def test_repo_ledger_is_populated_and_green(self):
        entries = ledger.read_entries(ledger.default_ledger_path())
        assert entries, "benchmarks/ledger.jsonl must ship seeded"
        results = ledger.evaluate_all_gates(entries)
        assert results
        assert all(r.status in (ledger.STATUS_OK, ledger.STATUS_SEEDED)
                   for r in results)
