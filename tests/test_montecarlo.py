"""The vectorized Monte Carlo evaluation engine.

Pins the contract documented in :mod:`repro.runtime.montecarlo`: each
trial of a non-adaptive policy reproduces a full scalar harness run on a
noisy platform with the trial's seed, bands summarize the trials, and the
fan-out path is serial-exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.evaluation import EvaluationHarness
from repro.core.baseline import BaselinePolicy
from repro.core.oracle import OraclePolicy
from repro.errors import AnalysisError
from repro.platform.hd7970 import make_hd7970_platform
from repro.runtime.montecarlo import (
    MonteCarloEngine,
    band,
    geomean_band,
)
from repro.runtime.simulator import ApplicationRunner
from repro.workloads.registry import get_application

NOISE = 0.05
SEEDS = (0, 1, 2, 3)


@pytest.fixture(scope="module")
def engine():
    return MonteCarloEngine(make_hd7970_platform(), NOISE, SEEDS)


@pytest.fixture(scope="module")
def apps():
    return [get_application("MaxFlops"), get_application("BPT")]


class TestMetricBand:
    def test_band_math(self):
        b = band(np.array([1.0, 2.0, 3.0, 4.0]))
        assert b.mean == 2.5
        assert b.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert b.n == 4
        assert b.ci_low < b.mean < b.ci_high
        assert b.half_width == pytest.approx(1.96 * b.std / 2, rel=1e-3)

    def test_single_trial_has_zero_width(self):
        b = band(np.array([7.0]))
        assert b.mean == 7.0
        assert b.std == 0.0
        assert b.ci_low == b.ci_high == 7.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            band(np.array([]))


class TestEngineValidation:
    def test_noisy_platform_rejected(self):
        noisy = make_hd7970_platform(noise_std_fraction=0.05, seed=1)
        with pytest.raises(AnalysisError):
            MonteCarloEngine(noisy, NOISE, 2)

    def test_nonpositive_noise_rejected(self):
        with pytest.raises(AnalysisError):
            MonteCarloEngine(make_hd7970_platform(), 0.0, 2)

    def test_empty_seeds_rejected(self):
        with pytest.raises(AnalysisError):
            MonteCarloEngine(make_hd7970_platform(), NOISE, [])

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(AnalysisError):
            MonteCarloEngine(make_hd7970_platform(), NOISE, [1, 1])

    def test_int_seeds_means_range(self):
        engine = MonteCarloEngine(make_hd7970_platform(), NOISE, 3)
        assert engine.seeds == (0, 1, 2)


class TestRollout:
    def test_trials_match_scalar_noisy_runs(self, engine, apps):
        """Trial s == a full scalar harness run at platform seed s."""
        for app in apps:
            run = engine.rollout(app, BaselinePolicy(
                engine.platform.config_space))
            for idx, seed in enumerate(engine.seeds):
                noisy = make_hd7970_platform(noise_std_fraction=NOISE,
                                             seed=seed)
                scalar = ApplicationRunner(noisy).run(
                    app, BaselinePolicy(noisy.config_space))
                # Totals agree to summation tolerance (per-launch times
                # are bitwise equal; np.sum is pairwise, Python's is not).
                assert run.time_samples[idx] == pytest.approx(
                    scalar.metrics.time, rel=1e-12)
                assert run.energy_samples[idx] == pytest.approx(
                    scalar.metrics.energy, rel=1e-12)
                assert run.ed2_samples[idx] == pytest.approx(
                    scalar.metrics.ed2, rel=1e-12)

    def test_bands_summarize_samples(self, engine, apps):
        run = engine.rollout(apps[0], BaselinePolicy(
            engine.platform.config_space))
        assert run.time.n == len(SEEDS)
        assert run.time.mean == pytest.approx(np.mean(run.time_samples))
        assert run.ed2.std > 0
        assert run.performance.mean == pytest.approx(
            np.mean(1.0 / run.time_samples))

    def test_rollouts_are_reproducible(self, engine, apps):
        a = engine.rollout(apps[0], BaselinePolicy(
            engine.platform.config_space))
        b = engine.rollout(apps[0], BaselinePolicy(
            engine.platform.config_space))
        np.testing.assert_array_equal(a.time_samples, b.time_samples)
        np.testing.assert_array_equal(a.energy_samples, b.energy_samples)


class TestComparison:
    def test_baseline_vs_itself_is_null(self, engine, apps):
        space = engine.platform.config_space
        comparison = engine.compare(apps[0], BaselinePolicy(space),
                                    BaselinePolicy(space))
        assert comparison.ed2_improvement.mean == 0.0
        assert comparison.ed2_improvement.half_width == 0.0
        assert comparison.performance_delta.mean == 0.0

    def test_oracle_beats_baseline(self, engine, apps):
        space = engine.platform.config_space
        comparison = engine.compare(apps[1], BaselinePolicy(space),
                                    OraclePolicy(engine.platform))
        assert comparison.ed2_improvement.mean > 0
        assert comparison.energy_improvement.mean > 0

    def test_geomean_band_aggregates(self, engine, apps):
        space = engine.platform.config_space
        comparisons = [
            engine.compare(app, BaselinePolicy(space),
                           OraclePolicy(engine.platform))
            for app in apps
        ]
        geo = geomean_band(comparisons, "ed2_improvement")
        assert geo.n == len(SEEDS)
        means = [c.ed2_improvement.mean for c in comparisons]
        assert min(means) <= geo.mean <= max(means)
        with pytest.raises(AnalysisError):
            geomean_band(comparisons, "no_such_metric")
        with pytest.raises(AnalysisError):
            geomean_band([], "ed2_improvement")


class TestHarness:
    def test_evaluate_montecarlo_jobs_invariant(self, apps):
        def summarize(jobs):
            platform = make_hd7970_platform()
            harness = EvaluationHarness(
                platform, BaselinePolicy(platform.config_space))
            return harness.evaluate_montecarlo(
                apps,
                baseline_factory=lambda: BaselinePolicy(
                    platform.config_space),
                policy_factories=[lambda: OraclePolicy(platform)],
                seeds=SEEDS,
                noise_std_fraction=NOISE,
                jobs=jobs,
            )

        serial = summarize(1)
        fanned = summarize(3)
        assert serial.seeds == fanned.seeds == SEEDS
        for a, b in zip(serial.comparisons, fanned.comparisons):
            assert a.application == b.application
            np.testing.assert_array_equal(a.candidate.time_samples,
                                          b.candidate.time_samples)
            np.testing.assert_array_equal(a.baseline.energy_samples,
                                          b.baseline.energy_samples)
        geo_a = serial.geomean("oracle", "ed2_improvement")
        geo_b = fanned.geomean("oracle", "ed2_improvement")
        assert geo_a == geo_b

    def test_summary_lookup(self, apps):
        platform = make_hd7970_platform()
        harness = EvaluationHarness(
            platform, BaselinePolicy(platform.config_space))
        summary = harness.evaluate_montecarlo(
            apps,
            baseline_factory=lambda: BaselinePolicy(platform.config_space),
            policy_factories=[lambda: OraclePolicy(platform)],
            seeds=2,
            noise_std_fraction=NOISE,
        )
        cell = summary.comparison("MaxFlops", "oracle")
        assert cell.application == "MaxFlops"
        assert len(summary.for_policy("oracle")) == 2
        with pytest.raises(AnalysisError):
            summary.for_policy("nonexistent")
        with pytest.raises(AnalysisError):
            summary.comparison("MaxFlops", "nonexistent")


class TestCli:
    def test_montecarlo_subcommand(self, capsys):
        from repro.cli import main

        code = main(["montecarlo", "MaxFlops", "--policy", "oracle",
                     "--seeds", "2", "--noise", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Monte Carlo" in out
        assert "MaxFlops" in out

    def test_montecarlo_unknown_app(self, capsys):
        from repro.cli import main

        code = main(["montecarlo", "NoSuchApp", "--seeds", "2"])
        assert code == 2
