"""Unit tests for :mod:`repro.core.harmonia` (Algorithm 1)."""

import pytest

from repro.core.harmonia import HarmoniaPolicy
from repro.core.policy import LaunchContext
from repro.runtime.simulator import ApplicationRunner
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_application, get_kernel


def make_policy(context, **kwargs):
    training = context.training
    return HarmoniaPolicy(
        context.platform.config_space, training.compute, training.bandwidth,
        **kwargs,
    )


class TestFirstLaunch:
    def test_inherits_boost(self, context):
        policy = make_policy(context)
        spec = get_kernel("MaxFlops.MaxFlops").base
        ctx = LaunchContext(kernel_name=spec.name, iteration=0, spec=spec)
        assert policy.config_for(ctx) == \
            context.platform.config_space.max_config()

    def test_name_defaults(self, context):
        assert make_policy(context).name == "harmonia"
        assert make_policy(context, enable_fg=False).name == "cg-only"
        assert make_policy(context, policy_name="custom").name == "custom"


class TestCgJumpOnFirstObservation:
    def test_maxflops_drops_memory(self, context):
        # First observation -> first phase -> CG jump; MaxFlops's LOW
        # bandwidth bin sends the bus to its minimum.
        policy = make_policy(context)
        platform = context.platform
        spec = get_kernel("MaxFlops.MaxFlops").base
        ctx = LaunchContext(kernel_name=spec.name, iteration=0, spec=spec)
        result = platform.run_kernel(spec, policy.config_for(ctx))
        policy.observe(ctx, result)
        nxt = policy.config_for(
            LaunchContext(kernel_name=spec.name, iteration=1, spec=spec)
        )
        assert nxt.f_mem == pytest.approx(475 * MHZ)
        assert nxt.n_cu == 32
        assert policy.control_state(spec.name).cg_actions == 1

    def test_devicememory_keeps_bandwidth(self, context):
        policy = make_policy(context)
        platform = context.platform
        spec = get_kernel("DeviceMemory.DeviceMemory").base
        ctx = LaunchContext(kernel_name=spec.name, iteration=0, spec=spec)
        result = platform.run_kernel(spec, policy.config_for(ctx))
        policy.observe(ctx, result)
        nxt = policy.config_for(
            LaunchContext(kernel_name=spec.name, iteration=1, spec=spec)
        )
        assert nxt.f_mem == pytest.approx(1375 * MHZ)


class TestPhaseTracking:
    def test_stable_kernel_has_one_phase(self, context):
        app = get_application("Stencil")
        policy = make_policy(context)
        ApplicationRunner(context.platform).run(app, policy,
                                                reset_policy=False)
        state = policy.control_state("Stencil.Stencil2D")
        assert state.phase_changes == 1
        assert state.cg_actions == 1
        assert state.fg_actions > 10

    def test_phased_kernel_re_triggers_cg(self, context):
        app = get_application("Graph500")
        policy = make_policy(context)
        ApplicationRunner(context.platform).run(app, policy,
                                                reset_policy=False)
        state = policy.control_state("Graph500.BottomStepUp")
        # The BFS levels form three behavioural groups (the instruction
        # *mix* shifts even though the totals change every iteration).
        assert state.phase_changes >= 3
        assert state.cg_actions == state.phase_changes

    def test_cg_only_never_runs_fg(self, context):
        app = get_application("Stencil")
        policy = make_policy(context, enable_fg=False)
        ApplicationRunner(context.platform).run(app, policy,
                                                reset_policy=False)
        state = policy.control_state("Stencil.Stencil2D")
        assert state.fg_actions == 0


class TestReset:
    def test_reset_forgets_everything(self, context):
        app = get_application("Sort")
        policy = make_policy(context)
        ApplicationRunner(context.platform).run(app, policy,
                                                reset_policy=False)
        policy.reset()
        state = policy.control_state("Sort.BottomScan")
        assert state.cg_actions == 0
        spec = get_kernel("Sort.BottomScan").base
        ctx = LaunchContext(kernel_name=spec.name, iteration=0, spec=spec)
        assert policy.config_for(ctx) == \
            context.platform.config_space.max_config()


class TestTunableRestriction:
    def test_dvfs_only_moves_frequency_only(self, context):
        from repro.core.variants import ComputeDvfsOnlyPolicy
        training = context.training
        policy = ComputeDvfsOnlyPolicy(
            context.platform.config_space, training.compute,
            training.bandwidth,
        )
        app = get_application("CoMD")
        run = ApplicationRunner(context.platform).run(app, policy,
                                                      reset_policy=False)
        for record in run.trace.records:
            assert record.config.n_cu == 32
            assert record.config.f_mem == pytest.approx(1375 * MHZ)

    def test_dvfs_only_name(self, context):
        from repro.core.variants import ComputeDvfsOnlyPolicy
        training = context.training
        policy = ComputeDvfsOnlyPolicy(
            context.platform.config_space, training.compute,
            training.bandwidth,
        )
        assert policy.name == "dvfs-only"
