"""The shared sweep cache: keying, statistics, bounds, consumers."""

from __future__ import annotations

import threading

import pytest

from repro.core.oracle import OraclePolicy
from repro.platform.hd7970 import make_hd7970_platform, make_pitcairn_platform
from repro.platform.sweepcache import SweepCache, shared_cache
from repro.runtime.metrics import ed2
from repro.workloads.registry import all_kernels


@pytest.fixture()
def cache():
    return SweepCache(maxsize=8)


def test_miss_then_hit(fresh_platform, cache):
    spec = all_kernels()[0].base
    first = fresh_platform.grid_sweep(spec, cache=cache)
    second = fresh_platform.grid_sweep(spec, cache=cache)
    assert second is first
    assert cache.stats().memory == (1, 1)
    assert cache.hit_rate == 0.5
    assert len(cache) == 1


def test_keys_separate_kernels_and_calibrations(cache):
    hd = make_hd7970_platform()
    pit = make_pitcairn_platform()
    spec_a, spec_b = all_kernels()[0].base, all_kernels()[1].base

    hd.grid_sweep(spec_a, cache=cache)
    hd.grid_sweep(spec_b, cache=cache)
    pit.grid_sweep(spec_a, cache=cache)
    assert cache.stats().memory == (0, 3)
    assert len(cache) == 3
    # Same calibration value -> same key, even across platform instances.
    make_hd7970_platform().grid_sweep(spec_a, cache=cache)
    assert cache.stats().memory == (1, 3)


def test_calibration_variant_misses(cache):
    """A changed calibration constant is a different key by value."""
    plain = make_hd7970_platform()
    scaled = make_hd7970_platform(memory_voltage_scaling=True)
    spec = all_kernels()[0].base
    plain.grid_sweep(spec, cache=cache)
    scaled.grid_sweep(spec, cache=cache)
    assert cache.stats().memory == (0, 2)
    assert plain.sweep_cache_key(spec) != scaled.sweep_cache_key(spec)


def test_clear_and_eviction(fresh_platform):
    small = SweepCache(maxsize=2)
    specs = [k.base for k in all_kernels()[:3]]
    for spec in specs:
        fresh_platform.grid_sweep(spec, cache=small)
    assert len(small) == 2  # LRU evicted the oldest grid
    small.clear()
    assert len(small) == 0
    fresh_platform.grid_sweep(specs[0], cache=small)
    assert small.stats().memory == (0, 4)


def test_thread_safety_under_concurrent_sweeps(fresh_platform):
    cache = SweepCache()
    specs = [k.base for k in all_kernels()[:6]]
    errors = []

    def worker():
        try:
            for spec in specs:
                fresh_platform.grid_sweep(spec, cache=cache)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(cache) == len(specs)


def test_shared_cache_is_process_wide():
    assert shared_cache() is shared_cache()


def test_oracle_searches_cached_surface(fresh_platform):
    """The oracle's pick equals an argmin over the cached batch surface,
    and its exact per-spec cache still survives reset."""
    spec = all_kernels()[2].base
    oracle = OraclePolicy(fresh_platform)
    best = oracle.best_config_for_spec(spec)

    surface = fresh_platform.grid_sweep(spec)
    exhaustive = min(
        range(len(surface)),
        key=lambda i: ed2(float(surface.energy[i]), float(surface.time[i])),
    )
    assert best == surface.configs[exhaustive]

    oracle.reset()
    assert oracle.best_config_for_spec(spec) == best
