"""Unit tests for :mod:`repro.runtime.metrics` (Section 3.4)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.runtime.metrics import (
    RunMetrics,
    ed,
    ed2,
    geomean,
    improvement,
    metrics_from_launches,
)


class TestEdMetrics:
    def test_ed(self):
        assert ed(10.0, 2.0) == pytest.approx(20.0)

    def test_ed2(self):
        assert ed2(10.0, 2.0) == pytest.approx(40.0)

    def test_ed2_weighs_delay_quadratically(self):
        # Halving delay at constant energy quarters ED2 but only halves ED.
        assert ed2(10.0, 1.0) / ed2(10.0, 2.0) == pytest.approx(0.25)
        assert ed(10.0, 1.0) / ed(10.0, 2.0) == pytest.approx(0.5)

    def test_rejects_negative(self):
        with pytest.raises(AnalysisError):
            ed2(-1.0, 1.0)
        with pytest.raises(AnalysisError):
            ed(1.0, -1.0)

    @given(e=st.floats(min_value=0, max_value=1e6),
           d=st.floats(min_value=0, max_value=1e6))
    def test_ed2_equals_ed_times_d(self, e, d):
        assert ed2(e, d) == pytest.approx(ed(e, d) * d)


class TestGeomean:
    def test_uniform(self):
        assert geomean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_classic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            geomean([])

    def test_rejects_non_positive(self):
        with pytest.raises(AnalysisError):
            geomean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0),
                    min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0),
                    min_size=2, max_size=10))
    def test_scale_invariance(self, values):
        g = geomean(values)
        scaled = geomean([v * 2.0 for v in values])
        assert scaled == pytest.approx(2.0 * g, rel=1e-9)


class TestImprovement:
    def test_improvement_positive_when_smaller(self):
        assert improvement(100.0, 88.0) == pytest.approx(0.12)

    def test_regression_negative(self):
        assert improvement(100.0, 130.0) == pytest.approx(-0.30)

    def test_rejects_zero_baseline(self):
        with pytest.raises(AnalysisError):
            improvement(0.0, 1.0)


class _FakePower:
    def __init__(self, gpu, memory, other):
        self.gpu = gpu
        self.memory = memory
        self.other = other

    @property
    def card(self):
        return self.gpu + self.memory + self.other


class _FakeLaunch:
    def __init__(self, time, gpu, memory, other=10.0):
        self.time = time
        self.power = _FakePower(gpu, memory, other)


class TestRunMetrics:
    def test_aggregation(self):
        launches = [
            _FakeLaunch(time=1.0, gpu=100.0, memory=40.0),
            _FakeLaunch(time=3.0, gpu=60.0, memory=40.0),
        ]
        metrics = metrics_from_launches(launches)
        assert metrics.time == pytest.approx(4.0)
        expected_energy = 1.0 * 150.0 + 3.0 * 110.0
        assert metrics.energy == pytest.approx(expected_energy)
        assert metrics.avg_power == pytest.approx(expected_energy / 4.0)
        assert metrics.avg_gpu_power == pytest.approx((100.0 + 180.0) / 4.0)
        assert metrics.avg_memory_power == pytest.approx(40.0)

    def test_derived_metrics(self):
        metrics = RunMetrics(time=2.0, energy=100.0, avg_power=50.0,
                             avg_gpu_power=30.0, avg_memory_power=10.0)
        assert metrics.ed == pytest.approx(200.0)
        assert metrics.ed2 == pytest.approx(400.0)
        assert metrics.performance == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            metrics_from_launches([])
