"""Unit tests for :mod:`repro.sensitivity.binning` (Section 5.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PolicyError
from repro.sensitivity.binning import Bin, PAPER_BINS, SensitivityBins


class TestPaperBins:
    """<30% LOW, 30-70% MED, >70% HIGH."""

    @pytest.mark.parametrize("value,expected", [
        (0.0, Bin.LOW),
        (0.29, Bin.LOW),
        (0.30, Bin.MED),
        (0.50, Bin.MED),
        (0.70, Bin.MED),
        (0.71, Bin.HIGH),
        (1.0, Bin.HIGH),
    ])
    def test_classification(self, value, expected):
        assert PAPER_BINS.classify(value) is expected

    def test_negative_sensitivity_is_low(self):
        # The BPT case: performance improves as the tunable shrinks.
        assert PAPER_BINS.classify(-0.5) is Bin.LOW

    def test_superlinear_is_high(self):
        assert PAPER_BINS.classify(1.8) is Bin.HIGH

    def test_edge_values(self):
        assert PAPER_BINS.low_edge == pytest.approx(0.30)
        assert PAPER_BINS.high_edge == pytest.approx(0.70)


class TestTargets:
    def test_target_ordering(self):
        assert (PAPER_BINS.target_fraction(Bin.LOW)
                <= PAPER_BINS.target_fraction(Bin.MED)
                <= PAPER_BINS.target_fraction(Bin.HIGH))

    def test_high_is_full_range(self):
        assert PAPER_BINS.target_fraction(Bin.HIGH) == pytest.approx(1.0)


class TestValidation:
    def test_rejects_inverted_edges(self):
        with pytest.raises(PolicyError):
            SensitivityBins(low_edge=0.8, high_edge=0.3)

    def test_rejects_bad_target(self):
        with pytest.raises(PolicyError):
            SensitivityBins(med_target=1.5)

    @given(st.floats(min_value=-10, max_value=10))
    def test_classification_total(self, value):
        assert PAPER_BINS.classify(value) in (Bin.LOW, Bin.MED, Bin.HIGH)

    @given(st.floats(min_value=0, max_value=0.999))
    def test_classification_monotone(self, value):
        order = {Bin.LOW: 0, Bin.MED: 1, Bin.HIGH: 2}
        a = order[PAPER_BINS.classify(value)]
        b = order[PAPER_BINS.classify(min(1.0, value + 0.001))]
        assert b >= a
