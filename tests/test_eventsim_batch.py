"""Differential tests: batched lockstep engine vs the scalar event loop.

The batched engine's contract is *bitwise* equivalence — every
:class:`~repro.perf.eventsim.EventSimResult` field must equal the scalar
simulator's exactly (``==``, not approx), for every lane shape the scalar
loop can encounter. The suite sweeps the full workload registry over both
calibrations and the validation experiment's 3x3x3 config sample, then
probes the structural edge lanes individually: compute-only kernels
(``bytes_per_segment == 0``), wave-population cap hit vs not, single-wave
launches, occupancy-limited residency, and the wider index dtype engaged
by a raised wave cap.
"""

import pytest

from repro.errors import AnalysisError
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.memory.controller import MemoryControllerModel
from repro.perf.eventsim import EventDrivenModel, _derive_lane_params
from repro.perf.eventsim_batch import BatchedEventModel
from repro.perf.kernelspec import KernelSpec
from repro.platform.calibration import (default_calibration,
                                        pitcairn_calibration)
from repro.units import MHZ
from repro.workloads.registry import all_kernels, get_kernel


def _models(calibration, **kwargs):
    controller = MemoryControllerModel(
        arch=calibration.arch, timing=calibration.gddr5_timing
    )
    clocks = calibration.clock_domain_model()
    scalar = EventDrivenModel(calibration.arch, controller, clocks,
                              **kwargs)
    batched = BatchedEventModel(calibration.arch, controller, clocks,
                                **kwargs)
    return scalar, batched


def _sample(space):
    """The validation experiment's 3x3x3 corner/midpoint sample."""
    from repro.experiments.ext_model_validation import _sample_configs
    return _sample_configs(space)


def assert_bitwise_equal(batched_result, scalar_result, label):
    """All four result fields must match exactly — no tolerance."""
    assert batched_result.time == scalar_result.time, label
    assert (batched_result.simulated_waves
            == scalar_result.simulated_waves), label
    assert batched_result.total_waves == scalar_result.total_waves, label
    assert (batched_result.simd_busy_fraction
            == scalar_result.simd_busy_fraction), label


class TestFullRegistryDifferential:
    """Every kernel x every sampled config, on both calibrations."""

    @pytest.mark.parametrize("make_calibration", [
        pytest.param(default_calibration, id="hd7970"),
        pytest.param(pitcairn_calibration, id="pitcairn"),
    ])
    def test_all_kernels_all_sampled_configs(self, make_calibration):
        calibration = make_calibration()
        scalar, batched = _models(calibration)
        configs = _sample(ConfigSpace(calibration.arch))
        specs = [kernel.base for kernel in all_kernels()]

        rows = batched.run_batch(specs, configs)
        assert len(rows) == len(specs)
        for spec, row in zip(specs, rows):
            assert len(row) == len(configs)
            for config, result in zip(configs, row):
                expected = scalar.run(spec, config)
                assert_bitwise_equal(result, expected,
                                     f"{spec.name} @ {config.describe()}")


def _edge_spec(**overrides):
    defaults = dict(
        name="Edge.Kernel",
        total_workitems=1 << 16,
        workgroup_size=256,
        valu_insts_per_item=50.0,
        vfetch_insts_per_item=6.0,
        vwrite_insts_per_item=2.0,
    )
    defaults.update(overrides)
    return KernelSpec(**defaults)


class TestEdgeLanes:
    """Structural corners of the scalar loop, each checked bitwise."""

    @pytest.fixture(scope="class")
    def calibration(self):
        return default_calibration()

    @pytest.fixture(scope="class")
    def config(self, calibration):
        space = ConfigSpace(calibration.arch)
        return space.max_config()

    def _check(self, calibration, spec, config, **kwargs):
        scalar, batched = _models(calibration, **kwargs)
        (result,) = batched.run_pairs([(spec, config)])
        assert_bitwise_equal(result, scalar.run(spec, config), spec.name)
        return result

    def test_compute_only_lane(self, calibration, config):
        # No memory instructions -> bytes_per_segment == 0: the lane
        # never touches the bandwidth server or the in-flight window.
        spec = _edge_spec(name="Edge.ComputeOnly",
                          vfetch_insts_per_item=0.0,
                          vwrite_insts_per_item=0.0)
        params = _derive_lane_params(
            calibration.arch,
            MemoryControllerModel(arch=calibration.arch,
                                  timing=calibration.gddr5_timing),
            calibration.clock_domain_model(), 256, spec, config)
        assert params.bytes_per_segment == 0.0
        result = self._check(calibration, spec, config)
        assert result.simd_busy_fraction > 0.9

    def test_single_wave_launch(self, calibration, config):
        # One wavefront total: the ready queue holds a single entry and
        # admission never fires.
        spec = _edge_spec(name="Edge.SingleWave", total_workitems=64,
                          workgroup_size=64)
        result = self._check(calibration, spec, config)
        assert result.total_waves == 1
        assert result.simulated_waves == 1

    def test_wave_cap_hit(self, calibration):
        # waves_per_cu far above the cap: simulated == cap, scale > 1.
        spec = _edge_spec(name="Edge.CapHit", total_workitems=1 << 22)
        config = HardwareConfig(4, 925 * MHZ, 1375 * MHZ)
        result = self._check(calibration, spec, config)
        assert result.simulated_waves == 256
        assert result.total_waves > result.simulated_waves

    def test_wave_cap_not_hit(self, calibration, config):
        # Small launch on a full chip: every wave is simulated directly.
        spec = _edge_spec(name="Edge.CapMiss", total_workitems=1 << 14)
        result = self._check(calibration, spec, config)
        assert result.simulated_waves < 256

    def test_occupancy_limited_residency(self, calibration, config):
        # Register pressure limits resident waves per SIMD, so admission
        # throttles the simulated population below the launch size.
        spec = _edge_spec(name="Edge.Occupancy", vgprs_per_workitem=128,
                          total_workitems=1 << 18)
        self._check(calibration, spec, config)

    def test_wider_index_dtype(self, calibration):
        # A raised wave cap pushes simulated waves past 255, engaging
        # the uint16 ready-queue index path.
        spec = _edge_spec(name="Edge.WideIndex", total_workitems=1 << 22)
        config = HardwareConfig(4, 925 * MHZ, 1375 * MHZ)
        result = self._check(calibration, spec, config,
                             max_simulated_waves=512)
        assert result.simulated_waves == 512

    def test_mixed_block_memory_and_compute_only(self, calibration, config):
        # Memory and compute-only lanes in ONE lockstep block exercise
        # the masked (non-allmem) server path.
        scalar, batched = _models(calibration)
        pairs = [
            (_edge_spec(name="Edge.Mixed0"), config),
            (_edge_spec(name="Edge.Mixed1", vfetch_insts_per_item=0.0,
                        vwrite_insts_per_item=0.0), config),
            (get_kernel("DeviceMemory.DeviceMemory").base, config),
        ]
        results = batched.run_pairs(pairs)
        for (spec, cfg), result in zip(pairs, results):
            assert_bitwise_equal(result, scalar.run(spec, cfg), spec.name)


class TestBatchApi:
    def test_run_batch_shape_and_order(self):
        calibration = default_calibration()
        scalar, batched = _models(calibration)
        space = ConfigSpace(calibration.arch)
        specs = [get_kernel("MaxFlops.MaxFlops").base,
                 get_kernel("DeviceMemory.DeviceMemory").base]
        configs = [space.min_config(), space.max_config()]
        rows = batched.run_batch(specs, configs)
        assert [len(row) for row in rows] == [2, 2]
        for i, spec in enumerate(specs):
            for j, config in enumerate(configs):
                assert_bitwise_equal(rows[i][j], scalar.run(spec, config),
                                     f"[{i}][{j}]")

    def test_empty_batch(self):
        calibration = default_calibration()
        _, batched = _models(calibration)
        assert batched.run_pairs([]) == []
        assert batched.run_batch([], []) == []

    def test_small_block_limit_still_exact(self):
        # Tiny max_lanes_per_block forces multi-block execution; blocks
        # must not change results.
        calibration = default_calibration()
        controller = MemoryControllerModel(
            arch=calibration.arch, timing=calibration.gddr5_timing
        )
        clocks = calibration.clock_domain_model()
        scalar = EventDrivenModel(calibration.arch, controller, clocks)
        batched = BatchedEventModel(calibration.arch, controller, clocks,
                                    max_lanes_per_block=3)
        space = ConfigSpace(calibration.arch)
        configs = _sample(space)[:5]
        spec = get_kernel("Sort.BottomScan").base
        for config, result in zip(configs,
                                  batched.run_batch([spec], configs)[0]):
            assert_bitwise_equal(result, scalar.run(spec, config),
                                 config.describe())

    def test_rejects_tiny_wave_cap(self):
        calibration = default_calibration()
        controller = MemoryControllerModel(
            arch=calibration.arch, timing=calibration.gddr5_timing
        )
        with pytest.raises(AnalysisError):
            BatchedEventModel(calibration.arch, controller,
                              calibration.clock_domain_model(),
                              max_simulated_waves=4)

    def test_rejects_bad_block_limit(self):
        calibration = default_calibration()
        controller = MemoryControllerModel(
            arch=calibration.arch, timing=calibration.gddr5_timing
        )
        with pytest.raises(AnalysisError):
            BatchedEventModel(calibration.arch, controller,
                              calibration.clock_domain_model(),
                              max_lanes_per_block=0)


class TestExperimentFallback:
    def test_env_knob_disables_batch(self, monkeypatch):
        from repro.experiments import ext_model_validation as mod
        monkeypatch.setenv(mod.EVENTSIM_BATCH_ENV, "off")
        assert not mod._batch_enabled()
        monkeypatch.setenv(mod.EVENTSIM_BATCH_ENV, "0")
        assert not mod._batch_enabled()
        monkeypatch.setenv(mod.EVENTSIM_BATCH_ENV, "1")
        assert mod._batch_enabled()
        monkeypatch.delenv(mod.EVENTSIM_BATCH_ENV)
        assert mod._batch_enabled()
