"""Targeted flow tests for Harmonia's observe/decide paths."""

import pytest

from repro.core.harmonia import HarmoniaPolicy
from repro.core.policy import LaunchContext
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_kernel


def make_policy(context, **kwargs):
    training = context.training
    return HarmoniaPolicy(context.platform.config_space, training.compute,
                          training.bandwidth, **kwargs)


def drive(context, policy, spec, iterations, start=0):
    configs = []
    for i in range(start, start + iterations):
        launch = LaunchContext(kernel_name=spec.name, iteration=i, spec=spec)
        config = policy.config_for(launch)
        result = context.platform.run_kernel(spec, config)
        policy.observe(launch, result)
        configs.append(config)
    return configs


class TestCgValidationFlow:
    def test_bad_jump_reverted_within_two_iterations(self, context):
        # Streamcluster: the MED compute jump costs ~30%; the validation
        # must restore the pre-jump configuration immediately.
        spec = get_kernel("Streamcluster.ComputeCost").base
        policy = make_policy(context)
        configs = drive(context, policy, spec, 4)
        boost = context.platform.config_space.max_config()
        assert configs[0] == boost          # first launch inherits boost
        assert configs[1] != boost          # the CG jump
        assert configs[2] == boost          # validation reverted it

    def test_good_jump_survives(self, context):
        spec = get_kernel("MaxFlops.MaxFlops").base
        policy = make_policy(context)
        configs = drive(context, policy, spec, 10)
        # MaxFlops's memory-bus cut is free: it must persist (modulo the
        # one-iteration starvation probe the FG loop spends checking it).
        assert configs[1].f_mem == pytest.approx(475 * MHZ)
        assert configs[-1].f_mem == pytest.approx(475 * MHZ)
        at_min = sum(1 for c in configs[1:]
                     if c.f_mem == pytest.approx(475 * MHZ))
        assert at_min >= 7


class TestFgPatienceFlow:
    def test_fg_waits_for_phase_stability(self, context):
        spec = get_kernel("Stencil.Stencil2D").base
        policy = make_policy(context, fg_patience=3)
        configs = drive(context, policy, spec, 4)
        # Launches 2 and 3 (after the CG jump at observation 0) must hold
        # the CG target until the patience threshold passes.
        assert configs[2] == configs[1]

    def test_impatient_fg_moves_sooner(self, context):
        spec = get_kernel("Stencil.Stencil2D").base
        patient = make_policy(context, fg_patience=4)
        impatient = make_policy(context, fg_patience=1)
        patient_configs = drive(context, patient, spec, 4)
        impatient_configs = drive(context, impatient, spec, 4)
        assert impatient_configs[2] != patient_configs[2] or \
            impatient_configs[3] != patient_configs[3]


class TestKernelIndependence:
    def test_kernels_tuned_independently(self, context):
        policy = make_policy(context)
        maxflops = get_kernel("MaxFlops.MaxFlops").base
        devmem = get_kernel("DeviceMemory.DeviceMemory").base
        for i in range(6):
            for spec in (maxflops, devmem):
                launch = LaunchContext(kernel_name=spec.name, iteration=i,
                                       spec=spec)
                config = policy.config_for(launch)
                policy.observe(launch,
                               context.platform.run_kernel(spec, config))
        mf_config = policy.history_for(maxflops.name).current_config
        dm_config = policy.history_for(devmem.name).current_config
        assert mf_config.f_mem == pytest.approx(475 * MHZ)
        assert dm_config.f_mem == pytest.approx(1375 * MHZ)


class TestParameterValidation:
    def test_bad_patience_rejected(self, context):
        with pytest.raises(ValueError):
            make_policy(context, fg_patience=0)

    def test_history_initial_config_is_boost(self, context):
        policy = make_policy(context)
        spec = get_kernel("LUD.Internal").base
        launch = LaunchContext(kernel_name=spec.name, iteration=0, spec=spec)
        assert policy.config_for(launch) == \
            context.platform.config_space.max_config()
