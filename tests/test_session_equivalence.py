"""Differential suite: the batched session engine vs the scalar loop.

The batched controller engine (:mod:`repro.runtime.session`) promises
**bitwise identity** with :class:`~repro.runtime.simulator.
ApplicationRunner` for every policy, on clean and noisy platforms, for
any lane composition and order. The scalar path is the oracle; every test
here runs both and compares traces, metrics and policy end-state
exactly — no tolerances.
"""

from __future__ import annotations

import pytest

from repro.core.harmonia import HarmoniaPolicy
from repro.platform.hd7970 import HardwarePlatform, make_hd7970_platform
from repro.runtime.session import BatchSessionRunner, SessionSpec
from repro.runtime.simulator import ApplicationRunner
from repro.sensitivity.binning import SensitivityBins
from repro.telemetry.handle import Telemetry


def _variant_policy(context) -> HarmoniaPolicy:
    """A retuned Harmonia variant: different bins, EWMA, phase threshold
    and FG pacing — exercises the group-signature path (it must never
    share a vector observer with the stock policy)."""
    training = context.training
    return HarmoniaPolicy(
        context.platform.config_space,
        training.compute,
        training.bandwidth,
        bins=SensitivityBins(low_edge=0.25, high_edge=0.65),
        monitor_alpha=0.6,
        phase_threshold=0.05,
        fg_patience=1,
        max_dithering=4,
        policy_name="harmonia-variant",
    )


POLICY_BUILDERS = (
    ("baseline", lambda ctx: ctx.baseline_policy()),
    ("cg-only", lambda ctx: ctx.cg_only_policy()),
    ("harmonia", lambda ctx: ctx.harmonia_policy()),
    ("dvfs-only", lambda ctx: ctx.dvfs_only_policy()),
    ("oracle", lambda ctx: ctx.oracle_policy()),
    ("variant", _variant_policy),
)

#: Phase-rich, iteration-heavy and stress workloads — the schedules that
#: exercise phase restarts, FG convergence and CG jumps hardest.
PROBE_APPS = ("Graph500", "miniFE", "MaxFlops", "Sort")


def _apps(context, names=PROBE_APPS):
    by_name = {app.name: app for app in context.applications}
    return [by_name[name] for name in names]


def _assert_runs_equal(scalar, batched):
    assert scalar.application == batched.application
    assert scalar.policy == batched.policy
    assert scalar.metrics == batched.metrics
    assert len(scalar.trace.records) == len(batched.trace.records)
    for expected, actual in zip(scalar.trace.records, batched.trace.records):
        assert expected.iteration == actual.iteration
        assert expected.kernel_name == actual.kernel_name
        assert expected.result == actual.result


def _assert_policy_state_equal(app, scalar_policy, batched_policy):
    """Post-run policy internals must match: the batched engine's numeric
    hand-back leaves exactly the scalar state behind."""
    if not isinstance(scalar_policy, HarmoniaPolicy):
        return
    assert scalar_policy.stats() == batched_policy.stats()
    seen = set()
    for _, kernel, _ in app.launches():
        if kernel.name in seen:
            continue
        seen.add(kernel.name)
        assert (scalar_policy.monitor.current(kernel.name)
                == batched_policy.monitor.current(kernel.name))


class TestPolicyEquivalence:
    @pytest.mark.parametrize("noisy", (False, True),
                             ids=("clean", "noisy"))
    @pytest.mark.parametrize(
        "build", [b for _, b in POLICY_BUILDERS],
        ids=[name for name, _ in POLICY_BUILDERS])
    def test_bitwise_identity(self, context, build, noisy):
        platform = (make_hd7970_platform(noise_std_fraction=0.05, seed=11)
                    if noisy else context.platform)
        for app in _apps(context):
            scalar_policy = build(context)
            batched_policy = build(context)
            scalar = ApplicationRunner(platform).run(app, scalar_policy)
            [batched] = BatchSessionRunner(platform).run_sessions(
                [SessionSpec(application=app, policy=batched_policy)]
            )
            _assert_runs_equal(scalar, batched)
            _assert_policy_state_equal(app, scalar_policy, batched_policy)

    def test_all_applications_harmonia(self, context):
        platform = context.platform
        for app in context.applications:
            scalar = ApplicationRunner(platform).run(
                app, context.harmonia_policy()
            )
            [batched] = BatchSessionRunner(platform).run(
                app, context.harmonia_policy()
            ),
            _assert_runs_equal(scalar, batched)


class TestLaneComposition:
    def test_mixed_lanes_match_scalar(self, context):
        """All six policies as concurrent lanes of one application."""
        platform = context.platform
        for app in _apps(context, ("Graph500", "Sort")):
            builders = [b for _, b in POLICY_BUILDERS]
            batched_policies = [b(context) for b in builders]
            outcomes = BatchSessionRunner(platform).run_sessions([
                SessionSpec(application=app, policy=policy)
                for policy in batched_policies
            ])
            for build, outcome in zip(builders, outcomes):
                scalar = ApplicationRunner(platform).run(app, build(context))
                _assert_runs_equal(scalar, outcome)

    def test_lane_permutation_invariance(self, context):
        """A lane's result must not depend on its position or peers."""
        platform = context.platform
        [app] = _apps(context, ("Graph500",))
        builders = [b for _, b in POLICY_BUILDERS]
        forward = BatchSessionRunner(platform).run_sessions([
            SessionSpec(application=app, policy=b(context))
            for b in builders
        ])
        backward = BatchSessionRunner(platform).run_sessions([
            SessionSpec(application=app, policy=b(context))
            for b in reversed(builders)
        ])
        for fwd, bwd in zip(forward, reversed(backward)):
            _assert_runs_equal(fwd, bwd)

    def test_per_lane_noisy_platforms(self, context):
        """Monte Carlo shape: one noisy platform per lane, one app."""
        [app] = _apps(context, ("miniFE",))
        platforms = [make_hd7970_platform(noise_std_fraction=0.05, seed=s)
                     for s in range(5)]
        outcomes = BatchSessionRunner(context.platform).run_sessions([
            SessionSpec(application=app, policy=context.harmonia_policy(),
                        platform=platform)
            for platform in platforms
        ])
        for platform, outcome in zip(platforms, outcomes):
            scalar = ApplicationRunner(platform).run(
                app, context.harmonia_policy()
            )
            _assert_runs_equal(scalar, outcome)

    def test_multiple_applications_in_one_call(self, context):
        apps = _apps(context, ("Sort", "MaxFlops"))
        sessions = [
            SessionSpec(application=app, policy=context.harmonia_policy())
            for app in apps
        ] + [
            SessionSpec(application=apps[0], policy=context.cg_only_policy())
        ]
        outcomes = BatchSessionRunner(context.platform).run_sessions(sessions)
        scalar0 = ApplicationRunner(context.platform).run(
            apps[0], context.harmonia_policy())
        scalar1 = ApplicationRunner(context.platform).run(
            apps[1], context.harmonia_policy())
        scalar2 = ApplicationRunner(context.platform).run(
            apps[0], context.cg_only_policy())
        _assert_runs_equal(scalar0, outcomes[0])
        _assert_runs_equal(scalar1, outcomes[1])
        _assert_runs_equal(scalar2, outcomes[2])


class TestScalarFallbacks:
    """Lanes the engine cannot prove equivalent must still be exact —
    they take the scalar path and the caller can't tell the difference."""

    def test_duplicate_policy_instance_goes_scalar(self, context):
        [app] = _apps(context, ("Sort",))
        shared = context.harmonia_policy()
        outcomes = BatchSessionRunner(context.platform).run_sessions([
            SessionSpec(application=app, policy=shared),
            SessionSpec(application=app, policy=shared),
        ])
        scalar = ApplicationRunner(context.platform).run(
            app, context.harmonia_policy())
        _assert_runs_equal(scalar, outcomes[0])
        _assert_runs_equal(scalar, outcomes[1])

    def test_reset_policy_false_goes_scalar(self, context):
        [app] = _apps(context, ("Sort",))
        scalar_policy = context.harmonia_policy()
        batched_policy = context.harmonia_policy()
        runner = ApplicationRunner(context.platform)
        runner.run(app, scalar_policy)
        scalar = runner.run(app, scalar_policy, reset_policy=False)
        engine = BatchSessionRunner(context.platform)
        engine.run(app, batched_policy)
        [batched] = engine.run_sessions(
            [SessionSpec(application=app, policy=batched_policy)],
            reset_policy=False,
        )
        _assert_runs_equal(scalar, batched)

    def test_telemetry_enabled_runner_goes_scalar(self, context):
        [app] = _apps(context, ("Sort",))
        scalar = ApplicationRunner(context.platform).run(
            app, context.harmonia_policy())
        [batched] = BatchSessionRunner(
            context.platform, Telemetry()
        ).run_sessions(
            [SessionSpec(application=app, policy=context.harmonia_policy())]
        )
        _assert_runs_equal(scalar, batched)

    def test_platform_subclass_goes_scalar(self, context):
        [app] = _apps(context, ("Sort",))

        class _GovernedPlatform(HardwarePlatform):
            pass

        governed = make_hd7970_platform()
        governed.__class__ = _GovernedPlatform
        scalar = ApplicationRunner(governed).run(
            app, context.harmonia_policy())
        [batched] = BatchSessionRunner(governed).run_sessions(
            [SessionSpec(application=app, policy=context.harmonia_policy())]
        )
        _assert_runs_equal(scalar, batched)

    def test_telemetry_enabled_policy_goes_generic(self, context):
        """A policy with live telemetry is not fast-path eligible; it
        still batches at the platform layer and stays exact."""
        [app] = _apps(context, ("Graph500",))
        telemetry = Telemetry()
        scalar = ApplicationRunner(context.platform).run(
            app, context.harmonia_policy(telemetry=Telemetry()))
        [batched] = BatchSessionRunner(context.platform).run_sessions(
            [SessionSpec(application=app,
                         policy=context.harmonia_policy(telemetry=telemetry))]
        )
        _assert_runs_equal(scalar, batched)


class TestHarnessParity:
    def test_run_matrix_batched_matches_scalar(self, context):
        apps = _apps(context, ("Sort", "Graph500"))
        runner = ApplicationRunner(context.platform)
        scalar = runner.run_matrix(
            apps,
            policies=[context.harmonia_policy(), context.cg_only_policy()],
            batched=False,
        )
        batched = runner.run_matrix(
            apps,
            policies=[context.harmonia_policy(), context.cg_only_policy()],
            batched=True,
        )
        assert scalar.keys() == batched.keys()
        for app_name, per_app in scalar.items():
            assert per_app.keys() == batched[app_name].keys()
            for policy_name, run in per_app.items():
                _assert_runs_equal(run, batched[app_name][policy_name])

    def test_evaluate_batched_matches_scalar(self, context):
        from repro.analysis.evaluation import EvaluationHarness
        apps = _apps(context, ("Sort", "miniFE"))
        scalar = EvaluationHarness(
            context.platform, context.baseline_policy()
        ).evaluate(apps, [context.harmonia_policy()], batched=False)
        batched = EvaluationHarness(
            context.platform, context.baseline_policy()
        ).evaluate(apps, [context.harmonia_policy()], batched=True)
        assert scalar.comparisons == batched.comparisons

    def test_evaluate_montecarlo_batched_matches_scalar(self, context):
        import numpy as np
        from repro.analysis.evaluation import EvaluationHarness
        apps = _apps(context, ("Sort", "Graph500"))
        harness = EvaluationHarness(context.platform,
                                    context.baseline_policy())
        scalar = harness.evaluate_montecarlo(
            apps, context.baseline_policy, [context.harmonia_policy],
            seeds=4, batched=False,
        )
        batched = harness.evaluate_montecarlo(
            apps, context.baseline_policy, [context.harmonia_policy],
            seeds=4, batched=True,
        )
        for a, b in zip(scalar.comparisons, batched.comparisons):
            assert a.application == b.application and a.policy == b.policy
            for side in ("baseline", "candidate"):
                for field in ("time_samples", "energy_samples",
                              "avg_power_samples", "ed2_samples"):
                    np.testing.assert_array_equal(
                        getattr(getattr(a, side), field),
                        getattr(getattr(b, side), field),
                    )
