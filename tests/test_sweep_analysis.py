"""Unit tests for :mod:`repro.analysis.sweep` and :mod:`repro.analysis.balance`."""

import pytest

from repro.analysis.balance import find_balance_point, knee_of_curve
from repro.analysis.sweep import ConfigSweep
from repro.errors import AnalysisError
from repro.units import MHZ
from repro.workloads.registry import get_kernel


@pytest.fixture(scope="module")
def devmem_sweep(platform):
    return ConfigSweep(platform, get_kernel("DeviceMemory.DeviceMemory").base)


@pytest.fixture(scope="module")
def maxflops_sweep(platform):
    return ConfigSweep(platform, get_kernel("MaxFlops.MaxFlops").base)


class TestSweep:
    def test_covers_full_space(self, devmem_sweep, platform):
        assert len(devmem_sweep) == len(platform.config_space)

    def test_reference_point_is_min_config(self, devmem_sweep, platform):
        assert devmem_sweep.reference_point().config == \
            platform.config_space.min_config()

    def test_curve_extraction(self, devmem_sweep):
        curve = devmem_sweep.curve_for_memory_config(1375 * MHZ)
        assert len(curve) == 64  # 8 CU counts x 8 frequencies
        opbs = [p.platform_ops_per_byte for p in curve]
        assert opbs == sorted(opbs)

    def test_unknown_memory_config_raises(self, devmem_sweep):
        with pytest.raises(AnalysisError):
            devmem_sweep.curve_for_memory_config(999 * MHZ)

    def test_power_vs_memory_curve(self, maxflops_sweep):
        curve = maxflops_sweep.power_vs_memory(32, 1000 * MHZ)
        assert len(curve) == 7
        powers = [p.card_power for p in curve]
        assert powers == sorted(powers)  # power rises with bus frequency

    def test_optima_are_consistent(self, devmem_sweep):
        perf = devmem_sweep.optimum_performance()
        energy = devmem_sweep.optimum_energy()
        ed2_pt = devmem_sweep.optimum_ed2()
        assert energy.energy <= ed2_pt.energy
        assert perf.time <= ed2_pt.time
        assert ed2_pt.ed2 <= perf.ed2
        assert ed2_pt.ed2 <= energy.ed2

    def test_sweep_point_metrics(self, maxflops_sweep):
        point = maxflops_sweep.optimum_performance()
        assert point.ed == pytest.approx(point.energy * point.time)
        assert point.ed2 == pytest.approx(point.energy * point.time ** 2)
        assert point.performance == pytest.approx(1.0 / point.time)


class TestBalance:
    def test_devicememory_knee_is_interior(self, devmem_sweep):
        # Figure 3b: the memory stress benchmark saturates well before
        # maximum compute.
        knee = find_balance_point(devmem_sweep, 1375 * MHZ)
        curve = devmem_sweep.curve_for_memory_config(1375 * MHZ)
        assert knee.platform_ops_per_byte < curve[-1].platform_ops_per_byte

    def test_maxflops_knee_is_the_last_point(self, maxflops_sweep):
        # Figure 3a: linear scaling -> the knee is the rightmost point.
        knee = find_balance_point(maxflops_sweep, 1375 * MHZ)
        curve = maxflops_sweep.curve_for_memory_config(1375 * MHZ)
        peak = max(p.performance for p in curve)
        assert knee.performance >= 0.98 * peak

    def test_knee_near_paper_value(self, devmem_sweep, platform):
        # Paper: DeviceMemory's knee at ~4x the minimum config's ops/byte.
        reference = devmem_sweep.reference_point()
        knee = find_balance_point(devmem_sweep, 1375 * MHZ)
        normalized = (knee.platform_ops_per_byte
                      / reference.platform_ops_per_byte)
        assert 2.5 < normalized < 6.0

    def test_each_memory_config_has_its_own_knee(self, devmem_sweep, platform):
        # Section 3.2: "Each memory configuration has a different balance
        # point". Lower bandwidth saturates at lower compute throughput.
        knees = [
            find_balance_point(devmem_sweep, f_mem).config
            for f_mem in platform.config_space.memory_frequencies
        ]
        compute_throughputs = [k.n_cu * k.f_cu for k in knees]
        assert compute_throughputs[0] < compute_throughputs[-1]

    def test_empty_curve_raises(self):
        with pytest.raises(AnalysisError):
            knee_of_curve([])

    def test_negative_tolerance_raises(self, devmem_sweep):
        curve = devmem_sweep.curve_for_memory_config(1375 * MHZ)
        with pytest.raises(AnalysisError):
            knee_of_curve(curve, saturation_tolerance=-0.1)
