"""Unit tests for :mod:`repro.memory.banks`."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CalibrationError
from repro.memory.banks import (
    AccessPattern,
    BankTiming,
    DEFAULT_GDDR5_BANK_TIMING,
    REFERENCE_PATTERNS,
    pattern_for_efficiency,
    scheduling_efficiency,
)
from repro.workloads.registry import all_kernels


class TestSchedulingEfficiency:
    def test_perfect_stream_approaches_pin_bandwidth(self):
        pattern = AccessPattern(row_hit_rate=1.0, write_fraction=0.0)
        assert scheduling_efficiency(pattern) > 0.99

    def test_row_misses_cost_bandwidth(self):
        high = scheduling_efficiency(AccessPattern(row_hit_rate=0.9))
        low = scheduling_efficiency(AccessPattern(row_hit_rate=0.3))
        assert low < high

    def test_bank_spread_hides_miss_penalty(self):
        narrow = scheduling_efficiency(
            AccessPattern(row_hit_rate=0.5, bank_spread=0.25)
        )
        wide = scheduling_efficiency(
            AccessPattern(row_hit_rate=0.5, bank_spread=1.0)
        )
        assert wide > narrow

    def test_turnarounds_cost_bandwidth(self):
        read_only = scheduling_efficiency(
            AccessPattern(row_hit_rate=0.8, write_fraction=0.0)
        )
        mixed = scheduling_efficiency(
            AccessPattern(row_hit_rate=0.8, write_fraction=0.5)
        )
        assert mixed < read_only

    def test_explicit_switch_rate_overrides_estimate(self):
        batched = AccessPattern(row_hit_rate=0.8, write_fraction=0.5,
                                burst_switch_rate=0.0)
        assert scheduling_efficiency(batched) > scheduling_efficiency(
            AccessPattern(row_hit_rate=0.8, write_fraction=0.5)
        )

    def test_faw_binds_for_miss_heavy_streams(self):
        tight_faw = BankTiming(faw_cycles=64.0)
        loose_faw = BankTiming(faw_cycles=16.0)
        pattern = AccessPattern(row_hit_rate=0.1, bank_spread=1.0)
        assert scheduling_efficiency(pattern, tight_faw) < \
            scheduling_efficiency(pattern, loose_faw)

    @given(
        hit=st.floats(min_value=0.0, max_value=1.0),
        write=st.floats(min_value=0.0, max_value=1.0),
        spread=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_efficiency_bounded(self, hit, write, spread):
        pattern = AccessPattern(row_hit_rate=hit, write_fraction=write,
                                bank_spread=spread)
        assert 0.0 < scheduling_efficiency(pattern) <= 1.0

    @given(hit=st.floats(min_value=0.0, max_value=0.98))
    def test_efficiency_monotone_in_locality(self, hit):
        lower = scheduling_efficiency(AccessPattern(row_hit_rate=hit))
        higher = scheduling_efficiency(
            AccessPattern(row_hit_rate=min(1.0, hit + 0.02))
        )
        assert higher >= lower


class TestReferencePatterns:
    def test_ordering(self):
        # streaming > blocked > gather > pointer_chase, as the suite's
        # efficiency constants assume.
        efficiencies = {
            name: scheduling_efficiency(pattern)
            for name, pattern in REFERENCE_PATTERNS.items()
        }
        assert efficiencies["streaming"] > efficiencies["blocked"] > \
            efficiencies["gather"] > efficiencies["pointer_chase"]

    def test_streaming_matches_suite_constants(self):
        # The streaming reference must justify ~0.85-0.95 efficiencies.
        assert scheduling_efficiency(REFERENCE_PATTERNS["streaming"]) > 0.85

    def test_pointer_chase_matches_suite_constants(self):
        # The pointer-chase reference must justify ~0.45-0.55 efficiencies.
        value = scheduling_efficiency(REFERENCE_PATTERNS["pointer_chase"])
        assert 0.35 < value < 0.6


class TestInversion:
    @pytest.mark.parametrize("efficiency", [0.5, 0.6, 0.7, 0.8, 0.9])
    def test_roundtrip(self, efficiency):
        pattern = pattern_for_efficiency(efficiency)
        achieved = scheduling_efficiency(pattern)
        assert achieved == pytest.approx(efficiency, abs=0.02)

    def test_every_suite_constant_is_realizable(self):
        # Audit: each kernel's access_efficiency corresponds to a physical
        # row-hit rate under a plausible mix.
        for kernel in all_kernels():
            pattern = pattern_for_efficiency(kernel.base.access_efficiency)
            assert 0.0 <= pattern.row_hit_rate <= 1.0

    def test_unreachable_efficiency_raises(self):
        with pytest.raises(CalibrationError):
            # Even perfect row locality cannot beat the turnaround floor
            # of a write-heavy mix.
            pattern_for_efficiency(0.99, write_fraction=0.5)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(CalibrationError):
            pattern_for_efficiency(0.0)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(row_hit_rate=1.5),
        dict(row_hit_rate=0.5, write_fraction=-0.1),
        dict(row_hit_rate=0.5, bank_spread=0.0),
        dict(row_hit_rate=0.5, burst_switch_rate=1.5),
    ])
    def test_pattern_validation(self, kwargs):
        with pytest.raises(CalibrationError):
            AccessPattern(**kwargs)

    def test_timing_validation(self):
        with pytest.raises(CalibrationError):
            BankTiming(burst_cycles=0.0)
        with pytest.raises(CalibrationError):
            BankTiming(banks=0)
