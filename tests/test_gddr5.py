"""Unit tests for :mod:`repro.memory.gddr5`."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CalibrationError
from repro.memory.gddr5 import Gddr5Timing, HD7970_GDDR5_TIMING
from repro.units import MHZ, NS


class TestAccessLatency:
    def test_latency_at_max_frequency(self):
        latency = HD7970_GDDR5_TIMING.access_latency(1375 * MHZ)
        assert 300 * NS < latency < 400 * NS

    def test_latency_at_min_frequency(self):
        latency = HD7970_GDDR5_TIMING.access_latency(475 * MHZ)
        assert 450 * NS < latency < 600 * NS

    def test_latency_grows_sublinearly_as_bus_slows(self):
        # Halving the bus frequency must far-less-than-double the latency
        # (the fixed array component dominates) — this is why low-occupancy
        # kernels are insensitive to memory frequency (Figure 7).
        fast = HD7970_GDDR5_TIMING.access_latency(1375 * MHZ)
        slow = HD7970_GDDR5_TIMING.access_latency(1375 * MHZ / 2)
        assert slow < 1.5 * fast

    @given(st.floats(min_value=100e6, max_value=2e9))
    def test_latency_above_fixed_floor(self, f_mem):
        latency = HD7970_GDDR5_TIMING.access_latency(f_mem)
        assert latency > HD7970_GDDR5_TIMING.fixed_latency

    @given(st.floats(min_value=100e6, max_value=1.9e9))
    def test_latency_monotone_decreasing_in_frequency(self, f_mem):
        assert HD7970_GDDR5_TIMING.access_latency(f_mem) > \
            HD7970_GDDR5_TIMING.access_latency(f_mem * 1.05)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(CalibrationError):
            HD7970_GDDR5_TIMING.access_latency(0.0)


class TestValidation:
    def test_rejects_bad_fixed_latency(self):
        with pytest.raises(CalibrationError):
            Gddr5Timing(fixed_latency=0.0, bus_cycles=100, burst_bytes=64)

    def test_rejects_bad_bus_cycles(self):
        with pytest.raises(CalibrationError):
            Gddr5Timing(fixed_latency=1e-7, bus_cycles=0, burst_bytes=64)

    def test_rejects_bad_burst(self):
        with pytest.raises(CalibrationError):
            Gddr5Timing(fixed_latency=1e-7, bus_cycles=100, burst_bytes=0)

    def test_default_burst_is_l2_line(self):
        assert HD7970_GDDR5_TIMING.burst_bytes == 64
