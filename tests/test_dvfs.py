"""Unit tests for :mod:`repro.gpu.dvfs` (paper Table 1)."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.dvfs import DvfsState, GpuDvfsTable, HD7970_DVFS_TABLE
from repro.units import GHZ, MHZ


class TestPaperTable1:
    """The published DPM states must be reproduced exactly."""

    @pytest.mark.parametrize("name,freq_mhz,volts", [
        ("DPM0", 300, 0.85),
        ("DPM1", 500, 0.95),
        ("DPM2", 925, 1.17),
    ])
    def test_dpm_states(self, name, freq_mhz, volts):
        state = HD7970_DVFS_TABLE.state_named(name)
        assert state.frequency == pytest.approx(freq_mhz * MHZ)
        assert state.voltage == pytest.approx(volts)

    def test_boost_state(self):
        boost = HD7970_DVFS_TABLE.state_named("BOOST")
        assert boost.frequency == pytest.approx(1 * GHZ)
        assert boost.voltage == pytest.approx(1.19)

    def test_range(self):
        assert HD7970_DVFS_TABLE.min_frequency == pytest.approx(300 * MHZ)
        assert HD7970_DVFS_TABLE.max_frequency == pytest.approx(1 * GHZ)

    def test_unknown_state_raises(self):
        with pytest.raises(ConfigurationError):
            HD7970_DVFS_TABLE.state_named("DPM9")


class TestVoltageInterpolation:
    def test_exact_points(self):
        for state in HD7970_DVFS_TABLE.states:
            assert HD7970_DVFS_TABLE.voltage_at(state.frequency) == \
                pytest.approx(state.voltage)

    def test_midpoint_between_dpm0_and_dpm1(self):
        v = HD7970_DVFS_TABLE.voltage_at(400 * MHZ)
        assert v == pytest.approx(0.90)

    def test_monotonically_non_decreasing(self):
        freqs = [f * MHZ for f in range(300, 1001, 25)]
        volts = [HD7970_DVFS_TABLE.voltage_at(f) for f in freqs]
        assert all(b >= a for a, b in zip(volts, volts[1:]))

    def test_clamped_below(self):
        assert HD7970_DVFS_TABLE.voltage_at(100 * MHZ) == pytest.approx(0.85)

    def test_clamped_above(self):
        assert HD7970_DVFS_TABLE.voltage_at(2 * GHZ) == pytest.approx(1.19)

    def test_non_positive_frequency_raises(self):
        with pytest.raises(ConfigurationError):
            HD7970_DVFS_TABLE.voltage_at(0.0)


class TestTableValidation:
    def test_states_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            GpuDvfsTable(states=(
                DvfsState("A", 500 * MHZ, 0.9),
                DvfsState("B", 300 * MHZ, 0.8),
            ))

    def test_states_must_be_distinct(self):
        with pytest.raises(ConfigurationError):
            GpuDvfsTable(states=(
                DvfsState("A", 500 * MHZ, 0.9),
                DvfsState("B", 500 * MHZ, 0.95),
            ))

    def test_needs_two_states(self):
        with pytest.raises(ConfigurationError):
            GpuDvfsTable(states=(DvfsState("A", 500 * MHZ, 0.9),))

    def test_state_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            DvfsState("X", 0.0, 1.0)

    def test_state_rejects_bad_voltage(self):
        with pytest.raises(ConfigurationError):
            DvfsState("X", 1 * GHZ, -0.1)
