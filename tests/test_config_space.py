"""Unit and property tests for :mod:`repro.gpu.config` (Section 3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.gpu.architecture import HD7970
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.units import GHZ, MHZ

SPACE = ConfigSpace(HD7970)


class TestCardinality:
    def test_about_450_configurations(self):
        # Section 3.1: "approximately 450" = 8 x 8 x 7 = 448.
        assert len(SPACE) == 448

    def test_iteration_yields_exactly_len(self):
        assert len(list(SPACE)) == len(SPACE)

    def test_all_iterated_configs_are_members(self):
        for config in SPACE:
            assert config in SPACE

    def test_all_iterated_configs_are_distinct(self):
        configs = list(SPACE)
        assert len(set(configs)) == len(configs)


class TestCorners:
    def test_min_config(self):
        # The paper's normalization reference: 4 CU, 300 MHz, 90 GB/s bus.
        config = SPACE.min_config()
        assert config.n_cu == 4
        assert config.f_cu == pytest.approx(300 * MHZ)
        assert config.f_mem == pytest.approx(475 * MHZ)

    def test_max_config(self):
        config = SPACE.max_config()
        assert config.n_cu == 32
        assert config.f_cu == pytest.approx(1 * GHZ)
        assert config.f_mem == pytest.approx(1375 * MHZ)


class TestValidation:
    def test_valid_config_passes(self):
        config = HardwareConfig(16, 700 * MHZ, 925 * MHZ)
        assert SPACE.validate(config) is config

    def test_bad_cu_count(self):
        with pytest.raises(ConfigurationError, match="CU count"):
            SPACE.validate(HardwareConfig(5, 700 * MHZ, 925 * MHZ))

    def test_bad_compute_frequency(self):
        with pytest.raises(ConfigurationError, match="compute frequency"):
            SPACE.validate(HardwareConfig(16, 750 * MHZ, 925 * MHZ))

    def test_bad_memory_frequency(self):
        with pytest.raises(ConfigurationError, match="memory frequency"):
            SPACE.validate(HardwareConfig(16, 700 * MHZ, 900 * MHZ))


class TestStepping:
    def test_step_cu_down(self):
        config = SPACE.max_config()
        assert SPACE.step_cu(config, -1).n_cu == 28

    def test_step_cu_clamps_at_min(self):
        config = SPACE.min_config()
        assert SPACE.step_cu(config, -1) == config

    def test_step_cu_clamps_at_max(self):
        config = SPACE.max_config()
        assert SPACE.step_cu(config, +1) == config

    def test_step_f_cu_is_100mhz(self):
        config = SPACE.max_config()
        stepped = SPACE.step_f_cu(config, -1)
        assert config.f_cu - stepped.f_cu == pytest.approx(100 * MHZ)

    def test_step_f_mem_is_150mhz(self):
        config = SPACE.max_config()
        stepped = SPACE.step_f_mem(config, -1)
        assert config.f_mem - stepped.f_mem == pytest.approx(150 * MHZ)

    def test_step_only_touches_its_tunable(self):
        config = SPACE.max_config()
        stepped = SPACE.step_f_mem(config, -2)
        assert stepped.n_cu == config.n_cu
        assert stepped.f_cu == config.f_cu

    def test_step_rejects_off_grid_config(self):
        with pytest.raises(ConfigurationError):
            SPACE.step_cu(HardwareConfig(5, 700 * MHZ, 925 * MHZ), -1)

    @given(st.integers(min_value=-10, max_value=10),
           st.integers(min_value=-10, max_value=10),
           st.integers(min_value=-10, max_value=10))
    def test_stepping_stays_on_grid(self, d_cu, d_f, d_m):
        config = HardwareConfig(16, 700 * MHZ, 925 * MHZ)
        config = SPACE.step_cu(config, d_cu)
        config = SPACE.step_f_cu(config, d_f)
        config = SPACE.step_f_mem(config, d_m)
        assert config in SPACE


class TestSnapAndFractions:
    def test_snap_picks_nearest(self):
        config = SPACE.snap(n_cu=16, f_cu=740 * MHZ, f_mem=1010 * MHZ)
        assert config.n_cu == 16
        assert config.f_cu == pytest.approx(700 * MHZ)
        assert config.f_mem == pytest.approx(1075 * MHZ)

    @given(st.integers(min_value=1, max_value=40),
           st.floats(min_value=1e8, max_value=1.5e9),
           st.floats(min_value=3e8, max_value=1.6e9))
    def test_snap_always_on_grid(self, n_cu, f_cu, f_mem):
        assert SPACE.snap(n_cu, f_cu, f_mem) in SPACE

    def test_fraction_zero_is_min(self):
        assert SPACE.fraction_to_grid(0, 0, 0) == SPACE.min_config()

    def test_fraction_one_is_max(self):
        assert SPACE.fraction_to_grid(1, 1, 1) == SPACE.max_config()

    def test_fraction_half(self):
        config = SPACE.fraction_to_grid(0.5, 0.5, 0.5)
        assert config.n_cu == 20
        assert config.f_mem == pytest.approx(925 * MHZ)

    @given(st.floats(min_value=-1, max_value=2),
           st.floats(min_value=-1, max_value=2),
           st.floats(min_value=-1, max_value=2))
    def test_fractions_always_on_grid(self, a, b, c):
        assert SPACE.fraction_to_grid(a, b, c) in SPACE


class TestOpsPerByte:
    def test_monotone_in_compute(self):
        base = SPACE.min_config()
        more_compute = base.replace(n_cu=32)
        assert SPACE.platform_ops_per_byte(more_compute) > \
            SPACE.platform_ops_per_byte(base)

    def test_antitone_in_bandwidth(self):
        base = SPACE.min_config()
        more_bw = base.replace(f_mem=1375 * MHZ)
        assert SPACE.platform_ops_per_byte(more_bw) < \
            SPACE.platform_ops_per_byte(base)

    def test_max_config_value(self):
        # 32 x 64 x 1e9 / 264e9 ~ 7.76 ops/byte at the maximum config.
        value = SPACE.platform_ops_per_byte(SPACE.max_config())
        assert value == pytest.approx(2048e9 / 264e9, rel=1e-3)


class TestHardwareConfig:
    def test_replace_none_keeps(self):
        config = HardwareConfig(16, 700 * MHZ, 925 * MHZ)
        assert config.replace() == config

    def test_replace_single_field(self):
        config = HardwareConfig(16, 700 * MHZ, 925 * MHZ)
        replaced = config.replace(n_cu=8)
        assert replaced.n_cu == 8
        assert replaced.f_cu == config.f_cu

    def test_describe(self):
        config = HardwareConfig(16, 700 * MHZ, 925 * MHZ)
        assert config.describe() == "16CU@700MHz/mem@925MHz"

    def test_components(self):
        config = HardwareConfig(16, 700 * MHZ, 925 * MHZ)
        assert config.compute.n_cu == 16
        assert config.memory.f_mem == pytest.approx(925 * MHZ)

    def test_hashable(self):
        a = HardwareConfig(16, 700 * MHZ, 925 * MHZ)
        b = HardwareConfig(16, 700 * MHZ, 925 * MHZ)
        assert len({a, b}) == 1
