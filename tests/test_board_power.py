"""Unit tests for :mod:`repro.power.board` (Section 6, Equation 4)."""

import pytest

from repro.errors import CalibrationError
from repro.perf.result import PowerSample
from repro.power.board import BoardPowerModel
from repro.platform.calibration import default_calibration
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_kernel


@pytest.fixture(scope="module")
def board():
    cal = default_calibration()
    return BoardPowerModel(
        gpu=cal.gpu_power_model(),
        memory=cal.memory_power_model(),
        other_power=cal.other_power,
    )


class TestEquation4:
    def test_card_is_sum_of_components(self, board, platform):
        result = platform.run_kernel(
            get_kernel("XSBench.CalculateXS").base, platform.baseline_config()
        )
        # GPUCardPwr = GPUPwr + MemPwr + OtherPwr (Equation 4 rearranged).
        assert result.power.card == pytest.approx(
            result.power.gpu + result.power.memory + result.power.other
        )

    def test_power_sample_card_property(self):
        sample = PowerSample(gpu=100.0, memory=40.0, other=14.0)
        assert sample.card == pytest.approx(154.0)

    def test_sample_uses_counter_activity(self, board, platform):
        spec = get_kernel("MaxFlops.MaxFlops").base
        busy = platform.run_kernel(spec, platform.baseline_config())
        idle_counters = busy.counters  # reuse structure, vary inputs below
        sample_busy = board.sample(busy.config, busy.counters,
                                   busy.achieved_bandwidth)
        assert sample_busy.gpu > 80.0

    def test_memory_power_tracks_bandwidth(self, board, platform):
        config = platform.baseline_config()
        spec = get_kernel("DeviceMemory.DeviceMemory").base
        result = platform.run_kernel(spec, config)
        quiet = board.sample(config, result.counters, 0.0)
        loaded = board.sample(config, result.counters,
                              result.achieved_bandwidth)
        assert loaded.memory > quiet.memory

    def test_negative_other_power_rejected(self):
        cal = default_calibration()
        with pytest.raises(CalibrationError):
            BoardPowerModel(gpu=cal.gpu_power_model(),
                            memory=cal.memory_power_model(),
                            other_power=-1.0)
