"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()  # every example prints its findings


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "graph500_adaptation.py",
            "custom_workload.py", "design_space_exploration.py",
            "measurement_rig.py", "roofline_and_thermal.py"} <= names
