"""Tests for :mod:`repro.analysis.pareto`."""

import pytest

from repro.analysis.pareto import distance_to_frontier, pareto_frontier
from repro.analysis.sweep import ConfigSweep
from repro.workloads.registry import get_kernel


@pytest.fixture(scope="module")
def lud_sweep(platform):
    return ConfigSweep(platform, get_kernel("LUD.Internal").base)


@pytest.fixture(scope="module")
def lud_frontier(lud_sweep):
    return pareto_frontier(lud_sweep)


class TestFrontier:
    def test_frontier_is_selective(self, lud_frontier):
        assert 1 <= len(lud_frontier) < lud_frontier.swept
        assert lud_frontier.fraction_on_frontier < 0.5

    def test_no_point_dominates_another(self, lud_frontier):
        points = lud_frontier.points
        for a in points:
            for b in points:
                if a is b:
                    continue
                dominates = (
                    a.performance >= b.performance
                    and a.card_power <= b.card_power
                    and (a.performance > b.performance
                         or a.card_power < b.card_power)
                )
                assert not dominates

    def test_frontier_ordered_by_power(self, lud_frontier):
        powers = [p.card_power for p in lud_frontier.points]
        assert powers == sorted(powers)

    def test_performance_rises_along_frontier(self, lud_frontier):
        perfs = [p.performance for p in lud_frontier.points]
        assert perfs == sorted(perfs)

    def test_metric_optima_lie_on_frontier(self, lud_sweep, lud_frontier):
        # Figure 6's three optimization targets must all be non-dominated.
        for point in (lud_sweep.optimum_performance(),
                      lud_sweep.optimum_ed2()):
            assert lud_frontier.contains_config(point.config)

    def test_fastest_matches_sweep_optimum(self, lud_sweep, lud_frontier):
        assert lud_frontier.fastest().config == \
            lud_sweep.optimum_performance().config

    def test_ed2_knee_matches_sweep(self, lud_sweep, lud_frontier):
        assert lud_frontier.knee_by_ed2().config == \
            lud_sweep.optimum_ed2().config


class TestDistance:
    def test_frontier_point_has_zero_distance(self, lud_frontier, platform):
        point = lud_frontier.knee_by_ed2()
        gap = distance_to_frontier(lud_frontier, point.config,
                                   result=point.result)
        assert gap == pytest.approx(0.0, abs=1e-9)

    def test_dominated_point_has_positive_distance(self, lud_frontier,
                                                   platform, space):
        # Max power but throttled compute: clearly dominated for LUD.
        config = space.max_config().replace(f_cu=space.compute_frequencies[0])
        gap = distance_to_frontier(lud_frontier, config, platform=platform)
        assert gap > 0.2

    def test_harmonia_settles_near_frontier(self, context, lud_frontier):
        # The configuration Harmonia settles LUD.Internal at must be close
        # to frontier-optimal for its power.
        from repro.runtime.simulator import ApplicationRunner
        app = context.application("LUD")
        run = ApplicationRunner(context.platform).run(
            app, context.harmonia_policy()
        )
        records = run.trace.records_for_kernel("LUD.Internal")
        final = records[-1]
        gap = distance_to_frontier(lud_frontier, final.config,
                                   result=final.result)
        assert gap < 0.10

    def test_requires_platform_or_result(self, lud_frontier, space):
        from repro.errors import AnalysisError
        with pytest.raises(AnalysisError):
            distance_to_frontier(lud_frontier, space.max_config())
