"""Unit tests for :mod:`repro.power.gpu_power`."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CalibrationError
from repro.platform.calibration import default_calibration
from repro.units import GHZ, MHZ

MODEL = default_calibration().gpu_power_model()


class TestChipPower:
    def test_boost_magnitude_under_compute_load(self):
        # Calibration target: ~130-170 W chip power for a fully busy GPU.
        power = MODEL.chip_power(32, 1 * GHZ, activity=1.0)
        assert 120.0 < power < 180.0

    def test_power_gating_removes_cu_power(self):
        full = MODEL.chip_power(32, 1 * GHZ, activity=0.5)
        gated = MODEL.chip_power(4, 1 * GHZ, activity=0.5)
        # 28 of 32 CUs gated: the chip should lose well over half its power.
        assert gated < 0.45 * full

    def test_dvfs_scaling_is_superlinear(self):
        # Voltage drops with frequency, so power falls faster than f.
        fast = MODEL.chip_power(32, 1 * GHZ, activity=0.8)
        slow = MODEL.chip_power(32, 500 * MHZ, activity=0.8)
        assert slow < 0.5 * fast

    def test_activity_scales_dynamic_power(self):
        busy = MODEL.chip_power(32, 1 * GHZ, activity=1.0)
        idle = MODEL.chip_power(32, 1 * GHZ, activity=0.1)
        assert idle < busy
        assert idle > 0.1 * busy  # leakage + uncore floor remains


class TestActivityFactor:
    def test_fully_busy_compute(self):
        activity = MODEL.activity_factor(100.0, 100.0, 0.0)
        assert activity == pytest.approx(1.0)

    def test_divergence_reduces_activity(self):
        coherent = MODEL.activity_factor(100.0, 100.0, 0.0)
        divergent = MODEL.activity_factor(100.0, 30.0, 0.0)
        assert divergent < coherent

    def test_memory_work_contributes(self):
        quiet = MODEL.activity_factor(10.0, 100.0, 0.0)
        memory_busy = MODEL.activity_factor(10.0, 100.0, 100.0)
        assert memory_busy > quiet

    def test_floor(self):
        assert MODEL.activity_factor(0.0, 0.0, 0.0) == \
            pytest.approx(MODEL.min_activity)

    def test_rejects_out_of_range_counter(self):
        with pytest.raises(CalibrationError):
            MODEL.activity_factor(120.0, 50.0, 50.0)

    @given(
        busy=st.floats(min_value=0, max_value=100),
        util=st.floats(min_value=0, max_value=100),
        mem=st.floats(min_value=0, max_value=100),
    )
    def test_activity_bounded(self, busy, util, mem):
        activity = MODEL.activity_factor(busy, util, mem)
        assert MODEL.min_activity <= activity <= 1.0


class TestValidation:
    def test_rejects_zero_cus(self):
        with pytest.raises(CalibrationError):
            MODEL.chip_power(0, 1 * GHZ, 0.5)

    def test_rejects_zero_frequency(self):
        with pytest.raises(CalibrationError):
            MODEL.chip_power(32, 0.0, 0.5)

    def test_rejects_bad_activity(self):
        with pytest.raises(CalibrationError):
            MODEL.chip_power(32, 1 * GHZ, 1.5)


class TestProperties:
    @given(
        n_cu=st.sampled_from([4, 8, 16, 24, 32]),
        f_ratio=st.floats(min_value=0.3, max_value=1.0),
        activity=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_power_positive(self, n_cu, f_ratio, activity):
        assert MODEL.chip_power(n_cu, f_ratio * GHZ, activity) > 0

    @given(n_cu=st.sampled_from([4, 8, 16, 24]))
    def test_power_monotone_in_cus(self, n_cu):
        smaller = MODEL.chip_power(n_cu, 1 * GHZ, 0.5)
        larger = MODEL.chip_power(n_cu + 4, 1 * GHZ, 0.5)
        assert larger > smaller

    @given(f_mhz=st.sampled_from([300, 400, 500, 600, 700, 800, 900]))
    def test_power_monotone_in_frequency(self, f_mhz):
        slower = MODEL.chip_power(32, f_mhz * MHZ, 0.5)
        faster = MODEL.chip_power(32, (f_mhz + 100) * MHZ, 0.5)
        assert faster > slower
