"""Unit tests for :mod:`repro.sensitivity.dataset` (Section 4.2)."""

import pytest

from repro.errors import AnalysisError
from repro.sensitivity.dataset import SensitivityDataset, build_dataset
from repro.workloads.registry import get_application


class TestBuildDataset:
    @pytest.fixture(scope="class")
    def small_dataset(self, platform):
        apps = [get_application("Sort"), get_application("Graph500")]
        return build_dataset(platform, apps, config_stride=64)

    def test_one_row_per_distinct_kernel_or_phase(self, small_dataset):
        # Sort: 2 kernels; Graph500: TopDown + Bitmap + BottomStepUp's
        # distinct phase rows.
        assert len(small_dataset) >= 2 + 2 + 3

    def test_phase_rows_are_tagged(self, small_dataset):
        phase_rows = [n for n in small_dataset.kernel_names if "#phase" in n]
        assert phase_rows  # Graph500's BottomStepUp contributes phases

    def test_targets_aligned(self, small_dataset):
        assert len(small_dataset.rows) == len(small_dataset.compute_targets)
        assert len(small_dataset.rows) == len(small_dataset.bandwidth_targets)

    def test_features_complete(self, small_dataset):
        from repro.perf.counters import PerfCounters
        for row in small_dataset.rows:
            for name in PerfCounters.feature_names():
                assert name in row

    def test_averaged_features_in_range(self, small_dataset):
        for row in small_dataset.rows:
            assert 0 <= row["VALUBusy"] <= 100
            assert 0 <= row["icActivity"] <= 1

    def test_stride_insensitivity(self, platform):
        # Section 4.2's premise: per-kernel counter averages are stable, so
        # the sampling stride barely matters.
        apps = [get_application("Sort")]
        coarse = build_dataset(platform, apps, config_stride=112)
        fine = build_dataset(platform, apps, config_stride=16)
        for c_row, f_row in zip(coarse.rows, fine.rows):
            assert c_row["NormVGPR"] == pytest.approx(f_row["NormVGPR"])
            assert c_row["VALUUtilization"] == pytest.approx(
                f_row["VALUUtilization"]
            )

    def test_bad_stride_rejected(self, platform):
        with pytest.raises(AnalysisError):
            build_dataset(platform, [get_application("Sort")],
                          config_stride=0)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(AnalysisError):
            SensitivityDataset(
                rows=({"a": 1.0},),
                compute_targets=(0.5, 0.6),
                bandwidth_targets=(0.5,),
                kernel_names=("k",),
            )

    def test_full_dataset_size(self, training):
        # All 25 kernels plus Graph500's extra phase rows.
        assert len(training.dataset) >= 25
        assert len(training.dataset) <= 40
