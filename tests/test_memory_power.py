"""Unit tests for :mod:`repro.memory.power` (Section 2.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CalibrationError
from repro.platform.calibration import default_calibration
from repro.units import MHZ

MODEL = default_calibration().memory_power_model()
F_MAX = 1375 * MHZ
F_MIN = 475 * MHZ


class TestFrequencyScaling:
    def test_idle_power_drops_with_bus_frequency(self):
        # Section 2.4: lowering bus frequency lowers background and PLL
        # power as well as PHY power.
        assert MODEL.total_power(F_MIN, 0.0) < MODEL.total_power(F_MAX, 0.0)

    def test_idle_swing_supports_figure_5(self):
        # The idle (traffic-free) swing across the frequency range is what
        # produces MaxFlops's ~10% board-power variation.
        swing = MODEL.total_power(F_MAX, 0.0) - MODEL.total_power(F_MIN, 0.0)
        assert 10.0 < swing < 25.0

    def test_components_split(self):
        breakdown = MODEL.breakdown(F_MAX, 200e9)
        assert breakdown.background > 0
        assert breakdown.pll_phy > 0
        assert breakdown.activate_precharge > 0
        assert breakdown.read_write > 0
        assert breakdown.termination > 0
        assert breakdown.total == pytest.approx(
            breakdown.background + breakdown.pll_phy
            + breakdown.activate_precharge + breakdown.read_write
            + breakdown.termination
        )


class TestTrafficScaling:
    def test_power_grows_with_traffic(self):
        assert MODEL.total_power(F_MAX, 264e9) > MODEL.total_power(F_MAX, 0.0)

    def test_full_traffic_magnitude(self):
        # Calibration target: ~45-60 W for a fully streaming subsystem
        # (Figure 1 shows memory as a major card-power consumer).
        power = MODEL.total_power(F_MAX, 0.85 * 264e9)
        assert 35.0 < power < 65.0

    def test_read_write_energy_penalty_at_low_frequency(self):
        # Section 2.4: lower bus frequency can increase read/write energy
        # per bit due to longer intervals between array accesses.
        slow = MODEL.breakdown(F_MIN, 90e9)
        fast = MODEL.breakdown(F_MAX, 90e9)
        assert slow.read_write > fast.read_write


class TestValidation:
    def test_rejects_zero_frequency(self):
        with pytest.raises(CalibrationError):
            MODEL.total_power(0.0, 0.0)

    def test_rejects_above_max_frequency(self):
        with pytest.raises(CalibrationError):
            MODEL.total_power(F_MAX * 1.5, 0.0)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(CalibrationError):
            MODEL.total_power(F_MAX, -1.0)


class TestProperties:
    @given(
        ratio=st.floats(min_value=0.35, max_value=1.0),
        bw=st.floats(min_value=0.0, max_value=264e9),
    )
    def test_power_positive(self, ratio, bw):
        assert MODEL.total_power(F_MAX * ratio, bw) > 0

    @given(bw=st.floats(min_value=0.0, max_value=260e9))
    def test_power_monotone_in_traffic(self, bw):
        assert MODEL.total_power(F_MAX, bw + 1e9) > MODEL.total_power(F_MAX, bw)

    @given(ratio=st.floats(min_value=0.35, max_value=0.95))
    def test_idle_power_monotone_in_frequency(self, ratio):
        assert MODEL.total_power(F_MAX * ratio, 0.0) < \
            MODEL.total_power(F_MAX * min(1.0, ratio + 0.05), 0.0)
