"""The experiment DAG scheduler and its content-addressed manifest."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import AnalysisError
from repro.experiments.registry import ExperimentSpec
from repro.platform.store import SweepStore, content_digest
from repro.runtime.pipeline import (
    STATUS_MANIFEST,
    STATUS_PRUNED,
    STATUS_RAN,
    ExperimentPipeline,
    ResultManifest,
    format_profile,
    node_keys,
    topological_order,
)


def spec(name, deps=(), runner=None, internal=False, version=1, inputs=()):
    """A toy pipeline node; report nodes render ``<name>=<payload>``."""
    if runner is None:
        runner = lambda context, deps_, _n=name: _n.upper()
    return ExperimentSpec(
        name=name,
        module="toy",
        runner=runner,
        formatter=None if internal else (lambda p, _n=name: f"{_n}={p}"),
        deps=tuple(deps),
        inputs=tuple(inputs),
        version=version,
        group="internal" if internal else "core",
    )


class TestTopologicalOrder:
    def test_respects_deps_and_registration_order(self):
        specs = [
            spec("d", deps=("b",)),
            spec("a"),
            spec("b", deps=("a",)),
            spec("c", deps=("a",)),
        ]
        order = topological_order(specs)
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c")
        # Among simultaneously ready nodes, registration order holds.
        assert order.index("b") < order.index("c")

    def test_duplicate_name_raises(self):
        with pytest.raises(AnalysisError, match="duplicate"):
            topological_order([spec("a"), spec("a")])

    def test_unknown_dep_raises(self):
        with pytest.raises(AnalysisError, match="unknown node 'ghost'"):
            topological_order([spec("a", deps=("ghost",))])

    def test_cycle_raises_and_names_members(self):
        specs = [
            spec("a", deps=("c",)),
            spec("b", deps=("a",)),
            spec("c", deps=("b",)),
            spec("free"),
        ]
        with pytest.raises(AnalysisError, match="cycle") as excinfo:
            topological_order(specs)
        message = str(excinfo.value)
        assert "a" in message and "b" in message and "c" in message
        assert "free" not in message


class TestNodeKeys:
    def make(self, version=1, inputs=("x",), fingerprint="fp"):
        specs = [
            spec("base", internal=True),
            spec("mid", deps=("base",), version=version, inputs=inputs),
            spec("leaf", deps=("mid",)),
            spec("other"),
        ]
        return node_keys(specs, fingerprint)

    def test_version_bump_invalidates_node_and_dependents(self):
        old, new = self.make(version=1), self.make(version=2)
        assert old["mid"] != new["mid"]
        assert old["leaf"] != new["leaf"]  # chained through dep digests
        assert old["base"] == new["base"]
        assert old["other"] == new["other"]

    def test_inputs_change_invalidates_node_and_dependents(self):
        old, new = self.make(inputs=("x",)), self.make(inputs=("y",))
        assert old["mid"] != new["mid"]
        assert old["leaf"] != new["leaf"]
        assert old["other"] == new["other"]

    def test_fingerprint_change_invalidates_everything(self):
        old, new = self.make(fingerprint="fp"), self.make(fingerprint="fp2")
        assert all(old[name] != new[name] for name in old)

    def test_keys_are_digestible(self):
        keys = self.make()
        digests = {content_digest(key) for key in keys.values()}
        assert len(digests) == len(keys)


class TestResultManifest:
    def test_round_trips_exact_text(self, tmp_path):
        manifest = ResultManifest(SweepStore(tmp_path / "s"))
        key = (1, "fp", "node", 1, (), ())
        text = "line one\n  μ-indented line two\n\ttabbed\n"
        assert manifest.load(key) is None
        assert manifest.save(key, "node", text)
        assert manifest.load(key) == text

    def test_distinct_keys_distinct_entries(self, tmp_path):
        manifest = ResultManifest(SweepStore(tmp_path / "s"))
        manifest.save((1,), "a", "A")
        manifest.save((2,), "b", "B")
        assert manifest.load((1,)) == "A"
        assert manifest.load((2,)) == "B"


def toy_dag(counter):
    """base -> {mid1, mid2} -> leaf, plus a free leaf; counts runs."""
    def counting(name, payload_fn):
        def runner(context, deps, _n=name):
            with counter["lock"]:
                counter[_n] = counter.get(_n, 0) + 1
            return payload_fn(deps)
        return runner

    return [
        spec("base", internal=True,
             runner=counting("base", lambda deps: "B")),
        spec("mid1", deps=("base",),
             runner=counting("mid1", lambda deps: deps["base"] + "1")),
        spec("mid2", deps=("base",),
             runner=counting("mid2", lambda deps: deps["base"] + "2")),
        spec("leaf", deps=("mid1", "mid2"),
             runner=counting(
                 "leaf", lambda deps: deps["mid1"] + deps["mid2"])),
        spec("free", runner=counting("free", lambda deps: "F")),
    ]


EXPECTED_REPORTS = {
    "mid1": "mid1=B1",
    "mid2": "mid2=B2",
    "leaf": "leaf=B1B2",
    "free": "free=F",
}


class TestPipelineRun:
    def run_pipeline(self, specs, jobs=1, manifest=None):
        emitted = []
        pipeline = ExperimentPipeline(
            specs, context=None, jobs=jobs, manifest=manifest,
            fingerprint="fp",
        )
        result = pipeline.run(
            emit=lambda name, text, status: emitted.append((name, status)))
        return result, emitted

    def test_serial_and_parallel_reports_identical(self):
        counter = {"lock": threading.Lock()}
        serial, _ = self.run_pipeline(toy_dag(counter), jobs=1)
        parallel, _ = self.run_pipeline(toy_dag(counter), jobs=4)
        assert dict(serial.reports) == EXPECTED_REPORTS
        assert dict(parallel.reports) == dict(serial.reports)

    def test_shared_dependency_runs_once(self):
        counter = {"lock": threading.Lock()}
        result, _ = self.run_pipeline(toy_dag(counter), jobs=4)
        assert counter["base"] == 1
        assert set(result.ran()) == {"base", "mid1", "mid2", "leaf", "free"}

    def test_manifest_serves_everything_and_prunes_internals(self, tmp_path):
        manifest = ResultManifest(SweepStore(tmp_path / "s"))
        counter = {"lock": threading.Lock()}
        cold, cold_emits = self.run_pipeline(
            toy_dag(counter), jobs=2, manifest=manifest)
        assert all(status == STATUS_RAN for _, status in cold_emits)

        warm, warm_emits = self.run_pipeline(
            toy_dag(counter), jobs=2, manifest=manifest)
        assert dict(warm.reports) == dict(cold.reports)
        assert set(warm.served()) == set(EXPECTED_REPORTS)
        assert warm.ran() == ()
        # The shared internal node never re-ran...
        assert counter["base"] == 1
        # ...because it was pruned, not served (internal nodes have no
        # report text to store).
        statuses = {t.name: t.status for t in warm.timings}
        assert statuses["base"] == STATUS_PRUNED
        # Manifest-served nodes emit in registration order.
        assert [name for name, _ in warm_emits] == list(EXPECTED_REPORTS)
        assert all(s == STATUS_MANIFEST for _, s in warm_emits)

    def test_partial_invalidation_reruns_exact_subgraph(self, tmp_path):
        manifest = ResultManifest(SweepStore(tmp_path / "s"))
        counter = {"lock": threading.Lock()}
        self.run_pipeline(toy_dag(counter), manifest=manifest)

        # Bump mid1's version: mid1 and leaf (chained) must re-run, which
        # drags the pruned-last-time internal base back in; mid2 and free
        # stay served.
        bumped = toy_dag(counter)
        bumped[1] = spec(
            "mid1", deps=("base",), version=2,
            runner=bumped[1].runner)
        result, _ = self.run_pipeline(bumped, manifest=manifest)
        assert set(result.served()) == {"mid2", "free"}
        assert set(result.ran()) == {"base", "mid1", "leaf"}
        assert dict(result.reports) == EXPECTED_REPORTS

    def test_no_manifest_recomputes(self, tmp_path):
        counter = {"lock": threading.Lock()}
        self.run_pipeline(toy_dag(counter))
        self.run_pipeline(toy_dag(counter))
        assert counter["base"] == 2  # no manifest, no serving

    def test_failure_names_the_node_and_stops_scheduling(self):
        def boom(context, deps):
            raise RuntimeError("kaput")

        specs = [
            spec("ok"),
            spec("bad", runner=boom),
            spec("downstream", deps=("bad",)),
        ]
        with pytest.raises(RuntimeError, match="kaput") as excinfo:
            self.run_pipeline(specs, jobs=2)
        assert any("pipeline node 'bad'" in note
                   for note in getattr(excinfo.value, "__notes__", []))

    def test_budget_bounds_node_concurrency(self):
        live = {"now": 0, "peak": 0}
        lock = threading.Lock()

        def tracked(context, deps):
            with lock:
                live["now"] += 1
                live["peak"] = max(live["peak"], live["now"])
            time.sleep(0.02)
            with lock:
                live["now"] -= 1
            return "x"

        specs = [spec(f"n{i}", runner=tracked) for i in range(6)]
        self.run_pipeline(specs, jobs=2)
        assert live["peak"] <= 2

    def test_profile_and_critical_path(self):
        counter = {"lock": threading.Lock()}
        result, _ = self.run_pipeline(toy_dag(counter), jobs=1)
        # The heaviest chain must be a real dependency chain ending in a
        # node someone depends on transitively from its head.
        assert result.critical_path
        assert result.critical_path_s <= result.wall_s * 1.5 + 1e-6
        text = format_profile(result)
        assert "critical path:" in text
        for name in EXPECTED_REPORTS:
            assert name in text


class TestPipelineSpans:
    def run_traced(self, jobs):
        from repro.telemetry import Telemetry
        from repro.telemetry.spans import SpanTracker

        telemetry = Telemetry(spans=SpanTracker())
        counter = {"lock": threading.Lock()}
        pipeline = ExperimentPipeline(
            toy_dag(counter), context=None, jobs=jobs,
            fingerprint="fp", telemetry=telemetry,
        )
        with telemetry.span("root"):
            pipeline.run(emit=lambda name, text, status: None)
        return telemetry

    def test_every_node_spans_under_the_caller(self):
        telemetry = self.run_traced(jobs=1)
        records = telemetry.spans.records()
        root = next(r for r in records if r.name == "root")
        nodes = [r for r in records if r.name.startswith("pipeline.")]
        assert {r.name for r in nodes} == {
            "pipeline.base", "pipeline.mid1", "pipeline.mid2",
            "pipeline.leaf", "pipeline.free",
        }
        assert all(r.parent_id == root.span_id for r in nodes)
        assert all(r.label_dict() == {"node": r.name.split(".", 1)[1]}
                   for r in nodes)

    def test_span_tree_invariant_under_jobs(self):
        from repro.telemetry.spans import tree_signature

        serial = self.run_traced(jobs=1)
        parallel = self.run_traced(jobs=4)
        assert (tree_signature(serial.spans.records())
                == tree_signature(parallel.spans.records()))

    def test_node_spans_double_as_profiler_sections(self):
        telemetry = self.run_traced(jobs=1)
        stats = telemetry.profiler.stats()
        assert stats["pipeline.base"].count == 1
        assert stats["pipeline.leaf"].count == 1
