"""Unit tests for :mod:`repro.power.daq` (Section 6's measurement rig)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CalibrationError
from repro.power.daq import DaqCard, DaqTrace


class TestDaqTrace:
    def test_energy_integration(self):
        trace = DaqTrace(sample_period=0.001, samples=(100.0,) * 500)
        assert trace.energy() == pytest.approx(100.0 * 0.5)

    def test_average_power(self):
        trace = DaqTrace(sample_period=0.001, samples=(50.0, 150.0))
        assert trace.average_power() == pytest.approx(100.0)

    def test_duration(self):
        trace = DaqTrace(sample_period=0.001, samples=(1.0,) * 250)
        assert trace.duration == pytest.approx(0.25)

    def test_empty_trace(self):
        trace = DaqTrace(sample_period=0.001, samples=())
        assert trace.energy() == 0.0
        assert trace.average_power() == 0.0

    def test_rejects_bad_period(self):
        with pytest.raises(CalibrationError):
            DaqTrace(sample_period=0.0, samples=())


class TestSampling:
    def test_paper_sampling_rate(self):
        card = DaqCard()  # the paper's NI rig samples at 1 kHz
        assert card.sample_period == pytest.approx(0.001)

    def test_constant_segment(self):
        card = DaqCard(sampling_frequency=1000.0)
        trace = card.sample_segments([(0.1, 150.0)])
        assert len(trace.samples) == 100
        assert trace.average_power() == pytest.approx(150.0)

    def test_two_segments(self):
        card = DaqCard(sampling_frequency=1000.0)
        trace = card.sample_segments([(0.1, 100.0), (0.1, 200.0)])
        assert trace.average_power() == pytest.approx(150.0, rel=0.02)

    def test_sampled_energy_matches_analytic(self):
        card = DaqCard(sampling_frequency=1000.0)
        segments = [(0.25, 120.0), (0.5, 180.0), (0.125, 90.0)]
        analytic = sum(t * p for t, p in segments)
        trace = card.sample_segments(segments)
        assert trace.energy() == pytest.approx(analytic, rel=0.01)

    def test_microsecond_kernels_undersampled(self):
        # A real 1 kHz rig misses microsecond kernels entirely.
        card = DaqCard(sampling_frequency=1000.0)
        trace = card.sample_segments([(20e-6, 100.0)])
        assert len(trace.samples) == 0

    def test_rejects_negative_duration(self):
        card = DaqCard()
        with pytest.raises(CalibrationError):
            card.sample_segments([(-0.1, 100.0)])

    def test_noise_is_reproducible(self):
        a = DaqCard(noise_std=1.0, seed=7).sample_segments([(0.1, 100.0)])
        b = DaqCard(noise_std=1.0, seed=7).sample_segments([(0.1, 100.0)])
        assert a.samples == b.samples

    def test_noise_changes_with_seed(self):
        a = DaqCard(noise_std=1.0, seed=7).sample_segments([(0.1, 100.0)])
        b = DaqCard(noise_std=1.0, seed=8).sample_segments([(0.1, 100.0)])
        assert a.samples != b.samples

    def test_noise_never_negative_power(self):
        card = DaqCard(noise_std=50.0, seed=3)
        trace = card.sample_segments([(0.1, 10.0)])
        assert all(s >= 0.0 for s in trace.samples)

    @given(st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=0.2),
                  st.floats(min_value=10.0, max_value=300.0)),
        min_size=1, max_size=5,
    ))
    def test_noiseless_energy_converges(self, segments):
        card = DaqCard(sampling_frequency=10000.0)
        analytic = sum(t * p for t, p in segments)
        trace = card.sample_segments(segments)
        assert trace.energy() == pytest.approx(analytic, rel=0.05)

    def test_rejects_bad_rate(self):
        with pytest.raises(CalibrationError):
            DaqCard(sampling_frequency=0.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(CalibrationError):
            DaqCard(noise_std=-1.0)
