"""Batch sweep engine vs the scalar path: element-exact equivalence.

The vectorized batch path (``run_kernel_batch``) mirrors the scalar
arithmetic operation for operation, so its results must match per-launch
evaluation exactly — not merely approximately — for every registered
kernel on both calibrations. These tests pin that contract, plus the
documented noise semantics: batch evaluation is deterministic by contract
and refuses noisy platforms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import ConfigSweep
from repro.errors import AnalysisError, ConfigurationError
from repro.platform.hd7970 import make_hd7970_platform, make_pitcairn_platform
from repro.workloads.registry import all_kernels

#: Acceptance tolerance on time/energy/power. The implementation is
#: bitwise exact; 1e-9 is the documented contract ceiling.
REL_TOL = 1e-9


def _rel_err(a: float, b: float) -> float:
    return abs(a - b) / abs(a) if a != 0 else abs(b)


@pytest.fixture(scope="module", params=["hd7970", "pitcairn"])
def any_platform(request):
    if request.param == "hd7970":
        return make_hd7970_platform()
    return make_pitcairn_platform()


@pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.base.name)
def test_batch_matches_scalar_everywhere(any_platform, kernel):
    """Every kernel, every grid config, both calibrations: batch == scalar."""
    spec = kernel.base
    configs = tuple(any_platform.config_space)
    batch = any_platform.run_kernel_batch(spec, configs)
    assert len(batch) == len(configs)

    for i, config in enumerate(configs):
        scalar = any_platform.run_kernel(spec, config)
        assert _rel_err(scalar.time, float(batch.time[i])) <= REL_TOL
        assert _rel_err(scalar.energy, float(batch.energy[i])) <= REL_TOL
        assert _rel_err(scalar.power.card, float(batch.card_power[i])) <= REL_TOL
        assert scalar.bandwidth_limit == batch.bandwidth_limit[i]

        # Full reconstruction: breakdown, counters, power decomposition.
        rebuilt = batch.result_at(i)
        assert rebuilt.config == config
        assert _rel_err(scalar.power.gpu, rebuilt.power.gpu) <= REL_TOL
        assert _rel_err(scalar.power.memory, rebuilt.power.memory) <= REL_TOL
        assert rebuilt.power.other == scalar.power.other
        assert _rel_err(scalar.breakdown.compute, rebuilt.breakdown.compute) <= REL_TOL
        assert _rel_err(scalar.breakdown.memory, rebuilt.breakdown.memory) <= REL_TOL
        assert _rel_err(scalar.achieved_bandwidth,
                        rebuilt.achieved_bandwidth) <= REL_TOL
        assert rebuilt.occupancy == scalar.occupancy
        assert rebuilt.counters == scalar.counters


def test_batch_metric_surfaces_are_consistent(fresh_platform):
    """Derived arrays (ed, ed2, performance) agree with per-point math."""
    spec = all_kernels()[0].base
    batch = fresh_platform.run_kernel_batch(spec)
    np.testing.assert_array_equal(batch.ed, batch.energy * batch.time)
    np.testing.assert_array_equal(
        batch.ed2, batch.energy * batch.time * batch.time
    )
    np.testing.assert_array_equal(batch.performance, 1.0 / batch.time)


def test_batch_subset_and_lookup(fresh_platform):
    """Explicit config subsets evaluate in order and index correctly."""
    spec = all_kernels()[0].base
    configs = tuple(fresh_platform.config_space)[::37]
    batch = fresh_platform.run_kernel_batch(spec, configs)
    assert batch.configs == configs
    probe = configs[len(configs) // 2]
    assert batch.time_at(probe) == float(batch.time[batch.index_of(probe)])
    off_grid = fresh_platform.config_space.max_config()
    if off_grid not in configs:
        with pytest.raises(AnalysisError):
            batch.index_of(off_grid)


def test_batch_validates_configs(fresh_platform):
    """Off-grid configurations are rejected like the scalar path."""
    spec = all_kernels()[0].base
    bad = fresh_platform.config_space.max_config().replace(f_mem=123e6)
    with pytest.raises(ConfigurationError):
        fresh_platform.run_kernel_batch(spec, [bad])


def test_empty_batch_rejected(fresh_platform):
    spec = all_kernels()[0].base
    with pytest.raises(AnalysisError):
        fresh_platform.run_kernel_batch(spec, [])


def test_noisy_platform_refuses_batch():
    """Documented noise semantics: the batch path is deterministic only."""
    noisy = make_hd7970_platform(noise_std_fraction=0.05, seed=7)
    assert not noisy.is_deterministic
    spec = all_kernels()[0].base
    with pytest.raises(ConfigurationError):
        noisy.run_kernel_batch(spec)
    with pytest.raises(ConfigurationError):
        noisy.grid_sweep(spec)


def test_noisy_sweep_falls_back_to_scalar():
    """ConfigSweep still works (scalar, per-launch noise) on noisy rigs."""
    noisy = make_hd7970_platform(noise_std_fraction=0.05, seed=7)
    clean = make_hd7970_platform()
    spec = all_kernels()[0].base
    noisy_sweep = ConfigSweep(noisy, spec)
    clean_sweep = ConfigSweep(clean, spec)
    assert len(noisy_sweep) == len(clean_sweep) == len(clean.config_space)
    # The noise draw actually landed: surfaces differ point-for-point.
    diffs = sum(
        1 for a, b in zip(noisy_sweep.points, clean_sweep.points)
        if a.time != b.time
    )
    assert diffs > len(clean_sweep) // 2
