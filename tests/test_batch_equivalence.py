"""Batch sweep engine vs the scalar path: element-exact equivalence.

The vectorized batch path (``run_kernel_batch``) mirrors the scalar
arithmetic operation for operation, so its results must match per-launch
evaluation exactly — not merely approximately — for every registered
kernel on both calibrations. These tests pin that contract, plus the
documented noise semantics: the launch-keyed noise model gives the batch
path the exact per-launch draws of the scalar path, so noisy batch and
noisy scalar agree bitwise too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import ConfigSweep
from repro.errors import AnalysisError, ConfigurationError
from repro.platform.hd7970 import make_hd7970_platform, make_pitcairn_platform
from repro.workloads.registry import all_kernels

#: Acceptance tolerance on time/energy/power. The implementation is
#: bitwise exact; 1e-9 is the documented contract ceiling.
REL_TOL = 1e-9


def _rel_err(a: float, b: float) -> float:
    return abs(a - b) / abs(a) if a != 0 else abs(b)


@pytest.fixture(scope="module", params=["hd7970", "pitcairn"])
def any_platform(request):
    if request.param == "hd7970":
        return make_hd7970_platform()
    return make_pitcairn_platform()


@pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.base.name)
def test_batch_matches_scalar_everywhere(any_platform, kernel):
    """Every kernel, every grid config, both calibrations: batch == scalar."""
    spec = kernel.base
    configs = tuple(any_platform.config_space)
    batch = any_platform.run_kernel_batch(spec, configs)
    assert len(batch) == len(configs)

    for i, config in enumerate(configs):
        scalar = any_platform.run_kernel(spec, config)
        assert _rel_err(scalar.time, float(batch.time[i])) <= REL_TOL
        assert _rel_err(scalar.energy, float(batch.energy[i])) <= REL_TOL
        assert _rel_err(scalar.power.card, float(batch.card_power[i])) <= REL_TOL
        assert scalar.bandwidth_limit == batch.bandwidth_limit[i]

        # Full reconstruction: breakdown, counters, power decomposition.
        rebuilt = batch.result_at(i)
        assert rebuilt.config == config
        assert _rel_err(scalar.power.gpu, rebuilt.power.gpu) <= REL_TOL
        assert _rel_err(scalar.power.memory, rebuilt.power.memory) <= REL_TOL
        assert rebuilt.power.other == scalar.power.other
        assert _rel_err(scalar.breakdown.compute, rebuilt.breakdown.compute) <= REL_TOL
        assert _rel_err(scalar.breakdown.memory, rebuilt.breakdown.memory) <= REL_TOL
        assert _rel_err(scalar.achieved_bandwidth,
                        rebuilt.achieved_bandwidth) <= REL_TOL
        assert rebuilt.occupancy == scalar.occupancy
        assert rebuilt.counters == scalar.counters


def test_batch_metric_surfaces_are_consistent(fresh_platform):
    """Derived arrays (ed, ed2, performance) agree with per-point math."""
    spec = all_kernels()[0].base
    batch = fresh_platform.run_kernel_batch(spec)
    np.testing.assert_array_equal(batch.ed, batch.energy * batch.time)
    np.testing.assert_array_equal(
        batch.ed2, batch.energy * batch.time * batch.time
    )
    np.testing.assert_array_equal(batch.performance, 1.0 / batch.time)


def test_batch_subset_and_lookup(fresh_platform):
    """Explicit config subsets evaluate in order and index correctly."""
    spec = all_kernels()[0].base
    configs = tuple(fresh_platform.config_space)[::37]
    batch = fresh_platform.run_kernel_batch(spec, configs)
    assert batch.configs == configs
    probe = configs[len(configs) // 2]
    assert batch.time_at(probe) == float(batch.time[batch.index_of(probe)])
    off_grid = fresh_platform.config_space.max_config()
    if off_grid not in configs:
        with pytest.raises(AnalysisError):
            batch.index_of(off_grid)


def test_batch_validates_configs(fresh_platform):
    """Off-grid configurations are rejected like the scalar path."""
    spec = all_kernels()[0].base
    bad = fresh_platform.config_space.max_config().replace(f_mem=123e6)
    with pytest.raises(ConfigurationError):
        fresh_platform.run_kernel_batch(spec, [bad])


def test_empty_batch_rejected(fresh_platform):
    spec = all_kernels()[0].base
    with pytest.raises(AnalysisError):
        fresh_platform.run_kernel_batch(spec, [])


def test_noisy_batch_matches_scalar_bitwise():
    """Launch-keyed noise: noisy batch == noisy scalar, bit for bit."""
    noisy = make_hd7970_platform(noise_std_fraction=0.05, seed=7)
    assert not noisy.is_deterministic
    spec = all_kernels()[0].base
    configs = tuple(noisy.config_space)[::17]
    for iteration in (0, 3):
        batch = noisy.run_kernel_batch(spec, configs, iteration=iteration)
        for i, config in enumerate(configs):
            scalar = noisy.run_kernel(spec, config, iteration=iteration)
            assert scalar.time == float(batch.time[i])
            assert scalar.energy == float(batch.energy[i])


def test_noisy_sweep_runs_through_batch():
    """ConfigSweep takes the batched path on noisy rigs, draws included."""
    noisy = make_hd7970_platform(noise_std_fraction=0.05, seed=7)
    clean = make_hd7970_platform()
    spec = all_kernels()[0].base
    noisy_sweep = ConfigSweep(noisy, spec)
    clean_sweep = ConfigSweep(clean, spec)
    assert len(noisy_sweep) == len(clean_sweep) == len(clean.config_space)
    # The noise draw actually landed: surfaces differ point-for-point.
    diffs = sum(
        1 for a, b in zip(noisy_sweep.points, clean_sweep.points)
        if a.time != b.time
    )
    assert diffs > len(clean_sweep) // 2
    # And each point carries exactly the scalar launch's draw.
    for point in noisy_sweep.points[::61]:
        scalar = noisy.run_kernel(spec, point.config)
        assert point.time == scalar.time


def test_noisy_batch_is_iteration_keyed():
    """Different iterations draw different multipliers; same repeats."""
    noisy = make_hd7970_platform(noise_std_fraction=0.05, seed=7)
    spec = all_kernels()[0].base
    first = noisy.run_kernel_batch(spec, iteration=0)
    again = noisy.run_kernel_batch(spec, iteration=0)
    other = noisy.run_kernel_batch(spec, iteration=1)
    np.testing.assert_array_equal(first.time, again.time)
    assert np.any(first.time != other.time)
