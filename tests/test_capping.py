"""Unit tests for :mod:`repro.core.capping`."""

import pytest

from repro.core.capping import PowerCapPolicy
from repro.core.policy import LaunchContext
from repro.errors import PolicyError
from repro.runtime.simulator import ApplicationRunner
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_application, get_kernel

SPEC = get_kernel("MaxFlops.MaxFlops").base


def ctx(iteration=0):
    return LaunchContext(kernel_name=SPEC.name, iteration=iteration,
                         spec=SPEC)


class TestCapMechanics:
    def test_starts_at_maximum(self, space):
        policy = PowerCapPolicy(space, budget_watts=150.0)
        assert policy.config_for(ctx()) == space.max_config()

    def test_throttles_frequency_first(self, space, platform):
        policy = PowerCapPolicy(space, budget_watts=100.0)
        result = platform.run_kernel(SPEC, policy.config_for(ctx()))
        assert result.power.card > 100.0
        policy.observe(ctx(), result)
        throttled = policy.config_for(ctx(1))
        assert throttled.f_cu < 1 * GHZ
        assert throttled.n_cu == 32
        assert throttled.f_mem == pytest.approx(1375 * MHZ)

    def test_settles_under_budget(self, space, platform):
        policy = PowerCapPolicy(space, budget_watts=120.0)
        config = space.max_config()
        for i in range(30):
            config = policy.config_for(ctx(i))
            result = platform.run_kernel(SPEC, config)
            policy.observe(ctx(i), result)
        # After settling, the EWMA estimate respects the budget band.
        assert policy.power_estimate < 120.0 * 1.05

    def test_recovers_when_under_budget(self, space, platform):
        policy = PowerCapPolicy(space, budget_watts=500.0)
        # Force a throttled starting state, then observe cheap launches.
        policy._config = space.min_config()
        for i in range(40):
            config = policy.config_for(ctx(i))
            result = platform.run_kernel(SPEC, config)
            policy.observe(ctx(i), result)
        # With a generous budget the policy walks back toward maximum.
        final = policy.config_for(ctx(99))
        assert final.f_cu == pytest.approx(1 * GHZ)
        assert final.n_cu == 32

    def test_workload_blind(self, space):
        # The configuration does not depend on which kernel asks.
        policy = PowerCapPolicy(space, budget_watts=150.0)
        other = LaunchContext(
            kernel_name="Sort.BottomScan", iteration=0,
            spec=get_kernel("Sort.BottomScan").base,
        )
        assert policy.config_for(ctx()) == policy.config_for(other)

    def test_reset(self, space, platform):
        policy = PowerCapPolicy(space, budget_watts=100.0)
        result = platform.run_kernel(SPEC, space.max_config())
        policy.observe(ctx(), result)
        policy.reset()
        assert policy.config_for(ctx()) == space.max_config()
        assert policy.power_estimate is None

    def test_name(self, space):
        assert PowerCapPolicy(space, budget_watts=100.0).name == "power-cap"


class TestValidation:
    def test_bad_budget(self, space):
        with pytest.raises(PolicyError):
            PowerCapPolicy(space, budget_watts=0.0)

    def test_bad_alpha(self, space):
        with pytest.raises(PolicyError):
            PowerCapPolicy(space, budget_watts=100.0, alpha=0.0)

    def test_bad_hysteresis(self, space):
        with pytest.raises(PolicyError):
            PowerCapPolicy(space, budget_watts=100.0, hysteresis=1.0)


class TestEndToEnd:
    def test_enforces_budget_on_full_application(self, platform, space):
        app = get_application("CoMD")
        policy = PowerCapPolicy(space, budget_watts=110.0)
        run = ApplicationRunner(platform).run(app, policy,
                                              reset_policy=False)
        assert run.metrics.avg_power < 110.0 * 1.15
