"""The static experiment registry: coverage, grouping, and the lint."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import AnalysisError
from repro.experiments import registry
from repro.experiments.context import default_context
from repro.experiments.registry import ExperimentSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The 26 report files one plain ``reproduce`` run has always emitted,
#: in historical emission order.
CORE_REPORTS = (
    "fig04_compute_power",
    "fig05_memory_power",
    "fig10_ed2",
    "fig11_energy",
    "fig12_power",
    "fig13_performance",
    "fig01_power_breakdown",
    "table1_dvfs",
    "fig03_balance_points",
    "fig06_metric_tradeoffs",
    "fig07_occupancy",
    "fig08_divergence",
    "fig09_clock_domains",
    "table2_table3_models",
    "fig14_16_graph500",
    "fig17_power_sharing",
    "fig18_cg_vs_fg",
    "sec72_variants",
    "ext_memory_voltage",
    "ext_thermal_capping",
    "ext_model_validation",
    "ext_phase_memory",
    "ext_power_capping",
    "ext_portability",
    "oracle_gap",
    "characterization",
)


class TestRegistryContents:
    def test_core_report_set_is_stable(self):
        specs = registry.reproduce_specs()
        reports = tuple(s.name for s in specs if s.is_report)
        assert reports == CORE_REPORTS

    def test_internal_nodes_are_training_and_evaluation(self):
        specs = registry.reproduce_specs()
        internal = {s.name for s in specs if not s.is_report}
        assert internal == {"training", "evaluation"}

    def test_ablations_add_six_report_nodes(self):
        base = registry.reproduce_specs()
        full = registry.reproduce_specs(include_ablations=True)
        extra = {s.name for s in full} - {s.name for s in base}
        assert len(extra) == 6
        assert all(name.startswith("ablation_") for name in extra)
        assert all(registry.get_spec(name).is_report for name in extra)

    def test_figures_10_13_share_the_evaluation_node(self):
        for name in ("fig10_ed2", "fig11_energy", "fig12_power",
                     "fig13_performance"):
            assert registry.get_spec(name).deps == ("evaluation",)
        assert registry.get_spec("evaluation").deps == ("training",)

    def test_duplicate_registration_raises(self):
        existing = registry.all_specs()[0]
        with pytest.raises(AnalysisError, match="registered twice"):
            registry.register(existing)

    def test_get_spec_unknown_name(self):
        with pytest.raises(AnalysisError, match="no experiment"):
            registry.get_spec("fig99_imaginary")

    def test_internal_spec_requires_no_formatter(self):
        with pytest.raises(AnalysisError, match="formatter"):
            ExperimentSpec(name="x", module="toy",
                           runner=lambda c, d: None, formatter=None,
                           group="core")
        with pytest.raises(AnalysisError, match="formatter"):
            ExperimentSpec(name="x", module="toy",
                           runner=lambda c, d: None, formatter=str,
                           group="internal")


class TestFingerprint:
    def test_deterministic_across_contexts(self):
        a = registry.reproduce_fingerprint(default_context())
        b = registry.reproduce_fingerprint(default_context())
        assert a == b
        assert len(a) == 64  # sha256 hex


class TestRegistryLint:
    def run_lint(self):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" /
                                 "check_experiment_registry.py")],
            capture_output=True, text=True,
        )

    def test_lint_passes_on_the_repo(self):
        proc = self.run_lint()
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_lint_reports_unregistered_module(self, tmp_path, monkeypatch):
        # Point the lint at a package copy with one extra orphan module.
        import shutil
        root = tmp_path / "repo"
        (root / "tools").mkdir(parents=True)
        shutil.copytree(REPO_ROOT / "src", root / "src")
        shutil.copy(REPO_ROOT / "tools" / "check_experiment_registry.py",
                    root / "tools")
        orphan = root / "src" / "repro" / "experiments" / "fig99_orphan.py"
        orphan.write_text("def run(context):\n    return None\n")
        proc = subprocess.run(
            [sys.executable, str(root / "tools" /
                                 "check_experiment_registry.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "fig99_orphan" in proc.stderr
